//! End-to-end tests for the coherence checker and the class-law
//! harness:
//!
//! 1. **Property: overlap ⟺ unification.** Random pairs of instance
//!    heads over the surface type grammar (deterministic xorshift, no
//!    external crates): the pipeline reports `L0008` exactly when a
//!    reference first-order unifier — written independently here —
//!    finds a unifier for the two heads.
//! 2. **Differential: laws never change evaluation.** Every program in
//!    the corpus produces an identical outcome with `--check-laws` on
//!    and off at default (warn) levels.
//! 3. **Acceptance.** The overlap diagnostic names both spans and a
//!    rendered counterexample type; a law-violating `Eq` instance is
//!    reported with its failing sample; both rules respect allow/deny.

use std::collections::HashMap;

use typeclasses::coherence::Rule;
use typeclasses::{check_source, run_source, LintLevel, Options, Outcome};

/// Deterministic xorshift64* PRNG (offline build: no proptest/rand).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A reference model of the surface type grammar usable in instance
/// heads: the three known constructors plus type variables and
/// function arrows (which may appear under `List`).
#[derive(Debug, Clone, PartialEq)]
enum Ty {
    Var(u32),
    Int,
    Bool,
    List(Box<Ty>),
    Fun(Box<Ty>, Box<Ty>),
}

/// A random instance head: always constructor-rooted (bare-variable
/// heads are rejected by the class-env build as E0312). `var_base`
/// keeps the two sides' variables disjoint, mirroring the pipeline's
/// per-instance freshening.
fn arbitrary_head(rng: &mut Rng, var_base: u32) -> Ty {
    match rng.below(4) {
        0 => Ty::Int,
        1 => Ty::Bool,
        _ => Ty::List(Box::new(arbitrary_ty(rng, 3, var_base))),
    }
}

fn arbitrary_ty(rng: &mut Rng, depth: usize, var_base: u32) -> Ty {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(4) {
            0 => Ty::Var(var_base),
            1 => Ty::Var(var_base + 1),
            2 => Ty::Int,
            _ => Ty::Bool,
        };
    }
    match rng.below(3) {
        0 => Ty::List(Box::new(arbitrary_ty(rng, depth - 1, var_base))),
        1 => Ty::Fun(
            Box::new(arbitrary_ty(rng, depth - 1, var_base)),
            Box::new(arbitrary_ty(rng, depth - 1, var_base)),
        ),
        _ => arbitrary_ty(rng, depth - 1, var_base),
    }
}

/// Surface syntax for `t`, parenthesized enough to re-parse in head
/// position (`atom` wraps applications and arrows).
fn render(t: &Ty, atom: bool) -> String {
    match t {
        Ty::Var(n) => format!("v{n}"),
        Ty::Int => "Int".into(),
        Ty::Bool => "Bool".into(),
        Ty::List(x) => {
            let s = format!("List {}", render(x, true));
            if atom {
                format!("({s})")
            } else {
                s
            }
        }
        Ty::Fun(a, b) => {
            let s = format!("{} -> {}", render(a, true), render(b, false));
            if atom {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Reference first-order unification, written independently of the
/// pipeline's: walk-to-representative + occurs check.
fn walk(t: &Ty, s: &HashMap<u32, Ty>) -> Ty {
    let mut t = t.clone();
    while let Ty::Var(n) = t {
        match s.get(&n) {
            Some(next) => t = next.clone(),
            None => return Ty::Var(n),
        }
    }
    t
}

fn occurs(n: u32, t: &Ty, s: &HashMap<u32, Ty>) -> bool {
    match walk(t, s) {
        Ty::Var(m) => m == n,
        Ty::Int | Ty::Bool => false,
        Ty::List(x) => occurs(n, &x, s),
        Ty::Fun(a, b) => occurs(n, &a, s) || occurs(n, &b, s),
    }
}

fn unify(a: &Ty, b: &Ty, s: &mut HashMap<u32, Ty>) -> bool {
    let (a, b) = (walk(a, s), walk(b, s));
    match (a, b) {
        (Ty::Var(n), Ty::Var(m)) if n == m => true,
        (Ty::Var(n), t) | (t, Ty::Var(n)) => {
            if occurs(n, &t, s) {
                false
            } else {
                s.insert(n, t);
                true
            }
        }
        (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) => true,
        (Ty::List(x), Ty::List(y)) => unify(&x, &y, s),
        (Ty::Fun(a1, r1), Ty::Fun(a2, r2)) => unify(&a1, &a2, s) && unify(&r1, &r2, s),
        _ => false,
    }
}

#[test]
fn overlap_is_reported_iff_heads_unify() {
    let no_prelude = Options {
        use_prelude: false,
        ..Options::default()
    };
    let mut rng = Rng::new(0x1993_0715);
    let mut overlaps = 0u32;
    let mut disjoint = 0u32;
    for round in 0..200 {
        let a = arbitrary_head(&mut rng, 0);
        let b = arbitrary_head(&mut rng, 100);
        let src = format!(
            "class C a where {{ m :: a -> Int; }};\n\
             instance C {} where {{ m = \\x -> 0; }};\n\
             instance C {} where {{ m = \\x -> 1; }};",
            render(&a, true),
            render(&b, true),
        );
        let expected = unify(&a, &b, &mut HashMap::new());
        let check = check_source(&src, &no_prelude);
        let reported = check.diags.iter().any(|d| d.code == "L0008");
        assert_eq!(
            reported, expected,
            "round {round}: reference unifier says {expected}, pipeline says \
             {reported} for\n{src}\ndiags: {:?}",
            check.diags
        );
        if expected {
            overlaps += 1;
        } else {
            disjoint += 1;
        }
    }
    // The generator must exercise both sides of the property.
    assert!(overlaps >= 20, "too few overlapping pairs: {overlaps}");
    assert!(disjoint >= 20, "too few disjoint pairs: {disjoint}");
}

/// The differential corpus: the checked-in examples plus inline
/// programs with law-abiding and law-violating instances.
fn differential_programs() -> Vec<(String, String, bool)> {
    let mut progs: Vec<(String, String, bool)> = Vec::new();
    for entry in std::fs::read_dir("examples").expect("examples dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "mh") {
            progs.push((
                path.display().to_string(),
                std::fs::read_to_string(&path).expect("example source"),
                true,
            ));
        }
    }
    assert!(progs.len() >= 3, "expected the three example programs");
    for (name, src, prelude) in [
        (
            "lawless-eq",
            "class Eq a where { eq :: a -> a -> Bool; };\n\
             instance Eq Int where { eq = primLeInt; };\n\
             main = eq 2 1;",
            false,
        ),
        (
            "lawful-eq",
            "class Eq a where { eq :: a -> a -> Bool; };\n\
             instance Eq Int where { eq = primEqInt; };\n\
             main = eq 2 2;",
            false,
        ),
        (
            "prelude-instances",
            "main = and (eq (cons 1 nil) (cons 1 nil)) (eq True True);",
            true,
        ),
        ("runtime-error", "main = head nil;", true),
        (
            "no-instance-error",
            "main = eq (\\x -> x) (\\y -> y);",
            true,
        ),
    ] {
        progs.push((name.into(), src.into(), prelude));
    }
    progs
}

#[test]
fn check_laws_never_changes_evaluation_output() {
    for (name, src, prelude) in differential_programs() {
        let base = Options {
            use_prelude: prelude,
            ..Options::default()
        };
        let with_laws = Options {
            check_laws: true,
            ..base.clone()
        };
        let plain = run_source(&src, &base);
        let lawful = run_source(&src, &with_laws);
        // Outcomes must be identical: same value, same error, same
        // classification. Law findings may only add warnings.
        assert_eq!(
            format!("{:?}", plain.outcome),
            format!("{:?}", lawful.outcome),
            "{name}: --check-laws changed the outcome"
        );
        let errors = |c: &typeclasses::Check| {
            c.diags
                .iter()
                .filter(|d| d.severity == typeclasses::syntax::Severity::Error)
                .count()
        };
        assert_eq!(
            errors(&plain.check),
            errors(&lawful.check),
            "{name}: --check-laws changed the error set"
        );
    }
}

#[test]
fn overlap_diagnostic_names_both_spans_and_a_counterexample() {
    let src = "class Sz a where { sz :: a -> Int; };\n\
               instance Sz (List a) where { sz = \\x -> 0; };\n\
               instance Sz (List Int) where { sz = \\x -> 1; };\n\
               main = sz (cons 1 nil);";
    let check = check_source(src, &Options::default());
    let overlap = check
        .diags
        .iter()
        .find(|d| d.code == "L0008")
        .unwrap_or_else(|| panic!("no L0008 in {:?}", check.diags));
    assert!(
        overlap.message.contains("counterexample type `List Int`"),
        "{}",
        overlap.message
    );
    // Primary span on one instance, a note span on the other — and
    // they differ, so the rendering names both declarations.
    let note_span = overlap
        .notes
        .iter()
        .find_map(|(s, _)| *s)
        .unwrap_or_else(|| panic!("no note span: {overlap:?}"));
    assert_ne!(overlap.span, note_span);
    assert!(!check.ok(), "L0008 denies by default");

    // Allowing the rule end-to-end lets the program run (first-match
    // resolution keeps evaluation deterministic).
    let mut relaxed = Options::default();
    relaxed
        .coherence_levels
        .set(Rule::OverlappingInstances, LintLevel::Allow);
    let r = run_source(src, &relaxed);
    assert!(
        matches!(r.outcome, Outcome::Value(ref v) if v == "0"),
        "{:?}",
        r.outcome
    );
}

#[test]
fn law_violation_cites_the_failing_sample_and_is_deniable() {
    let src = "class Eq a where { eq :: a -> a -> Bool; };\n\
               instance Eq Int where { eq = primLeInt; };\n\
               main = eq 1 2;";
    let opts = Options {
        use_prelude: false,
        check_laws: true,
        ..Options::default()
    };
    let r = run_source(src, &opts);
    let violation = r
        .check
        .diags
        .iter()
        .find(|d| d.code == "L0011")
        .unwrap_or_else(|| panic!("no L0011 in {:?}", r.check.diags));
    assert!(violation.message.contains("symmetry"), "{violation:?}");
    assert!(
        violation
            .notes
            .iter()
            .any(|(_, n)| n.contains("failing sample")),
        "{violation:?}"
    );
    // Warn by default: the program still evaluates.
    assert!(matches!(r.outcome, Outcome::Value(ref v) if v == "True"));

    // Deny escalates the violation to a compile rejection.
    let mut strict = opts.clone();
    strict
        .coherence_levels
        .set(Rule::LawViolation, LintLevel::Deny);
    let denied = run_source(src, &strict);
    assert!(matches!(denied.outcome, Outcome::CompileErrors));
    assert!(!denied.check.ok());
}
