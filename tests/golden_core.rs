//! Golden snapshots of the dictionary-converted, sharing-passed core
//! for the checked-in example programs.
//!
//! These pin the *shape* of the output of the whole front half of the
//! pipeline — placeholder conversion, instance dictionary construction,
//! and the `$sh` bindings the sharing pass introduces — so an
//! accidental change to dictionary layout or hoisting shows up as a
//! readable diff, not a silent perf regression.
//!
//! Bless new snapshots with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_core
//! ```

use std::collections::HashSet;
use typeclasses::{check_source, Options};

/// Pretty-print the example's own bindings (prelude bindings are
/// elided by compiling the empty program first and subtracting).
fn user_core(src: &str) -> String {
    let opts = Options::default();
    let prelude_only = check_source("", &opts);
    let prelude_names: HashSet<&str> = prelude_only
        .elab
        .core
        .binds
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    let check = check_source(src, &opts);
    assert!(check.ok(), "{}", check.render_diagnostics());
    let mut out = String::new();
    for (name, expr) in &check.elab.core.binds {
        if prelude_names.contains(name.as_str()) {
            continue;
        }
        out.push_str(name);
        out.push_str(" = ");
        out.push_str(&typeclasses::coreir::pretty(expr));
        out.push_str("\n\n");
    }
    out
}

fn check_golden(example: &str) {
    let src_path = format!("examples/{example}.mh");
    let golden_path = format!("tests/golden/{example}.core.txt");
    let src = std::fs::read_to_string(&src_path).expect("example source");
    let got = user_core(&src);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("{golden_path}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test golden_core to create")
    });
    assert_eq!(
        got, want,
        "\n--- core for {example} diverged from {golden_path}; \
         if intentional, re-bless with UPDATE_GOLDEN=1 ---"
    );
}

#[test]
fn member_core_is_stable() {
    check_golden("member");
}

#[test]
fn maxlist_core_is_stable() {
    check_golden("maxlist");
}

#[test]
fn sumsquares_core_is_stable() {
    check_golden("sumsquares");
}

#[test]
fn deriving_core_is_stable() {
    check_golden("deriving");
}

#[test]
fn derived_instances_appear_as_dictionary_lets() {
    // The deriving snapshot must actually show the paper's translation
    // at work: the derived `Eq`/`Ord` methods become ordinary bindings
    // referenced from constructed instance dictionaries, which `main`'s
    // class-method calls consume. (Skipped while blessing.)
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let core = std::fs::read_to_string("tests/golden/deriving.core.txt").expect("golden");
    for needle in ["$dict", "Eq$Suit", "Ord$Suit", "Eq$Card", "Ord$Card"] {
        assert!(core.contains(needle), "missing `{needle}` in:\n{core}");
    }
}

#[test]
fn goldens_reflect_the_sharing_pass() {
    // The snapshots above are of the *optimized* pipeline; make the
    // dependence explicit so nobody re-blesses them with sharing off.
    // (Skipped while blessing: the snapshot may not be written yet.)
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let member = std::fs::read_to_string("tests/golden/member.core.txt").expect("golden");
    // member.mh itself needs only one Eq Int dictionary, so no `$sh`
    // binding is expected — but the dictionary constructor must appear.
    assert!(member.contains("$dict"), "{member}");
}
