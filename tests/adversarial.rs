//! Adversarial programs: every one of these must come back with a
//! structured diagnostic or a structured evaluation error — zero
//! panics, zero hangs. Each pipeline run happens on a helper thread
//! with a hard wall-clock bound; a panic on that thread drops the
//! channel sender, which also fails the test.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use typeclasses::{run_source, Budget, EvalError, Options, Outcome};

const WALL_CLOCK: Duration = Duration::from_secs(20);

fn bounded_with(src: String, opts: Options) -> Outcome {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let r = run_source(&src, &opts);
        let _ = tx.send(r.outcome);
    });
    rx.recv_timeout(WALL_CLOCK)
        .expect("pipeline exceeded the wall-clock bound or panicked")
}

fn bounded(src: &str) -> Outcome {
    bounded_with(src.to_string(), Options::default())
}

fn small(src: &str) -> Outcome {
    bounded_with(
        src.to_string(),
        Options::default().with_budget(Budget::small()),
    )
}

#[test]
fn junk_bytes() {
    assert!(matches!(
        bounded("@#%^&?!~ \u{0}\u{7}"),
        Outcome::CompileErrors
    ));
}

#[test]
fn unterminated_everything() {
    assert!(matches!(
        bounded("class Eq2 a where { eq2 :: a ->"),
        Outcome::CompileErrors
    ));
}

#[test]
fn deeply_nested_parens_hit_parser_depth_budget() {
    let depth = 10_000;
    let src = format!("main = {}1{};", "(".repeat(depth), ")".repeat(depth));
    assert!(matches!(
        bounded_with(src, Options::default()),
        Outcome::CompileErrors
    ));
}

#[test]
fn deeply_nested_lambdas_hit_parser_depth_budget() {
    let src = format!("main = {}1;", "\\x -> ".repeat(5_000));
    assert!(matches!(
        bounded_with(src, Options::default()),
        Outcome::CompileErrors
    ));
}

#[test]
fn semicolon_flood() {
    let src = ";".repeat(10_000);
    let out = bounded_with(src, Options::default());
    assert!(
        matches!(out, Outcome::CompileErrors | Outcome::NoMain),
        "{out:?}"
    );
}

#[test]
fn thousands_of_chained_bindings_compile_and_run() {
    // A 3000-binding dependency chain: dependency analysis and
    // elaboration are iterative, so compilation terminates; evaluating
    // the chain head stays shallow.
    let mut src = String::from("a0 = 1;\n");
    for i in 1..3_000 {
        src.push_str(&format!("a{i} = a{};\n", i - 1));
    }
    src.push_str("main = a0;\n");
    let out = bounded_with(src, Options::default());
    assert!(matches!(out, Outcome::Value(ref v) if v == "1"), "{out:?}");
}

#[test]
fn forcing_a_deep_global_chain_is_depth_limited() {
    // Forcing the chain END nests one interpreter frame per link —
    // the depth budget turns that into a structured error instead of
    // a native stack overflow.
    let mut src = String::from("a0 = 1;\n");
    for i in 1..3_000 {
        src.push_str(&format!("a{i} = a{};\n", i - 1));
    }
    src.push_str("main = a2999;\n");
    let out = bounded_with(src, Options::default());
    assert!(
        matches!(out, Outcome::Eval(EvalError::DepthExceeded(_))),
        "{out:?}"
    );
}

#[test]
fn growing_instance_goal_exhausts_reduce_budget() {
    // Resolving C (List a) requires C (List (List a)), forever.
    let out = bounded(
        "class C a where { m :: a -> Int; };\n\
         instance C (List (List a)) => C (List a) where {\n\
           m = \\x -> 0;\n\
         };\n\
         main = m (cons 1 nil);",
    );
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn overlapping_instance_with_prelude() {
    let out = bounded(
        "instance Eq Int where { eq = primEqInt; neq = primEqInt; };\n\
         main = eq 1 1;",
    );
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn superclass_cycle() {
    let out = bounded(
        "class B a => A a where { fa :: a -> a; };\n\
         class A a => B a where { fb :: a -> a; };\n\
         main = 1;",
    );
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn method_with_no_instance() {
    let out = bounded("main = eq (\\x -> x) (\\y -> y);");
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn ambiguous_constraint() {
    let out = bounded("amb = eq nil nil;\nmain = 1;");
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn main_with_class_context_rejected() {
    let out = bounded("main x = eq x x;");
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn duplicate_bindings_rejected() {
    let out = bounded("main = 1;\nmain = 2;");
    assert!(matches!(out, Outcome::CompileErrors), "{out:?}");
}

#[test]
fn infinite_loop_is_budgeted() {
    let out = small("loop x = loop x;\nmain = loop 1;");
    assert!(
        matches!(
            out,
            Outcome::Eval(EvalError::FuelExhausted(_) | EvalError::DepthExceeded(_))
        ),
        "{out:?}"
    );
}

#[test]
fn rendering_infinite_list_exhausts_fuel() {
    let out = small("from n = cons n (from (add n 1));\nmain = from 0;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::FuelExhausted(_))),
        "{out:?}"
    );
}

#[test]
fn allocation_bomb_is_budgeted() {
    let out = small("main = length (enumFromTo 1 100000000);");
    assert!(
        matches!(
            out,
            Outcome::Eval(
                EvalError::FuelExhausted(_)
                    | EvalError::AllocationLimit(_)
                    | EvalError::DepthExceeded(_)
            )
        ),
        "{out:?}"
    );
}

#[test]
fn deep_guest_recursion_is_depth_limited() {
    let out = bounded("main = sum (enumFromTo 1 1000000);");
    assert!(
        matches!(
            out,
            Outcome::Eval(EvalError::DepthExceeded(_) | EvalError::FuelExhausted(_))
        ),
        "{out:?}"
    );
}

#[test]
fn self_referential_value_is_a_blackhole() {
    let out = bounded("x = x;\nmain = x;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::BlackHole)),
        "{out:?}"
    );
}

#[test]
fn head_of_empty_list_is_structured() {
    let out = bounded("main = head (filter (\\x -> lt x 0) (enumFromTo 1 3));");
    assert!(
        matches!(out, Outcome::Eval(EvalError::EmptyList(_))),
        "{out:?}"
    );
}

#[test]
fn error_builtin_is_a_failure_value() {
    let out = bounded("main = error;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::Failure(_))),
        "{out:?}"
    );
}

#[test]
fn division_by_zero_is_structured() {
    let out = bounded("main = primDivInt 1 0;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::DivideByZero)),
        "{out:?}"
    );
}

#[test]
fn integer_overflow_is_structured() {
    let out = bounded("main = mul 4611686018427387904 4;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::IntOverflow)),
        "{out:?}"
    );
}

#[test]
fn parse_type_and_eval_errors_all_reported_together() {
    // One program with a parse error, a type error, and a binding that
    // would fail at runtime: compilation reports the first two and
    // never panics.
    let src = "broken = ) 1;\nmismatch = eq 1 True;\nmain = head nil;";
    let (tx, rx) = mpsc::channel();
    let owned = src.to_string();
    thread::spawn(move || {
        let r = run_source(&owned, &Options::default());
        let _ = tx.send((
            r.check.diags.error_count(),
            r.check.render_diagnostics(),
            matches!(r.outcome, Outcome::CompileErrors),
        ));
    });
    let (errors, rendered, compile_errors) = rx
        .recv_timeout(WALL_CLOCK)
        .expect("pipeline exceeded the wall-clock bound or panicked");
    assert!(compile_errors);
    assert!(errors >= 2, "expected multiple diagnostics:\n{rendered}");
}

#[test]
fn every_prefix_of_a_good_program_is_handled_structurally() {
    // The "chop test": truncating a known-good program at every byte
    // boundary produces either a clean compile or diagnostics — never
    // a panic, never a hang. This sweeps the parser's error recovery
    // across every possible point of mid-token, mid-declaration, and
    // mid-expression truncation. Checking is cheap, so the whole
    // sweep runs on one helper thread under one wall-clock bound.
    let src = "same x y = eq x y;\n\
               small x y = if lt x y then x else y;\n\
               main = and (same (cons 1 nil) (cons 1 nil))\n\
                          (eq (small 3 4) 3);\n";
    let (tx, rx) = mpsc::channel();
    let owned = src.to_string();
    thread::spawn(move || {
        let mut checked = 0u32;
        for end in 0..=owned.len() {
            if !owned.is_char_boundary(end) {
                continue;
            }
            let prefix = &owned[..end];
            let c = typeclasses::check_source(prefix, &Options::default());
            // A prefix either compiles clean (e.g. whole declarations
            // survive the chop) or reports diagnostics; rendering must
            // also hold together at every truncation point.
            if !c.ok() {
                assert!(
                    c.diags.error_count() > 0,
                    "not ok but no errors at prefix {end}"
                );
            }
            let rendered = c.render_diagnostics();
            assert!(
                c.ok() || !rendered.is_empty(),
                "unrenderable diagnostics at prefix {end}"
            );
            checked += 1;
        }
        let _ = tx.send(checked);
    });
    let checked = rx
        .recv_timeout(WALL_CLOCK)
        .expect("chop sweep exceeded the wall-clock bound or panicked");
    assert!(
        checked > 100,
        "expected to sweep every prefix, got {checked}"
    );
}

#[test]
fn every_prefix_of_a_data_program_is_handled_structurally() {
    // The chop test over the data-type surface: `data` declarations
    // with parameters and `deriving`, constructor applications, and
    // `case` with constructor, wildcard-binder, and default arms.
    // Every byte-boundary truncation must compile clean or report
    // structured diagnostics — never panic, never hang.
    let src = "data Color = Red | Green | Blue deriving (Eq, Ord);\n\
               data Pair a b = MkPair a b deriving (Eq);\n\
               data Nat = Z | S Nat deriving (Eq, Ord);\n\
               classify c = case c of { Red -> 0; Green -> 1; _ -> 2 };\n\
               fstOf p = case p of { MkPair x _ -> x };\n\
               toInt n = case n of { Z -> 0; S m -> add 1 (toInt m) };\n\
               main = and (eq (MkPair Red (S Z)) (MkPair Red (S Z)))\n\
                          (lte (classify Green) (toInt (S (S Z))));\n";
    let (tx, rx) = mpsc::channel();
    let owned = src.to_string();
    thread::spawn(move || {
        let mut checked = 0u32;
        for end in 0..=owned.len() {
            if !owned.is_char_boundary(end) {
                continue;
            }
            let prefix = &owned[..end];
            let c = typeclasses::check_source(prefix, &Options::default());
            if !c.ok() {
                assert!(
                    c.diags.error_count() > 0,
                    "not ok but no errors at prefix {end}"
                );
            }
            let rendered = c.render_diagnostics();
            assert!(
                c.ok() || !rendered.is_empty(),
                "unrenderable diagnostics at prefix {end}"
            );
            checked += 1;
        }
        let _ = tx.send(checked);
    });
    let checked = rx
        .recv_timeout(WALL_CLOCK)
        .expect("data chop sweep exceeded the wall-clock bound or panicked");
    assert!(
        checked > 100,
        "expected to sweep every prefix, got {checked}"
    );
    // The untruncated program itself runs to a value.
    let out = bounded(src);
    assert!(
        matches!(out, Outcome::Value(ref v) if v == "True"),
        "{out:?}"
    );
}

#[test]
fn runtime_match_failure_is_structured() {
    // The lint warns about the missing arm, but warnings don't stop
    // evaluation: the uncovered constructor becomes a structured
    // match-failure, never a panic.
    let out = bounded("data T = A | B;\nf x = case x of { A -> 1 };\nmain = f B;");
    assert!(
        matches!(out, Outcome::Eval(EvalError::MatchFailure)),
        "{out:?}"
    );
}
