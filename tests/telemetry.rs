//! Integration tests for the tc-trace observability layer: stage
//! spans, resolution explain-traces, the evaluator profiler, and the
//! JSON surface they all share.

use typeclasses::eval::BindingProfile;
use typeclasses::trace::json;
use typeclasses::{run_source, Options, Outcome, Stage};

const MEMBER_MAIN: &str = "main = member 3 (enumFromTo 1 5);";

fn traced() -> Options {
    Options {
        trace_timing: true,
        ..Options::default()
    }
}

// ---------------------------------------------------------------- spans

#[test]
fn spans_are_monotone_and_cover_the_whole_run() {
    let r = run_source(MEMBER_MAIN, &traced());
    assert!(matches!(r.outcome, Outcome::Value(_)));

    let spans = r.check.telemetry.spans();
    let names: Vec<&str> = spans.iter().map(|s| s.stage.name()).collect();
    assert_eq!(
        names,
        [
            "lex",
            "parse",
            "class-env",
            "coherence",
            "elaborate",
            "share",
            "eval"
        ],
        "every pipeline stage should be spanned, in pipeline order"
    );

    // Spans are disjoint and ordered: each one starts at or after the
    // previous one ended, relative to the shared telemetry epoch.
    for pair in spans.windows(2) {
        assert!(
            pair[1].start_ns >= pair[0].start_ns,
            "span starts must be nondecreasing: {:?}",
            names
        );
        assert!(
            pair[1].start_ns >= pair[0].end_ns(),
            "{} starts before {} ends",
            pair[1].stage.name(),
            pair[0].stage.name()
        );
    }

    // The stage spans account for the run: total time is the sum of
    // the per-stage durations, and that sum is nonzero.
    let sum: u64 = spans.iter().map(|s| s.duration_ns).sum();
    assert_eq!(r.check.telemetry.total_ns(), sum);
    assert!(sum > 0, "a real run takes measurable time");
}

#[test]
fn lint_stage_is_spanned_when_linting() {
    let check = typeclasses::lint_source(MEMBER_MAIN, &traced());
    let names: Vec<&str> = check
        .telemetry
        .spans()
        .iter()
        .map(|s| s.stage.name())
        .collect();
    assert!(
        names.contains(&"lint"),
        "lint runs should record a lint span, got {names:?}"
    );
}

#[test]
fn all_stage_names_are_distinct() {
    let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), Stage::ALL.len());
}

// ---------------------------------------------- zero-cost when disabled

#[test]
fn default_options_allocate_no_trace_structures() {
    let r = run_source(MEMBER_MAIN, &Options::default());
    assert!(
        r.check.telemetry.allocates_nothing(),
        "telemetry must be allocation-free when trace_timing is off"
    );
    assert!(
        r.check.render_explain().is_none(),
        "no resolution trace unless trace_resolution is set"
    );
    assert!(
        r.profile.is_none(),
        "no evaluator profile unless profile_eval is set"
    );
}

// -------------------------------------------------------------- explain

#[test]
fn explain_names_the_instance_for_members_eq_goal() {
    let opts = Options {
        trace_resolution: true,
        ..Options::default()
    };
    let r = run_source(MEMBER_MAIN, &opts);
    assert!(matches!(r.outcome, Outcome::Value(_)));
    let explain = r.check.render_explain().expect("trace_resolution was on");

    // `member 3 (enumFromTo 1 5)` forces `Eq Int`; the trace must name
    // the instance that discharged it.
    assert!(
        explain.contains("Eq Int: instance #"),
        "expected the Eq Int goal to name its instance:\n{explain}"
    );
    // `member`'s own `Eq a` context is discharged from an assumption.
    assert!(
        explain.contains("assumption #0"),
        "expected an assumption discharge in:\n{explain}"
    );
}

#[test]
fn explain_reports_memo_hit_provenance_for_eq_list_int() {
    // Two separate uses of `Eq (List Int)`: the first derivation is
    // tabled, the second must be reported as a memo hit pointing back
    // at the goal that derived it.
    let src = "\
        xs :: List (List Int);\n\
        xs = cons (enumFromTo 1 2) nil;\n\
        a = member (enumFromTo 1 2) xs;\n\
        b = member (enumFromTo 3 4) xs;\n\
        main = a;\n";
    let opts = Options {
        trace_resolution: true,
        ..Options::default()
    };
    let r = run_source(src, &opts);
    assert!(r.check.ok(), "{}", r.check.render_diagnostics());
    let explain = r.check.render_explain().expect("trace_resolution was on");

    assert!(
        explain.contains("Eq (List Int): instance #"),
        "first Eq (List Int) use should derive via the instance:\n{explain}"
    );
    assert!(
        explain.contains("[tabled]"),
        "the closed derivation should be tabled:\n{explain}"
    );
    let memo_line = explain
        .lines()
        .find(|l| l.contains("Eq (List Int): memo hit"))
        .unwrap_or_else(|| panic!("second use should be a memo hit:\n{explain}"));
    assert!(
        memo_line.contains("derived at goal #"),
        "memo hits must carry provenance: {memo_line}"
    );
}

// ------------------------------------------------------------- profiler

#[test]
fn profiler_force_counts_match_analytic_expectations() {
    // `y` is forced twice by `main`; `x` is forced twice by the single
    // evaluation of `y` (its result is cached, so `main`'s second
    // force of `y` does not re-force `x`). `main` is forced once, by
    // the driver.
    let src = "\
        x = 5;\n\
        y = primAddInt x x;\n\
        main = primAddInt y y;\n";
    let opts = Options {
        profile_eval: true,
        use_prelude: false,
        ..Options::default()
    };
    let r = run_source(src, &opts);
    match &r.outcome {
        Outcome::Value(v) => assert_eq!(v, "20"),
        other => panic!("expected 20, got {other:?}"),
    }
    let profile = r.profile.expect("profile_eval was on");
    let forces = |name: &str| -> u64 {
        profile
            .get(name)
            .map(|b: &BindingProfile| b.forces)
            .unwrap_or_else(|| panic!("no profile entry for {name}"))
    };
    assert_eq!(forces("main"), 1);
    assert_eq!(forces("y"), 2);
    assert_eq!(forces("x"), 2);
}

#[test]
fn profiled_eval_stats_land_in_pipeline_stats() {
    let r = run_source(MEMBER_MAIN, &Options::default());
    let stats = r.check.stats.eval.expect("run_checked records EvalStats");
    assert!(stats.fuel_used > 0, "evaluating member burns fuel");
    assert!(stats.forces > 0);
    assert!(stats.thunks_created > 0);
}

// ----------------------------------------------------------------- JSON

#[test]
fn stats_json_is_well_formed() {
    let r = run_source(MEMBER_MAIN, &Options::default());
    let j = r.check.stats.to_json();
    json::check(&j).unwrap_or_else(|e| panic!("stats JSON malformed: {e}\n{j}"));
    assert!(j.contains("\"eval\""), "eval stats belong in stats JSON");
}

#[test]
fn trace_json_is_well_formed_with_everything_on() {
    let opts = Options {
        trace_timing: true,
        trace_resolution: true,
        profile_eval: true,
        ..Options::default()
    };
    let r = run_source(MEMBER_MAIN, &opts);
    let j = r.trace_json();
    json::check(&j).unwrap_or_else(|e| panic!("trace JSON malformed: {e}\n{j}"));
    for key in [
        "\"spans\"",
        "\"counters\"",
        "\"stats\"",
        "\"profile\"",
        "\"outcome\"",
    ] {
        assert!(j.contains(key), "trace JSON missing {key}:\n{j}");
    }
}

#[test]
fn trace_json_is_well_formed_with_everything_off() {
    let r = run_source(MEMBER_MAIN, &Options::default());
    let j = r.trace_json();
    json::check(&j).unwrap_or_else(|e| panic!("trace JSON malformed: {e}\n{j}"));
    assert!(
        j.contains("\"profile\": null"),
        "profile is null when off:\n{j}"
    );
}

#[test]
fn compile_error_still_yields_valid_trace_json() {
    let r = run_source("main = nonexistent;", &traced());
    assert!(matches!(r.outcome, Outcome::CompileErrors));
    let j = r.trace_json();
    json::check(&j).unwrap_or_else(|e| panic!("trace JSON malformed: {e}\n{j}"));
    assert!(j.contains("compile-errors"));
}
