//! Chaos suite for the compilation server: seeded fault injection
//! across the pipeline, deadlines, overload, and the serve-vs-oneshot
//! differential.
//!
//! The invariants under test, per ROADMAP:
//!
//! 1. **Exactly-once classification.** Every request line produces
//!    exactly one response, classified `ok` / `error:internal` /
//!    `error:deadline` / `error:overloaded` / `error:bad-request` —
//!    even when faults panic workers in the middle of arbitrary
//!    pipeline stages.
//! 2. **No worker death.** A fixed pool survives hundreds of injected
//!    panics; the session drains to EOF and answers everything.
//! 3. **Metrics reconcile.** The fleet snapshot's per-class counters
//!    sum to the number of requests; responses written match lines
//!    read.
//! 4. **Serve ≡ one-shot.** Every program from the differential
//!    corpus produces byte-identical output through the server and
//!    through a plain [`run_source`] call.

use std::collections::BTreeSet;

use typeclasses::serve::{serve_lines, ServeConfig};
use typeclasses::trace::json;
use typeclasses::{run_source, CounterId, FaultPlan, JsonWriter, Options, Outcome};

fn req(id: u64, program: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("id", id);
    w.field_str("program", program);
    w.end_object();
    w.finish()
}

fn parse_all(lines: &[String]) -> Vec<json::Value> {
    lines
        .iter()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("unparseable response: {e}\n{l}")))
        .collect()
}

/// Classify one response into the protocol's response classes.
fn class_of(v: &json::Value) -> &str {
    match v.get("status").and_then(|s| s.as_str()) {
        Some("ok") => "ok",
        Some("error") => v
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap_or("<missing error class>"),
        _ => "<missing status>",
    }
}

/// A small corpus that exercises every pipeline stage meaningfully.
fn chaos_programs() -> [&'static str; 5] {
    [
        "main = member 3 (enumFromTo 1 5);",
        "p = eq (cons 1 nil) (cons 2 nil);\nmain = p;",
        "same x y = eq x y;\nmain = same (cons 1 nil) (cons 1 nil);",
        "main = map (\\x -> mul x x) (enumFromTo 1 4);",
        "data T = A | B Int deriving (Eq, Ord);\n\
         main = and (lte A (B 1)) (case (B 2) of { A -> False; B n -> eq n 2 });",
    ]
}

#[test]
fn chaos_every_request_gets_exactly_one_classified_response() {
    // 120 seeded requests against a plan that panics in three distinct
    // pipeline stages (parse / elaborate / eval) and stalls a fourth
    // site. The decisions are a pure function of (seed, seq, site), so
    // this test replays the exact same failures on every run.
    const N: u64 = 120;
    let plan =
        FaultPlan::parse("seed=1;parse=panic%15;elaborate=panic%15;eval=panic%15;share=delay:1%10")
            .unwrap_or_else(|e| panic!("{e}"));
    // Queue capacity exceeds the batch so nothing is shed: which
    // requests run (and therefore which faults fire) is then a pure
    // function of the seed, making the replay assertion exact.
    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        faults: Some(plan),
        ..ServeConfig::default()
    };
    let programs = chaos_programs();
    let lines: Vec<String> = (1..=N)
        .map(|i| req(i, programs[(i as usize) % programs.len()]))
        .collect();
    let (out, summary) = serve_lines(&lines, &cfg);

    // Exactly one response per request, all ids accounted for.
    assert_eq!(out.len() as u64, N, "one response per request line");
    assert_eq!(summary.lines, N);
    assert_eq!(summary.responses, N);
    assert_eq!(summary.write_errors, 0);
    let vals = parse_all(&out);
    let ids: BTreeSet<u64> = vals
        .iter()
        .map(|v| {
            v.get("id")
                .and_then(|i| i.as_u64())
                .unwrap_or_else(|| panic!("response without id"))
        })
        .collect();
    assert_eq!(ids.len() as u64, N, "every id answered exactly once");
    assert_eq!(*ids.iter().next().unwrap_or(&0), 1);
    assert_eq!(*ids.iter().last().unwrap_or(&0), N);

    // Every response falls into a known class; nothing unclassified.
    let allowed = ["ok", "internal", "deadline", "overloaded"];
    let mut by_class = std::collections::HashMap::new();
    for v in &vals {
        let c = class_of(v);
        assert!(allowed.contains(&c), "unexpected class {c}: {v:?}");
        *by_class.entry(c.to_string()).or_insert(0u64) += 1;
    }

    // The injected panics actually fired — and in at least three
    // distinct pipeline stages (the panic payload names its site).
    let internal = by_class.get("internal").copied().unwrap_or(0);
    assert!(
        internal > 0,
        "the 15% panic rules should fire: {by_class:?}"
    );
    let stages: BTreeSet<&str> = vals
        .iter()
        .filter(|v| class_of(v) == "internal")
        .filter_map(|v| v.get("detail").and_then(|d| d.as_str()))
        .flat_map(|d| {
            ["parse", "classenv", "elaborate", "share", "lint", "eval"]
                .into_iter()
                .filter(move |s| d.contains(&format!("panic at {s}")))
        })
        .collect();
    assert!(
        stages.len() >= 3,
        "panics should land in >=3 distinct stages, got {stages:?}"
    );

    // No worker died: the pool drained every admitted request despite
    // the panics, and the oversized queue meant nothing was shed.
    assert_eq!(summary.admitted, N);
    assert_eq!(summary.shed, 0);

    // Fleet metrics reconcile: per-class counters sum to the request
    // counter, and the request counter matches the lines read.
    let m = &summary.fleet;
    assert_eq!(m.counter(CounterId::ServeRequests), N);
    let classified = m.counter(CounterId::ServeOk)
        + m.counter(CounterId::ServeErrInternal)
        + m.counter(CounterId::ServeErrDeadline)
        + m.counter(CounterId::ServeErrOverloaded)
        + m.counter(CounterId::ServeErrBadRequest);
    assert_eq!(classified, N, "{by_class:?}");
    assert_eq!(m.counter(CounterId::ServeErrInternal), internal);
    assert!(m.counter(CounterId::ServeFaultsInjected) >= internal);

    // Determinism: the same seed and batch produce the same classes.
    let (out2, _) = serve_lines(&lines, &cfg);
    let vals2 = parse_all(&out2);
    let mut by_class2 = std::collections::HashMap::new();
    for v in &vals2 {
        *by_class2.entry(class_of(v).to_string()).or_insert(0u64) += 1;
    }
    assert_eq!(by_class, by_class2, "seeded faults must replay identically");
}

#[test]
fn chaos_delays_plus_deadlines_answer_deadline_errors() {
    // Every request stalls 40ms at the elaborate site but carries a
    // 10ms deadline: the cooperative checks must classify every one
    // as a deadline error — workers never wedge, the batch drains.
    let plan = FaultPlan::parse("seed=5;elaborate=delay:40").unwrap_or_else(|e| panic!("{e}"));
    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 32,
        default_deadline_ms: Some(10),
        faults: Some(plan),
        ..ServeConfig::default()
    };
    let lines: Vec<String> = (1..=12).map(|i| req(i, "main = add 1 2;")).collect();
    let (out, summary) = serve_lines(&lines, &cfg);
    assert_eq!(out.len(), 12);
    let vals = parse_all(&out);
    for v in &vals {
        assert_eq!(class_of(v), "deadline", "{v:?}");
    }
    assert_eq!(summary.deadline(), 12);
}

#[test]
fn overload_sheds_and_recovers() {
    // A tiny pool and queue under a burst: some requests shed with a
    // retry hint, everything is still answered, and a second calm
    // batch on a fresh session is all-ok (the server state carries no
    // damage forward).
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let lines: Vec<String> = (1..=60)
        .map(|i| req(i, "main = length (enumFromTo 1 500);"))
        .collect();
    let (out, summary) = serve_lines(&lines, &cfg);
    assert_eq!(out.len(), 60);
    assert_eq!(summary.admitted + summary.shed, 60);
    assert_eq!(summary.responses, 60);
    let vals = parse_all(&out);
    for v in vals.iter().filter(|v| class_of(v) == "overloaded") {
        assert!(
            v.get("retry_after_ms").and_then(|n| n.as_u64()).is_some(),
            "shed responses carry a retry hint: {v:?}"
        );
    }
    // Fleet queue-depth histogram saw admission decisions.
    let m = &summary.fleet;
    assert_eq!(m.counter(CounterId::ServeRequests), 60);

    // A fresh session with breathing room is all-ok: the burst left
    // no damage behind.
    let calm_cfg = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        ..ServeConfig::default()
    };
    let calm: Vec<String> = (1..=3).map(|i| req(i, "main = add 1 2;")).collect();
    let (out2, summary2) = serve_lines(&calm, &calm_cfg);
    assert_eq!(out2.len(), 3);
    assert_eq!(summary2.ok(), 3);
}

/// The differential corpus: the checked-in examples plus the inline
/// programs the differential suite uses (same shapes: memo-friendly
/// towers, sharing-friendly repetition, polymorphic contexts, and
/// error programs).
fn differential_programs() -> Vec<(String, String)> {
    let mut progs: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir("examples").expect("examples dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "mh") {
            progs.push((
                path.display().to_string(),
                std::fs::read_to_string(&path).expect("example source"),
            ));
        }
    }
    assert!(progs.len() >= 3, "expected the three example programs");
    progs.push(("prelude-only".into(), String::new()));
    for (name, src) in [
        (
            "deep-tower",
            "main = eq (cons (cons (cons 1 nil) nil) nil) nil;",
        ),
        (
            "repeated-dicts",
            "p xs = and (eq xs (cons 1 nil)) (eq xs nil);\n\
             main = and (p (cons 2 nil)) (eq (cons 3 nil) nil);",
        ),
        (
            "polymorphic-context",
            "same x y = eq x y;\nmain = same (cons 1 nil) (cons 1 nil);",
        ),
        ("no-instance-error", "main = eq (\\x -> x) (\\y -> y);"),
        ("unbound-error", "main = missingFunction 3;"),
        ("runtime-error", "main = head nil;"),
        (
            "match-failure",
            "data T = A | B;\nf x = case x of { A -> 1 };\nmain = f B;",
        ),
    ] {
        progs.push((name.into(), src.into()));
    }
    progs
}

#[test]
fn serve_matches_oneshot_byte_for_byte() {
    // Same pipeline, two front ends: for every differential program,
    // the server's response must carry exactly the bytes the one-shot
    // driver produces — values, rendered diagnostics, and runtime
    // error messages alike.
    let progs = differential_programs();
    let lines: Vec<String> = progs
        .iter()
        .enumerate()
        .map(|(i, (_, src))| req(i as u64 + 1, src))
        .collect();
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (out, summary) = serve_lines(&lines, &cfg);
    assert_eq!(out.len(), progs.len());
    assert_eq!(summary.ok(), progs.len() as u64);
    let vals = parse_all(&out);

    for (i, (name, src)) in progs.iter().enumerate() {
        let id = i as u64 + 1;
        let v = vals
            .iter()
            .find(|v| v.get("id").and_then(|n| n.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("no response for {name}"));
        let one_shot = run_source(src, &Options::default());
        let outcome = v.get("outcome").and_then(|s| s.as_str());
        match &one_shot.outcome {
            Outcome::Value(expected) => {
                assert_eq!(outcome, Some("value"), "{name}: {v:?}");
                assert_eq!(
                    v.get("value").and_then(|s| s.as_str()),
                    Some(expected.as_str()),
                    "{name}: value must be byte-identical"
                );
            }
            Outcome::CompileErrors => {
                assert_eq!(outcome, Some("compile-errors"), "{name}: {v:?}");
                assert_eq!(
                    v.get("detail").and_then(|s| s.as_str()),
                    Some(one_shot.check.render_diagnostics().as_str()),
                    "{name}: diagnostics must be byte-identical"
                );
            }
            Outcome::NoMain => {
                assert_eq!(outcome, Some("no-main"), "{name}: {v:?}");
            }
            Outcome::Eval(e) => {
                assert_eq!(outcome, Some("eval-error"), "{name}: {v:?}");
                assert_eq!(
                    v.get("detail").and_then(|s| s.as_str()),
                    Some(e.to_string().as_str()),
                    "{name}: eval error must be byte-identical"
                );
                assert_eq!(
                    v.get("code").and_then(|s| s.as_str()),
                    Some(e.code()),
                    "{name}"
                );
            }
        }
    }
}

fn check_req(id: u64, program: &str, check_laws: bool, prelude: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("id", id);
    w.field_str("cmd", "check");
    w.field_str("program", program);
    w.field_bool("check_laws", check_laws);
    w.field_bool("prelude", prelude);
    w.end_object();
    w.finish()
}

#[test]
fn check_command_surfaces_overlap_with_counterexample() {
    // Two user instances whose heads unify: the coherence checker
    // reports L0008 (deny by default) and the message carries the
    // rendered counterexample type — the most general type both heads
    // cover.
    let src = "class Sz a where { sz :: a -> Int; };\n\
               instance Sz (List a) where { sz = \\x -> 0; };\n\
               instance Sz (List Int) where { sz = \\x -> 1; };\n\
               main = sz (cons 1 nil);";
    let (out, summary) = serve_lines(&[check_req(1, src, false, true)], &ServeConfig::default());
    assert_eq!(summary.ok(), 1, "{out:?}");
    let vals = parse_all(&out);
    let v = &vals[0];
    assert_eq!(v.get("cmd").and_then(|s| s.as_str()), Some("check"));
    // L0008 is deny by default, so the verdict is not-ok...
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
    // ...and the response never evaluates, so there is no outcome.
    assert!(v.get("outcome").is_none());
    let diags = v
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .unwrap_or_else(|| panic!("diagnostics array: {v:?}"));
    let overlap = diags
        .iter()
        .find(|d| d.get("code").and_then(|c| c.as_str()) == Some("L0008"))
        .unwrap_or_else(|| panic!("no L0008 in {diags:?}"));
    assert_eq!(
        overlap.get("severity").and_then(|s| s.as_str()),
        Some("error")
    );
    let msg = overlap
        .get("message")
        .and_then(|m| m.as_str())
        .unwrap_or("");
    assert!(
        msg.contains("counterexample type `List Int`"),
        "counterexample missing: {msg}"
    );
    // The diagnostic anchors on the second instance head, inside the
    // user program (past the prelude boundary is offset-adjusted to 0).
    assert!(overlap.get("start").and_then(|n| n.as_u64()).is_some());
}

#[test]
fn check_command_reports_law_violations_when_asked() {
    // `primLeInt` is <=, which is reflexive but not symmetric: with
    // check_laws on, the harness evaluates the generated symmetry
    // program and reports L0011 citing the failing sample.
    let src = "class Eq a where { eq :: a -> a -> Bool; };\n\
               instance Eq Int where { eq = primLeInt; };";
    let lines = vec![
        check_req(1, src, true, false),
        check_req(2, src, false, false),
    ];
    let (out, summary) = serve_lines(&lines, &ServeConfig::default());
    assert_eq!(summary.ok(), 2, "{out:?}");
    let vals = parse_all(&out);
    let get = |id: u64| {
        vals.iter()
            .find(|v| v.get("id").and_then(|n| n.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("missing id {id}"))
    };
    let with_laws = get(1);
    let diags = with_laws
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .unwrap_or_else(|| panic!("diagnostics array: {with_laws:?}"));
    let violation = diags
        .iter()
        .find(|d| d.get("code").and_then(|c| c.as_str()) == Some("L0011"))
        .unwrap_or_else(|| panic!("no L0011 in {diags:?}"));
    let msg = violation
        .get("message")
        .and_then(|m| m.as_str())
        .unwrap_or("");
    assert!(msg.contains("symmetry"), "law name missing: {msg}");
    // Law violations are warn by default: the verdict stays ok.
    assert_eq!(with_laws.get("ok").and_then(|b| b.as_bool()), Some(true));
    // Without check_laws the harness never runs, so the same program
    // checks clean.
    let without = get(2);
    assert_eq!(without.get("ok").and_then(|b| b.as_bool()), Some(true));
    let diags = without
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .unwrap_or_else(|| panic!("diagnostics array: {without:?}"));
    assert!(diags
        .iter()
        .all(|d| d.get("code").and_then(|c| c.as_str()) != Some("L0011")));
}

#[test]
fn serve_honors_per_request_option_overrides() {
    // The same program with memoization on and off answers the same
    // value through the pool — the per-request override plumbs all the
    // way down to the resolver, as the stats echo shows.
    let src = "p = and (eq (cons 1 nil) nil) (eq (cons 2 nil) nil);\\nmain = p;";
    let lines = vec![
        format!("{{\"id\": 1, \"program\": \"{src}\", \"stats\": true}}"),
        format!("{{\"id\": 2, \"program\": \"{src}\", \"memoize\": false, \"stats\": true}}"),
    ];
    let (out, _) = serve_lines(&lines, &ServeConfig::default());
    let vals = parse_all(&out);
    let get = |id: u64| {
        vals.iter()
            .find(|v| v.get("id").and_then(|n| n.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("missing id {id}"))
    };
    let memo_on = get(1);
    let memo_off = get(2);
    assert_eq!(
        memo_on.get("value").and_then(|s| s.as_str()),
        memo_off.get("value").and_then(|s| s.as_str())
    );
    let hits = |v: &json::Value| {
        v.get("stats")
            .and_then(|s| s.get("table_hits"))
            .and_then(|n| n.as_u64())
            .unwrap_or_else(|| panic!("stats missing: {v:?}"))
    };
    assert!(hits(memo_on) > 0);
    assert_eq!(hits(memo_off), 0);
}
