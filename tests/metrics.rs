//! Integration tests for the metrics subsystem: the zero-cost-when-off
//! discipline, cross-stage agreement between the metric catalog and
//! the existing pipeline counters, and the JSON/table renderings.

use typeclasses::trace::json;
use typeclasses::{check_source, run_source, CounterId, GaugeId, HistogramId, Options, Outcome};

const MEMBER_MAIN: &str = "main = member 3 (enumFromTo 1 5);";

const SHARING_SRC: &str = "p = eq (cons 1 nil) (cons 2 nil);\n\
                           q = and (eq (cons 1 nil) nil) (eq (cons 3 nil) nil);\n\
                           main = q;";

fn metered() -> Options {
    Options {
        collect_metrics: true,
        ..Options::default()
    }
}

// ------------------------------------------------------------- off mode

#[test]
fn default_options_allocate_no_metric_storage() {
    let r = run_source(MEMBER_MAIN, &Options::default());
    assert!(matches!(r.outcome, Outcome::Value(_)));
    assert!(r.check.stats.metrics.allocates_nothing());
    assert!(r.check.goal_spans.is_empty());
    // Every accessor degrades to zero / empty rather than panicking.
    assert_eq!(r.check.stats.metrics.counter(CounterId::ResolveGoals), 0);
    assert_eq!(r.check.stats.metrics.gauge(GaugeId::InternTableSize), 0);
    assert!(r
        .check
        .stats
        .metrics
        .histogram(HistogramId::ResolveGoalDepth)
        .is_none());
    assert!(r.check.stats.metrics.counters_snapshot().is_empty());
}

// ----------------------------------------------- cross-stage agreement

#[test]
fn resolver_metrics_agree_with_resolve_stats() {
    let c = check_source(SHARING_SRC, &metered());
    assert!(c.ok(), "{}", c.render_diagnostics());
    let m = &c.stats.metrics;
    assert_eq!(
        m.counter(CounterId::ResolveCacheHits),
        c.stats.resolve.table_hits
    );
    assert_eq!(
        m.counter(CounterId::ResolveCacheMisses),
        c.stats.resolve.table_misses
    );
    assert_eq!(m.counter(CounterId::ResolveGoals), c.stats.resolve.goals);
    assert_eq!(
        m.counter(CounterId::ResolveDictsConstructed),
        c.stats.resolve.dicts_constructed
    );
    // The goal-depth histogram observes exactly once per goal.
    let depth = m
        .histogram(HistogramId::ResolveGoalDepth)
        .expect("metrics on");
    assert_eq!(depth.count, c.stats.resolve.goals);
}

#[test]
fn interner_and_cache_gauges_are_populated() {
    let c = check_source(SHARING_SRC, &metered());
    let m = &c.stats.metrics;
    assert!(m.counter(CounterId::InternFresh) > 0, "goals were interned");
    assert!(
        m.gauge(GaugeId::InternTableSize) >= 1,
        "the interner tabled at least one node"
    );
    assert!(
        m.gauge(GaugeId::ResolveCacheEntries) as usize >= 1,
        "ground goals were memoized"
    );
}

#[test]
fn share_metrics_agree_with_share_stats() {
    let c = check_source(SHARING_SRC, &metered());
    let m = &c.stats.metrics;
    assert!(c.stats.share.hoisted_bindings > 0, "{:?}", c.stats.share);
    assert_eq!(
        m.counter(CounterId::ShareDictsHoisted),
        c.stats.share.hoisted_bindings
    );
    assert_eq!(
        m.counter(CounterId::ShareOccurrencesShared),
        c.stats.share.occurrences_shared
    );
    // The let-size histogram sums to the hoisted-binding total.
    let sizes = m.histogram(HistogramId::ShareLetSize).expect("metrics on");
    assert_eq!(sizes.sum, c.stats.share.hoisted_bindings);
    assert!(sizes.count >= 1);
}

#[test]
fn eval_metrics_agree_with_eval_stats() {
    let r = run_source(MEMBER_MAIN, &metered());
    assert!(matches!(r.outcome, Outcome::Value(_)), "{:?}", r.outcome);
    let m = &r.check.stats.metrics;
    let eval = r.check.stats.eval.expect("program was evaluated");
    assert_eq!(m.counter(CounterId::EvalThunksCreated), eval.thunks_created);
    assert_eq!(m.counter(CounterId::EvalForces), eval.forces);
    assert_eq!(m.counter(CounterId::EvalFuelUsed), eval.fuel_used);
    // Per-binding fuel histogram exists even though profiling was not
    // requested by the caller...
    let fuel = m
        .histogram(HistogramId::EvalBindingFuel)
        .expect("metrics on");
    assert!(fuel.count > 0);
    assert!(fuel.sum <= eval.fuel_used);
    // ...and no profile leaks out.
    assert!(r.profile.is_none());
}

#[test]
fn parse_recoveries_are_counted() {
    let clean = check_source(MEMBER_MAIN, &metered());
    assert_eq!(clean.stats.metrics.counter(CounterId::ParseRecoveries), 0);
    let broken = check_source("f = = 1;\nmain = 2;", &metered());
    assert!(
        broken.stats.metrics.counter(CounterId::ParseRecoveries) > 0,
        "malformed input recovers at least once"
    );
}

// ----------------------------------------------------- non-interference

#[test]
fn metrics_leave_results_and_counters_unchanged() {
    let plain = run_source(SHARING_SRC, &Options::default());
    let metered = run_source(SHARING_SRC, &metered());
    let (Outcome::Value(a), Outcome::Value(b)) = (&plain.outcome, &metered.outcome) else {
        panic!("{:?} / {:?}", plain.outcome, metered.outcome);
    };
    assert_eq!(a, b);
    assert_eq!(plain.check.stats.resolve, metered.check.stats.resolve);
    assert_eq!(plain.check.stats.share, metered.check.stats.share);
    assert_eq!(plain.check.stats.eval, metered.check.stats.eval);
    assert_eq!(plain.check.pretty_core(), metered.check.pretty_core());
}

// ------------------------------------------------------------ rendering

#[test]
fn stats_json_is_valid_and_carries_the_catalog() {
    let r = run_source(SHARING_SRC, &metered());
    let json_str = r.check.stats.to_json();
    json::check(&json_str).expect("stats JSON must satisfy the RFC 8259 checker");
    for key in [
        "\"metrics\"",
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"resolve.goals\"",
        "\"intern.table_size\"",
        "\"resolve.goal_depth\"",
        "\"hit_rate_pct\"",
    ] {
        assert!(json_str.contains(key), "missing {key} in {json_str}");
    }
    // With metrics off the field is an explicit null, still valid JSON.
    let off = run_source(SHARING_SRC, &Options::default());
    let off_json = off.check.stats.to_json();
    json::check(&off_json).expect("off-mode stats JSON");
    assert!(off_json.contains("\"metrics\": null"), "{off_json}");
}

#[test]
fn metric_table_is_sorted_and_complete() {
    let r = run_source(SHARING_SRC, &metered());
    let table = r.check.stats.metrics.render_table();
    let rows: Vec<&str> = table.lines().skip(1).collect(); // header first
    assert!(!rows.is_empty());
    let names: Vec<&str> = rows
        .iter()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "table rows must be name-sorted");
    for expected in ["resolve.goals", "intern.fresh", "eval.forces"] {
        assert!(names.contains(&expected), "{expected} missing from {table}");
    }
}
