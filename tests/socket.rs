//! Socket-transport integration tests: concurrent clients, split
//! frames, disconnect-mid-watch, dump ordering, the health probe
//! under saturation, watch/stats reconciliation, and the
//! transport-differential guarantee (socket answers == stdin answers
//! under the same fault seed).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use typeclasses::serve::{serve_lines, serve_socket, ServeConfig, SocketHandle};
use typeclasses::trace::json::{self, Value};
use typeclasses::{CounterId, FaultPlan, HistogramId, JsonWriter, MetricsSnapshot};

fn start(cfg: &ServeConfig) -> SocketHandle {
    let listener =
        TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| panic!("bind 127.0.0.1:0: {e}"));
    serve_socket(listener, cfg).unwrap_or_else(|e| panic!("serve_socket: {e}"))
}

/// A line-oriented test client over one TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
        let writer = stream.try_clone().unwrap_or_else(|e| panic!("clone: {e}"));
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .unwrap_or_else(|e| panic!("send: {e}"));
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("recv: {e}"));
        assert!(n > 0, "server closed the connection unexpectedly");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    /// The next line that is not a watch tick.
    fn recv_skipping_ticks(&mut self) -> Value {
        loop {
            let v = self.recv();
            if v.get("tick").is_none() {
                return v;
            }
        }
    }
}

fn req(id: u64, program: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("id", id);
    w.field_str("program", program);
    w.end_object();
    w.finish()
}

fn id_of(v: &Value) -> u64 {
    v.get("id")
        .and_then(|n| n.as_u64())
        .unwrap_or_else(|| panic!("no numeric id in {v:?}"))
}

#[test]
fn two_concurrent_clients_interleave_run_and_watch() {
    let handle = start(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut a = Client::connect(handle.addr());
    let mut b = Client::connect(handle.addr());

    a.send("{\"id\": 10, \"cmd\": \"watch\", \"interval_ms\": 40}");
    let ack = a.recv();
    assert_eq!(ack.get("cmd").and_then(|s| s.as_str()), Some("watch"));
    assert_eq!(ack.get("streaming").and_then(|x| x.as_bool()), Some(true));

    // B runs while A's subscription streams; responses route to the
    // right connection.
    b.send(&req(20, "main = add 1 2;"));
    let rb = b.recv();
    assert_eq!(id_of(&rb), 20);
    assert_eq!(rb.get("value").and_then(|s| s.as_str()), Some("3"));

    a.send(&req(11, "main = mul 3 4;"));
    let ra = a.recv_skipping_ticks();
    assert_eq!(id_of(&ra), 11);
    assert_eq!(ra.get("value").and_then(|s| s.as_str()), Some("12"));

    // A's stream keeps ticking after its own run completed.
    let mut ticks = 0;
    while ticks < 2 {
        let v = a.recv();
        if v.get("tick").is_some() {
            assert_eq!(id_of(&v), 10, "ticks carry the subscription id");
            ticks += 1;
        }
    }

    drop(a);
    drop(b);
    let summary = handle.shutdown();
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.watch_requests, 1);
    assert_eq!(summary.bad_requests, 0);
}

#[test]
fn frames_split_across_tcp_reads_parse_identically() {
    let handle = start(&ServeConfig::default());
    let mut c = Client::connect(handle.addr());

    // One request trickled in three writes with pauses: the reader
    // must reassemble the frame, not parse partial JSON.
    let line = format!("{}\n", req(1, "main = add 20 22;"));
    let bytes = line.as_bytes();
    for chunk in [&bytes[..7], &bytes[7..19], &bytes[19..]] {
        c.writer
            .write_all(chunk)
            .and_then(|()| c.writer.flush())
            .unwrap_or_else(|e| panic!("chunked send: {e}"));
        std::thread::sleep(Duration::from_millis(20));
    }
    let v = c.recv();
    assert_eq!(id_of(&v), 1);
    assert_eq!(v.get("value").and_then(|s| s.as_str()), Some("42"));

    // Two requests coalesced into a single write: both answer.
    let blob = format!(
        "{}\n{}\n",
        req(2, "main = add 1 1;"),
        req(3, "main = add 2 2;")
    );
    c.writer
        .write_all(blob.as_bytes())
        .and_then(|()| c.writer.flush())
        .unwrap_or_else(|e| panic!("coalesced send: {e}"));
    let mut got: Vec<u64> = vec![id_of(&c.recv()), id_of(&c.recv())];
    got.sort_unstable();
    assert_eq!(got, [2, 3]);

    drop(c);
    let summary = handle.shutdown();
    assert_eq!(summary.admitted, 3);
    assert_eq!(summary.responses, 3);
}

#[test]
fn client_disconnect_mid_watch_does_not_wedge_the_server() {
    let handle = start(&ServeConfig::default());

    {
        let mut a = Client::connect(handle.addr());
        a.send("{\"id\": 1, \"cmd\": \"watch\", \"interval_ms\": 30}");
        let _ack = a.recv();
        let tick = a.recv();
        assert!(tick.get("tick").is_some());
        // Drop mid-stream: the server must end the subscription, not
        // wedge a worker or leak the connection.
    }

    // Give the reader thread a moment to observe the hangup, then
    // verify the server still serves new clients and has released the
    // connection slot.
    std::thread::sleep(Duration::from_millis(150));
    let mut b = Client::connect(handle.addr());
    b.send("{\"id\": 2, \"cmd\": \"health\"}");
    let h = b.recv();
    assert_eq!(h.get("healthy").and_then(|x| x.as_bool()), Some(true));
    assert_eq!(
        h.get("active_connections").and_then(|n| n.as_u64()),
        Some(1),
        "the dropped client must be counted out"
    );
    b.send(&req(3, "main = add 1 2;"));
    assert_eq!(b.recv().get("value").and_then(|s| s.as_str()), Some("3"));

    drop(b);
    // Shutdown completing proves no worker wedged on the dead stream.
    let summary = handle.shutdown();
    assert_eq!(summary.watch_requests, 1);
    assert_eq!(summary.admitted, 1);
}

#[test]
fn dump_barrier_orders_after_in_flight_socket_requests() {
    let cfg = ServeConfig {
        workers: 2,
        faults: Some(FaultPlan::parse("seed=3;elaborate=panic").unwrap_or_else(|e| panic!("{e}"))),
        recorder: typeclasses::RecorderConfig {
            enabled: true,
            ..typeclasses::RecorderConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle = start(&cfg);
    let mut c = Client::connect(handle.addr());

    // Pipeline five panicking runs and the dump in one write: the
    // dump is admitted while the runs are still in flight, and the
    // gate barrier must hold it until every one of them retained its
    // trace.
    let mut blob = String::new();
    for i in 1..=5 {
        blob.push_str(&req(i, "main = add 1 2;"));
        blob.push('\n');
    }
    blob.push_str("{\"id\": 99, \"cmd\": \"dump\"}\n");
    c.writer
        .write_all(blob.as_bytes())
        .and_then(|()| c.writer.flush())
        .unwrap_or_else(|e| panic!("send: {e}"));

    let mut dump = None;
    for _ in 0..6 {
        let v = c.recv();
        if v.get("cmd").and_then(|s| s.as_str()) == Some("dump") {
            dump = Some(v);
        }
    }
    let dump = dump.unwrap_or_else(|| panic!("no dump response"));
    assert_eq!(
        dump.get("retained").and_then(|n| n.as_u64()),
        Some(5),
        "the barrier must wait out all five in-flight requests"
    );

    drop(c);
    let summary = handle.shutdown();
    assert_eq!(summary.internal(), 5);
    assert!(summary.retained.is_empty(), "dump drained the store");
}

#[test]
fn health_answers_while_the_admission_queue_is_saturated() {
    // One worker, a tiny queue, and every request delayed 30 ms: the
    // pipelined batch keeps the queue full for ~900 ms.
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        faults: Some(FaultPlan::parse("seed=9;eval=delay:30").unwrap_or_else(|e| panic!("{e}"))),
        ..ServeConfig::default()
    };
    let handle = start(&cfg);
    let mut load = Client::connect(handle.addr());
    let mut blob = String::new();
    for i in 1..=30 {
        blob.push_str(&req(i, "main = length (enumFromTo 1 200);"));
        blob.push('\n');
    }
    load.writer
        .write_all(blob.as_bytes())
        .and_then(|()| load.writer.flush())
        .unwrap_or_else(|e| panic!("send: {e}"));

    // The probe bypasses admission: it must answer long before the
    // single worker could possibly drain 30 delayed requests.
    let mut probe = Client::connect(handle.addr());
    let asked = Instant::now();
    probe.send("{\"id\": 1, \"cmd\": \"health\"}");
    let h = probe.recv();
    let elapsed = asked.elapsed();
    assert_eq!(h.get("cmd").and_then(|s| s.as_str()), Some("health"));
    assert!(
        elapsed < Duration::from_millis(900),
        "health took {elapsed:?}; it must not queue behind the backlog"
    );
    let queue = h.get("queue").unwrap_or_else(|| panic!("queue: {h:?}"));
    assert_eq!(queue.get("capacity").and_then(|n| n.as_u64()), Some(2));

    // Drain the load client so shutdown is orderly.
    for _ in 0..30 {
        load.recv();
    }
    drop(load);
    drop(probe);
    let summary = handle.shutdown();
    assert_eq!(summary.health_requests, 1);
    assert_eq!(summary.admitted + summary.shed, 30);
}

/// Strip timing-dependent fields so two runs of the same workload can
/// be compared exactly.
fn strip_timing(v: &Value) -> Value {
    match v {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "latency_us" && k != "retry_after_ms")
                .map(|(k, val)| (k.clone(), strip_timing(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[test]
fn socket_and_stdin_transports_answer_identically_under_the_same_fault_seed() {
    let programs = [
        "main = add 1 2;",
        "main = member 3 (enumFromTo 1 5);",
        "main = eq (cons 1 nil) (cons 1 nil);",
        "main = undefinedName;",
        "from n = cons n (from (add n 1));\nmain = from 0;",
    ];
    let lines: Vec<String> = (0..30)
        .map(|i| req(i as u64 + 1, programs[i % programs.len()]))
        .collect();
    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        faults: Some(
            FaultPlan::parse("seed=1;parse=panic%15;elaborate=panic%15;eval=panic%15")
                .unwrap_or_else(|e| panic!("{e}")),
        ),
        ..ServeConfig::default()
    };

    // stdin transport.
    let (stdin_out, stdin_summary) = serve_lines(&lines, &cfg);

    // Socket transport: one client pipelining the same batch gives
    // the same arrival order, hence the same seqs and the same
    // per-request fault draws.
    let handle = start(&cfg);
    let mut c = Client::connect(handle.addr());
    let blob = lines.join("\n") + "\n";
    c.writer
        .write_all(blob.as_bytes())
        .and_then(|()| c.writer.flush())
        .unwrap_or_else(|e| panic!("send: {e}"));
    let socket_out: Vec<Value> = (0..lines.len()).map(|_| c.recv()).collect();
    drop(c);
    let socket_summary = handle.shutdown();

    // Same admission accounting...
    assert_eq!(stdin_summary.admitted, socket_summary.admitted);
    assert_eq!(stdin_summary.internal(), socket_summary.internal());
    assert_eq!(stdin_summary.ok(), socket_summary.ok());

    // ...and identical per-request outcomes once timing fields are
    // stripped (responses complete in nondeterministic order on both
    // transports, so compare by id).
    let key = |v: &Value| {
        v.get("id")
            .and_then(|n| n.as_u64())
            .unwrap_or_else(|| panic!("no id in {v:?}"))
    };
    let mut stdin_by_id: Vec<(u64, Value)> = stdin_out
        .iter()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("{e}")))
        .map(|v| (key(&v), strip_timing(&v)))
        .collect();
    let mut socket_by_id: Vec<(u64, Value)> = socket_out
        .iter()
        .map(|v| (key(v), strip_timing(v)))
        .collect();
    stdin_by_id.sort_by_key(|(id, _)| *id);
    socket_by_id.sort_by_key(|(id, _)| *id);
    assert_eq!(stdin_by_id, socket_by_id);
}

#[test]
fn watch_deltas_reconcile_with_the_final_stats_snapshot() {
    let handle = start(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    c.send("{\"id\": 1, \"cmd\": \"watch\", \"interval_ms\": 40}");
    let ack = c.recv();
    assert_eq!(ack.get("streaming").and_then(|x| x.as_bool()), Some(true));

    for i in 0..8 {
        c.send(&req(100 + i, "main = add 1 2;"));
    }

    // Absorb every tick's delta until all runs have answered, at
    // least three ticks streamed, and a quiet (empty-delta) tick
    // proves the snapshot has caught up with the last completion.
    let mut summed = MetricsSnapshot::default();
    let mut answered = 0;
    let mut ticks = 0;
    loop {
        let v = c.recv();
        if v.get("tick").is_some() {
            ticks += 1;
            let delta = v.get("delta").unwrap_or_else(|| panic!("no delta: {v:?}"));
            let delta = MetricsSnapshot::from_json(delta).unwrap_or_else(|e| panic!("delta: {e}"));
            let quiet = delta.is_zero();
            summed.absorb(&delta);
            if quiet && answered == 8 && ticks >= 3 {
                break;
            }
        } else {
            answered += 1;
        }
    }

    // The final stats snapshot must equal the summed deltas exactly —
    // modulo the stats request itself, which is admitted (and counted
    // in serve.requests) after the last absorbed tick.
    c.send("{\"id\": 2, \"cmd\": \"stats\"}");
    let stats = loop {
        let v = c.recv();
        if v.get("cmd").and_then(|s| s.as_str()) == Some("stats") {
            break v;
        }
    };
    let fleet = stats
        .get("fleet")
        .unwrap_or_else(|| panic!("fleet: {stats:?}"));
    let counters = fleet
        .get("counters")
        .unwrap_or_else(|| panic!("counters: {stats:?}"));
    for id in CounterId::ALL {
        let actual = counters
            .get(id.name())
            .and_then(|n| n.as_u64())
            .unwrap_or(0);
        let expected = summed.counter(id) + u64::from(id.name() == CounterId::ServeRequests.name());
        assert_eq!(
            actual,
            expected,
            "counter {} must reconcile (summed {} vs stats {})",
            id.name(),
            summed.counter(id),
            actual
        );
    }
    let histograms = fleet
        .get("histograms")
        .unwrap_or_else(|| panic!("histograms: {stats:?}"));
    for id in HistogramId::ALL {
        let h = histograms.get(id.name());
        let count = h
            .and_then(|h| h.get("count"))
            .and_then(|n| n.as_u64())
            .unwrap_or(0);
        let sum = h
            .and_then(|h| h.get("sum"))
            .and_then(|n| n.as_u64())
            .unwrap_or(0);
        assert_eq!(count, summed.histogram(id).count, "{} count", id.name());
        assert_eq!(sum, summed.histogram(id).sum, "{} sum", id.name());
    }

    drop(c);
    let summary = handle.shutdown();
    assert_eq!(summary.admitted, 8);
    assert_eq!(summary.stats_requests, 1);
    assert_eq!(summary.watch_requests, 1);
}
