//! Property-style tests with a hand-rolled deterministic generator
//! (the build environment is offline, so no proptest/rand): random
//! programs must either compile-and-evaluate or come back with
//! structured errors under a small budget — never panic, never hang.

use typeclasses::{run_source, Budget, Options, Outcome};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random expression over the whole surface grammar. Most results
/// are ill-typed — that is the point: the pipeline must downgrade them
/// to diagnostics, not crash.
fn arbitrary_expr(rng: &mut Rng, depth: usize, bound: &mut Vec<String>) -> String {
    if depth == 0 || rng.below(8) == 0 {
        return leaf(rng, bound);
    }
    match rng.below(6) {
        0 => {
            let v = format!("v{}", bound.len());
            bound.push(v.clone());
            let body = arbitrary_expr(rng, depth - 1, bound);
            bound.pop();
            format!("(\\{v} -> {body})")
        }
        1 => format!(
            "({} {})",
            arbitrary_expr(rng, depth - 1, bound),
            arbitrary_expr(rng, depth - 1, bound)
        ),
        2 => format!(
            "(if {} then {} else {})",
            arbitrary_expr(rng, depth - 1, bound),
            arbitrary_expr(rng, depth - 1, bound),
            arbitrary_expr(rng, depth - 1, bound)
        ),
        3 => {
            let v = format!("v{}", bound.len());
            bound.push(v.clone());
            let rhs = arbitrary_expr(rng, depth - 1, bound);
            let body = arbitrary_expr(rng, depth - 1, bound);
            bound.pop();
            format!("(let {{ {v} = {rhs} }} in {body})")
        }
        4 => format!(
            "(cons {} {})",
            arbitrary_expr(rng, depth - 1, bound),
            arbitrary_expr(rng, depth - 1, bound)
        ),
        _ => format!(
            "(eq {} {})",
            arbitrary_expr(rng, depth - 1, bound),
            arbitrary_expr(rng, depth - 1, bound)
        ),
    }
}

fn leaf(rng: &mut Rng, bound: &[String]) -> String {
    const GLOBALS: &[&str] = &[
        "nil", "head", "tail", "null", "not", "member", "length", "sum", "True", "False", "add",
        "mul", "error",
    ];
    if !bound.is_empty() && rng.below(3) == 0 {
        return bound[rng.below(bound.len() as u64) as usize].clone();
    }
    match rng.below(3) {
        0 => format!("{}", rng.below(100)),
        1 => GLOBALS[rng.below(GLOBALS.len() as u64) as usize].to_string(),
        _ => format!("{}", rng.below(5)),
    }
}

/// A random expression guaranteed to have type `Int`, so a good share
/// of generated programs actually reach the evaluator.
fn int_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 || rng.below(6) == 0 {
        return format!("{}", rng.below(1_000));
    }
    match rng.below(5) {
        0 => format!(
            "(add {} {})",
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1)
        ),
        1 => format!(
            "(mul {} {})",
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1)
        ),
        2 => format!(
            "(sub {} {})",
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1)
        ),
        3 => format!(
            "(if (eq {} {}) then {} else {})",
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1),
            int_expr(rng, depth - 1)
        ),
        _ => format!("(sum (enumFromTo 1 {}))", rng.below(20)),
    }
}

fn small_opts() -> Options {
    Options::default().with_budget(Budget::small())
}

#[test]
fn arbitrary_programs_never_panic_under_small_budget() {
    let mut rng = Rng::new(0x5EED_CAFE);
    for i in 0..200 {
        let mut bound = Vec::new();
        let expr = arbitrary_expr(&mut rng, 4, &mut bound);
        let src = format!("main = {expr};");
        // Any outcome is acceptable; reaching here without a panic or
        // a hang is the property.
        let r = run_source(&src, &small_opts());
        match r.outcome {
            Outcome::Value(_) | Outcome::CompileErrors | Outcome::Eval(_) => {}
            Outcome::NoMain => panic!("iteration {i}: program lost its main:\n{src}"),
        }
    }
}

#[test]
fn int_programs_evaluate_or_fail_structurally() {
    let mut rng = Rng::new(0xB0B5_1ED5);
    let mut values = 0u32;
    for i in 0..150 {
        let src = format!("main = {};", int_expr(&mut rng, 4));
        let r = run_source(&src, &small_opts());
        match r.outcome {
            Outcome::Value(v) => {
                assert!(
                    v.parse::<i64>().is_ok(),
                    "iteration {i}: non-integer rendering {v:?} for\n{src}"
                );
                values += 1;
            }
            // Budget exhaustion / overflow are legitimate structured ends.
            Outcome::Eval(_) => {}
            other => panic!(
                "iteration {i}: well-typed program failed to compile: {other:?}\n{src}\n{}",
                r.check.render_diagnostics()
            ),
        }
    }
    // The generator must not degenerate into all-errors.
    assert!(values >= 50, "only {values} of 150 programs evaluated");
}

// ---------------------------------------------------------------------
// Properties of the resolution memo table (tabled resolution).
// ---------------------------------------------------------------------

use typeclasses::classes::{build_class_env, ClassEnv, ReduceBudget, ResolveCache};
use typeclasses::syntax::Span;
use typeclasses::types::{Pred, Type, VarGen};

/// A random instance environment: `Eq Int` always; `Eq Bool` and
/// `Eq a => Eq (List a)` each with 3/4 probability — so some ground
/// goals fail, exercising the "failures are never cached" path — and
/// sometimes a superclass layer `Eq a => Ord a` with `Ord` instances
/// mirroring `Eq`'s.
fn arbitrary_env(rng: &mut Rng) -> ClassEnv {
    let mut src = String::from(
        "class Eq a where { eq :: a -> a -> Bool; };\n\
         instance Eq Int where { eq = primEqInt; };\n",
    );
    if rng.below(4) != 0 {
        src.push_str("instance Eq Bool where { eq = primEqBool; };\n");
    }
    if rng.below(4) != 0 {
        src.push_str("instance Eq a => Eq (List a) where { eq = \\x y -> True; };\n");
    }
    if rng.below(2) != 0 {
        src.push_str(
            "class Eq a => Ord a where { lte :: a -> a -> Bool; };\n\
             instance Ord Int where { lte = primLeInt; };\n\
             instance Ord a => Ord (List a) where { lte = \\x y -> True; };\n",
        );
    }
    let (toks, ld) = typeclasses::syntax::lex(&src);
    assert!(!ld.has_errors(), "{}", ld.render_all(&src));
    let (prog, pd) = typeclasses::syntax::parse_program(&toks, Default::default());
    assert!(!pd.has_errors(), "{}", pd.render_all(&src));
    let mut gen = VarGen::new();
    let (cenv, cd) = build_class_env(&prog, &mut gen);
    assert!(!cd.has_errors(), "{}", cd.render_all(&src));
    cenv
}

/// A random ground type: Int or Bool under 0..6 List wrappers.
fn arbitrary_ground_type(rng: &mut Rng) -> Type {
    let mut t = if rng.below(2) == 0 {
        Type::int()
    } else {
        Type::bool()
    };
    for _ in 0..rng.below(7) {
        t = Type::list(t);
    }
    t
}

/// A random goal over the classes `cenv` actually declares.
fn arbitrary_goal(rng: &mut Rng, cenv: &ClassEnv) -> Pred {
    let class = if cenv.class("Ord").is_some() && rng.below(3) == 0 {
        "Ord"
    } else {
        "Eq"
    };
    Pred::new(class, arbitrary_ground_type(rng), Span::DUMMY)
}

#[test]
fn cached_resolution_agrees_with_fresh() {
    let mut rng = Rng::new(0x7AB1_E5EED);
    let budget = ReduceBudget::default();
    for _ in 0..30 {
        let cenv = arbitrary_env(&mut rng);
        let mut cache = ResolveCache::new();
        for _ in 0..40 {
            let pred = arbitrary_goal(&mut rng, &cenv);
            let cached = cenv.resolve_with(&pred, &[], budget, &mut cache);
            let fresh = cenv.resolve_with(&pred, &[], budget, &mut ResolveCache::disabled());
            assert_eq!(
                format!("{cached:?}"),
                format!("{fresh:?}"),
                "cached and fresh resolution disagree on `{pred}`"
            );
        }
    }
}

#[test]
fn table_hit_never_costs_more_than_original_derivation() {
    let mut rng = Rng::new(0x0C0_57B0);
    let budget = ReduceBudget::default();
    for _ in 0..30 {
        let cenv = arbitrary_env(&mut rng);
        let mut cache = ResolveCache::new();
        for _ in 0..40 {
            let pred = arbitrary_goal(&mut rng, &cenv);
            if cenv.resolve_with(&pred, &[], budget, &mut cache).is_err() {
                assert_eq!(cache.cost_of(&pred), None, "failure was cached: `{pred}`");
                continue;
            }
            let cost = cache
                .cost_of(&pred)
                .unwrap_or_else(|| panic!("success not cached: `{pred}`"));
            assert!(cost >= 1, "recorded cost must cover the goal itself");
            // A hit is answered within a single step of budget — i.e.
            // never more than the original derivation consumed.
            let steps_before = cache.stats.steps;
            let tight = ReduceBudget {
                max_depth: budget.max_depth,
                max_steps: 1,
            };
            cenv.resolve_with(&pred, &[], tight, &mut cache)
                .unwrap_or_else(|e| panic!("table hit exceeded one step on `{pred}`: {e}"));
            let hit_steps = cache.stats.steps - steps_before;
            assert!(
                hit_steps as usize <= cost,
                "hit consumed {hit_steps} steps > original cost {cost} on `{pred}`"
            );
        }
    }
}

#[test]
fn outcomes_are_deterministic() {
    let mut rng = Rng::new(0xDE7E_C7AB);
    for _ in 0..40 {
        let mut bound = Vec::new();
        let src = format!("main = {};", arbitrary_expr(&mut rng, 4, &mut bound));
        let a = run_source(&src, &small_opts());
        let b = run_source(&src, &small_opts());
        assert_eq!(
            format!("{:?}", a.outcome),
            format!("{:?}", b.outcome),
            "nondeterministic outcome for\n{src}"
        );
    }
}
