//! End-to-end happy-path tests: source text in, rendered value out,
//! through lexing, parsing, class-env construction, elaboration,
//! dictionary conversion, and budgeted lazy evaluation.

use typeclasses::{check_source, run_source, Options, Outcome};

fn value(src: &str) -> String {
    let r = run_source(src, &Options::default());
    match r.outcome {
        Outcome::Value(v) => v,
        other => panic!(
            "expected a value, got {other:?}\n{}",
            r.check.render_diagnostics()
        ),
    }
}

#[test]
fn member_example_from_the_paper() {
    assert_eq!(value("main = member 3 (enumFromTo 1 5);"), "True");
    assert_eq!(value("main = member 9 (enumFromTo 1 5);"), "False");
}

#[test]
fn member_scheme_matches_the_paper() {
    let c = check_source("", &Options::default());
    assert!(c.ok(), "{}", c.render_diagnostics());
    assert_eq!(
        c.scheme("member").as_deref(),
        Some("Eq a => a -> List a -> Bool")
    );
    assert_eq!(
        c.scheme("map").as_deref(),
        Some("(a -> b) -> List a -> List b")
    );
}

#[test]
fn arithmetic_through_num_dictionary() {
    assert_eq!(
        value("main = sum (map (\\x -> mul x x) (enumFromTo 1 10));"),
        "385"
    );
}

#[test]
fn ord_methods_and_superclass() {
    assert_eq!(value("main = max2 3 9;"), "9");
    assert_eq!(value("main = min2 3 9;"), "3");
    // `f`'s body needs Eq, deduced from the Ord assumption through the
    // superclass slot of the dictionary.
    assert_eq!(
        value(
            "f :: Ord a => a -> a -> Bool;\n\
             f x y = and (lte x y) (eq x y);\n\
             main = f 2 2;"
        ),
        "True"
    );
}

#[test]
fn user_defined_class_and_instances() {
    assert_eq!(
        value(
            "class Size a where { size :: a -> Int; };\n\
             instance Size Bool where { size = \\b -> 1; };\n\
             instance Size a => Size (List a) where {\n\
               size = \\xs -> if null xs then 0\n\
                      else add (size (head xs)) (size (tail xs));\n\
             };\n\
             main = size (cons True (cons False nil));"
        ),
        "2"
    );
}

#[test]
fn laziness_is_observable() {
    assert_eq!(
        value("from n = cons n (from (add n 1));\nmain = take 4 (from 1);"),
        "[1, 2, 3, 4]"
    );
    // `head` must not force the diverging tail.
    assert_eq!(
        value("loop x = loop x;\nmain = head (cons 42 (loop 0));"),
        "42"
    );
}

#[test]
fn structural_equality_on_nested_lists() {
    assert_eq!(
        value(
            "main = eq (cons (cons 1 nil) nil)\n\
                       (cons (cons 1 nil) nil);"
        ),
        "True"
    );
}

#[test]
fn higher_order_prelude_functions() {
    assert_eq!(
        value(
            "main = foldr (\\x acc -> add x acc) 0\n\
                    (filter (\\x -> lt x 3) (enumFromTo 1 10));"
        ),
        "3"
    );
    assert_eq!(
        value("main = append (enumFromTo 1 2) (enumFromTo 3 4);"),
        "[1, 2, 3, 4]"
    );
}

#[test]
fn signatures_are_honored() {
    assert_eq!(
        value(
            "twice :: (a -> a) -> a -> a;\n\
             twice f x = f (f x);\n\
             main = twice (\\n -> mul n 3) 2;"
        ),
        "18"
    );
}
