//! Differential tests: the memo table and the dictionary-sharing pass
//! are *optimizations* — with them on or off, every program must
//! produce identical evaluation results, identical diagnostics, and
//! (for the lint-clean prelude and examples) identical lint findings.
//!
//! The memo table only caches successful, closed, pure derivations and
//! is only consulted when no assumption could possibly discharge the
//! goal, so cache-on resolution is bit-identical to fresh resolution;
//! the sharing pass only introduces let-bindings for expressions the
//! lazy evaluator would have computed anyway. These tests pin both
//! claims end to end.

use typeclasses::{check_source, lint_source, run_source, Options, PRELUDE};

/// The four on/off combinations of the two optimizations.
fn all_modes() -> [(&'static str, Options); 4] {
    let base = Options::default();
    let memo_only = Options {
        share_dictionaries: false,
        ..Options::default()
    };
    let share_only = Options {
        memoize_resolution: false,
        ..Options::default()
    };
    let off = Options::unoptimized();
    [
        ("memo+share", base),
        ("memo", memo_only),
        ("share", share_only),
        ("off", off),
    ]
}

/// Every checked-in example program, plus inline programs covering the
/// interesting corners: deep ground towers (memo hits), repeated
/// compound dictionaries (sharing hits), polymorphic contexts (memo
/// must stand aside), and erroneous programs (diagnostics must match).
fn programs() -> Vec<(String, String)> {
    let mut progs: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir("examples").expect("examples dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "mh") {
            let name = path.display().to_string();
            let src = std::fs::read_to_string(&path).expect("example source");
            progs.push((name, src));
        }
    }
    assert!(progs.len() >= 3, "expected the three example programs");
    progs.push(("prelude-only".into(), String::new()));
    for (name, src) in [
        (
            "deep-tower",
            "main = eq (cons (cons (cons 1 nil) nil) nil) nil;",
        ),
        (
            "repeated-dicts",
            "p xs = and (eq xs (cons 1 nil)) (eq xs nil);\n\
             main = and (p (cons 2 nil)) (eq (cons 3 nil) nil);",
        ),
        (
            "polymorphic-context",
            "same x y = eq x y;\nmain = same (cons 1 nil) (cons 1 nil);",
        ),
        (
            "superclass-projection",
            "small x y = if lt x y then x else y;\n\
             main = eq (small 3 4) 3;",
        ),
        ("no-instance-error", "main = eq (\\x -> x) (\\y -> y);"),
        ("unbound-error", "main = missingFunction 3;"),
        (
            "ambiguous-error",
            "amb = eq nil nil;\nmain = if amb then 1 else 2;",
        ),
    ] {
        progs.push((name.into(), src.into()));
    }
    progs
}

#[test]
fn evaluation_and_diagnostics_identical_across_modes() {
    for (name, src) in programs() {
        let (ref_name, ref_opts) = &all_modes()[0];
        let reference = run_source(&src, ref_opts);
        let ref_outcome = format!("{:?}", reference.outcome);
        let ref_diags = reference.check.render_diagnostics();
        for (mode, opts) in &all_modes()[1..] {
            let got = run_source(&src, opts);
            assert_eq!(
                format!("{:?}", got.outcome),
                ref_outcome,
                "{name}: outcome differs between {ref_name} and {mode}"
            );
            assert_eq!(
                got.check.render_diagnostics(),
                ref_diags,
                "{name}: diagnostics differ between {ref_name} and {mode}"
            );
        }
    }
}

#[test]
fn lint_findings_identical_on_lint_clean_programs() {
    // The prelude and examples are lint-clean by CI policy, and the
    // sharing pass must keep them that way in every mode. (Programs
    // with repeated dictionaries *should* differ on L0007 — sharing
    // exists to fix them — so finding-identity is asserted exactly on
    // the clean set, as shipped.)
    let mut sources = vec![("prelude".to_string(), String::new())];
    for (name, src) in programs() {
        if name.ends_with(".mh") {
            sources.push((name, src));
        }
    }
    for (name, src) in sources {
        let (_, ref_opts) = &all_modes()[0];
        let reference = lint_source(&src, ref_opts);
        let ref_diags = reference.render_diagnostics();
        assert!(
            !ref_diags.contains("L00"),
            "{name} is expected to be lint-clean: {ref_diags}"
        );
        for (mode, opts) in &all_modes()[1..] {
            let got = lint_source(&src, opts);
            assert_eq!(
                got.render_diagnostics(),
                ref_diags,
                "{name}: lint findings differ in mode {mode}"
            );
        }
    }
}

#[test]
fn compiled_core_evaluates_identically_even_when_shapes_differ() {
    // Sharing changes the core *shape* (adds `$sh` lets) but never the
    // value. Spot-check the actual pretty-core divergence is confined
    // to `$sh` bindings: stripping them should not be required for the
    // evaluation equality above, but the shapes must at least both be
    // placeholder-free.
    let src = "p = eq (cons 1 nil) (cons 2 nil);\n\
               q = and (eq (cons 1 nil) nil) p;\n\
               main = q;";
    for (mode, opts) in all_modes() {
        let c = check_source(src, &opts);
        assert!(c.ok(), "{mode}: {}", c.render_diagnostics());
        assert!(
            c.elab.core.verify_converted().is_empty(),
            "{mode}: placeholders left"
        );
    }
    // And the full prelude round-trips through every mode unchanged.
    assert!(!PRELUDE.is_empty());
}
