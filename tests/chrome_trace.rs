//! Integration tests for the Chrome trace-event export: document
//! validity against the in-tree RFC 8259 checker, the complete-event
//! shape Perfetto expects, and the time-nesting of per-goal resolution
//! spans inside the `elaborate` stage span.

use typeclasses::trace::json::{self, parse, Value};
use typeclasses::{check_source, run_source, Options, Outcome};

const MEMBER_MAIN: &str = "main = member 3 (enumFromTo 1 5);";

fn traced() -> Options {
    Options {
        trace_timing: true,
        trace_goal_spans: true,
        ..Options::default()
    }
}

/// Parse a trace document and return its `traceEvents` as
/// `(name, cat, ph, ts, dur)` tuples.
fn events(doc: &str) -> Vec<(String, String, String, f64, f64)> {
    let v = parse(doc).expect("trace must parse");
    let evs = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    evs.iter()
        .map(|e| {
            (
                e.get("name").and_then(Value::as_str).unwrap().to_string(),
                e.get("cat").and_then(Value::as_str).unwrap().to_string(),
                e.get("ph").and_then(Value::as_str).unwrap().to_string(),
                e.get("ts").and_then(Value::as_f64).unwrap(),
                e.get("dur").and_then(Value::as_f64).unwrap(),
            )
        })
        .collect()
}

#[test]
fn trace_is_checker_valid_with_tracing_on_and_off() {
    let on = run_source(MEMBER_MAIN, &traced());
    let doc = on.check.chrome_trace_json();
    json::check(&doc).expect("traced document");

    // With everything off the document is still valid — just empty.
    let off = run_source(MEMBER_MAIN, &Options::default());
    let empty = off.check.chrome_trace_json();
    json::check(&empty).expect("untraced document");
    assert!(events(&empty).is_empty());
    let v = parse(&empty).unwrap();
    assert_eq!(v.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
}

#[test]
fn one_complete_event_per_pipeline_stage() {
    let r = run_source(MEMBER_MAIN, &traced());
    assert!(matches!(r.outcome, Outcome::Value(_)));
    let evs = events(&r.check.chrome_trace_json());
    let stages: Vec<&str> = evs
        .iter()
        .filter(|(_, cat, _, _, _)| cat == "stage")
        .map(|(name, _, _, _, _)| name.as_str())
        .collect();
    assert_eq!(
        stages,
        [
            "lex",
            "parse",
            "class-env",
            "coherence",
            "elaborate",
            "share",
            "eval"
        ],
        "one X event per stage, in pipeline order"
    );
    assert!(
        evs.iter().all(|(_, _, ph, _, _)| ph == "X"),
        "every event is a complete event"
    );
}

#[test]
fn events_are_monotone_and_goals_nest_in_elaborate() {
    let r = run_source(MEMBER_MAIN, &traced());
    let evs = events(&r.check.chrome_trace_json());

    // Stage events are monotone and non-overlapping.
    let stages: Vec<_> = evs.iter().filter(|(_, c, _, _, _)| c == "stage").collect();
    for pair in stages.windows(2) {
        assert!(
            pair[1].3 + 0.01 >= pair[0].3 + pair[0].4,
            "{} (ts {}) starts before {} ends (ts {} + dur {})",
            pair[1].0,
            pair[1].3,
            pair[0].0,
            pair[0].3,
            pair[0].4
        );
    }

    // Every per-goal resolution span sits inside the elaborate stage
    // span (they share the telemetry epoch). The 0.01us slack absorbs
    // the 3-decimal microsecond rounding of the serializer.
    let elab = stages
        .iter()
        .find(|(n, _, _, _, _)| n == "elaborate")
        .expect("elaborate stage present");
    let (ets, edur) = (elab.3, elab.4);
    let goals: Vec<_> = evs
        .iter()
        .filter(|(_, c, _, _, _)| c == "resolve")
        .collect();
    assert!(!goals.is_empty(), "member resolves at least one goal");
    for (name, _, _, ts, dur) in &goals {
        assert!(
            *ts + 0.01 >= ets,
            "goal {name} (ts {ts}) starts before elaborate (ts {ets})"
        );
        assert!(
            ts + dur <= ets + edur + 0.01,
            "goal {name} (ts {ts} dur {dur}) outlives elaborate (ts {ets} dur {edur})"
        );
    }
    // And the goal spans themselves are monotone by start time.
    for pair in goals.windows(2) {
        assert!(pair[1].3 >= pair[0].3, "goal starts must be nondecreasing");
    }
}

#[test]
fn shipped_examples_export_valid_traces() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    for name in ["member.mh", "maxlist.mh", "sumsquares.mh"] {
        let src = std::fs::read_to_string(format!("{dir}/{name}"))
            .unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
        let c = check_source(&src, &traced());
        assert!(c.ok(), "{name}: {}", c.render_diagnostics());
        let doc = c.chrome_trace_json();
        json::check(&doc).unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));
        let evs = events(&doc);
        // check_source never runs eval, so six stage events (lex,
        // parse, class-env, coherence, elaborate, share) + goals.
        let stage_count = evs.iter().filter(|(_, c, _, _, _)| c == "stage").count();
        assert_eq!(stage_count, 6, "{name}");
        assert!(
            evs.iter().any(|(_, c, _, _, _)| c == "resolve"),
            "{name}: no per-goal spans"
        );
    }
}
