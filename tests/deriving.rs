//! Generative suite over the `data`/`deriving` scenario space.
//!
//! A seeded xorshift generator emits random data-declaration sets —
//! sums, products, recursive types, cross-type references — each with
//! `deriving (Eq, Ord)`. Two properties are pinned over that space:
//!
//! * **Laws**: every derived instance passes the tc-coherence class-law
//!   harness (`check_laws`) with `law-violation` promoted to deny, for
//!   200 seeds. Reflexivity/symmetry/transitivity of `eq` and
//!   totality/antisymmetry of `lte` are checked against enumerated
//!   constructor samples; a failure's diagnostic cites the sample.
//! * **Differential**: for each scenario, a handwritten twin program —
//!   instances spelled out by hand, structurally mirroring what
//!   `deriving` generates — must produce byte-identical evaluation
//!   results and identical dictionary-construction counts under all
//!   four memo/share optimization modes.
//!
//! Everything is deterministic: the only randomness is the xorshift
//! stream, seeded by the loop index.

use typeclasses::{check_source, coherence, run_source, LintLevel, Options, Outcome};

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*) — no clocks, no global state.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Spread the small loop-index seeds; keep the state nonzero.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Scenario generation.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum FieldTy {
    Int,
    Bool,
    /// A previously declared type (index into the scenario).
    Data(usize),
    /// The type being declared — a recursive field.
    SelfRec,
}

struct GenCon {
    name: String,
    fields: Vec<FieldTy>,
}

struct GenData {
    name: String,
    cons: Vec<GenCon>,
}

type Scenario = Vec<GenData>;

/// 1–3 data types, each 1–4 constructors of 0–2 fields. Constructor 0
/// of every type is non-recursive (fields draw from `Int`, `Bool`, and
/// earlier types only) so every type has a constructible base case and
/// the law harness always finds samples.
fn gen_scenario(seed: u64) -> Scenario {
    let mut rng = Rng::new(seed);
    let ntypes = 1 + rng.below(3);
    let mut scn: Scenario = Vec::new();
    for i in 0..ntypes {
        let ncons = 1 + rng.below(4);
        let mut cons = Vec::new();
        for j in 0..ncons {
            let nfields = rng.below(3);
            let mut fields = Vec::new();
            for _ in 0..nfields {
                let mut choices = vec![FieldTy::Int, FieldTy::Bool];
                if i > 0 {
                    choices.push(FieldTy::Data(rng.below(i)));
                }
                if j > 0 {
                    choices.push(FieldTy::SelfRec);
                }
                fields.push(choices[rng.below(choices.len())]);
            }
            cons.push(GenCon {
                name: format!("K{i}{}", (b'A' + j as u8) as char),
                fields,
            });
        }
        scn.push(GenData {
            name: format!("D{i}"),
            cons,
        });
    }
    scn
}

fn field_text(scn: &Scenario, owner: usize, f: FieldTy) -> String {
    match f {
        FieldTy::Int => "Int".into(),
        FieldTy::Bool => "Bool".into(),
        FieldTy::Data(k) => scn[k].name.clone(),
        FieldTy::SelfRec => scn[owner].name.clone(),
    }
}

/// The `data` declarations, with or without the deriving clause.
fn render_datas(scn: &Scenario, derive: bool) -> String {
    let mut out = String::new();
    for (i, d) in scn.iter().enumerate() {
        let cons = d
            .cons
            .iter()
            .map(|c| {
                let mut t = c.name.clone();
                for &f in &c.fields {
                    t.push(' ');
                    t.push_str(&field_text(scn, i, f));
                }
                t
            })
            .collect::<Vec<_>>()
            .join(" | ");
        out.push_str(&format!("data {} = {cons}", d.name));
        if derive {
            out.push_str(" deriving (Eq, Ord)");
        }
        out.push_str(";\n");
    }
    out
}

// ---------------------------------------------------------------------
// Handwritten twin instances, structurally mirroring tc-syntax's
// derive pass (same case nesting, same field-comparison chains) so
// dictionary-construction counts line up exactly.
// ---------------------------------------------------------------------

fn pat(name: &str, prefix: &str, n: usize) -> String {
    let mut p = name.to_string();
    for k in 0..n {
        p.push_str(&format!(" {prefix}{k}"));
    }
    p
}

fn pat_wild(name: &str, n: usize) -> String {
    let mut p = name.to_string();
    for _ in 0..n {
        p.push_str(" _");
    }
    p
}

/// `if eq f0 g0 then (...) else False`, last field bare.
fn eq_chain(n: usize) -> String {
    if n == 0 {
        return "True".into();
    }
    let mut acc = format!("eq f{0} g{0}", n - 1);
    for i in (0..n - 1).rev() {
        acc = format!("if eq f{i} g{i} then ({acc}) else False");
    }
    acc
}

/// `if lt f g then True else (if eq f g then (...) else False)`, last
/// field decided by `lte` (non-strict) or `lt` (strict).
fn ord_chain(n: usize, strict: bool) -> String {
    if n == 0 {
        return if strict { "False" } else { "True" }.into();
    }
    let m = if strict { "lt" } else { "lte" };
    let mut acc = format!("{m} f{0} g{0}", n - 1);
    for k in (0..n - 1).rev() {
        acc = format!("if lt f{k} g{k} then True else (if eq f{k} g{k} then ({acc}) else False)");
    }
    acc
}

fn hw_eq_instance(d: &GenData) -> String {
    let outer = d
        .cons
        .iter()
        .map(|c| {
            let n = c.fields.len();
            let inner = d
                .cons
                .iter()
                .map(|c2| {
                    if c2.name == c.name {
                        format!("{} -> {}", pat(&c2.name, "g", n), eq_chain(n))
                    } else {
                        format!("{} -> False", pat_wild(&c2.name, c2.fields.len()))
                    }
                })
                .collect::<Vec<_>>()
                .join("; ");
            format!("{} -> case r of {{ {inner} }}", pat(&c.name, "f", n))
        })
        .collect::<Vec<_>>()
        .join("; ");
    format!(
        "instance Eq {} where {{\n  eq = \\l -> \\r -> case l of {{ {outer} }};\n  \
         neq = \\l -> \\r -> if eq l r then False else True\n}};\n",
        d.name
    )
}

fn hw_ord_instance(d: &GenData) -> String {
    let method = |strict: bool| -> String {
        d.cons
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let n = c.fields.len();
                let inner = d
                    .cons
                    .iter()
                    .enumerate()
                    .map(|(j, c2)| {
                        if j == i {
                            format!("{} -> {}", pat(&c2.name, "g", n), ord_chain(n, strict))
                        } else if i < j {
                            format!("{} -> True", pat_wild(&c2.name, c2.fields.len()))
                        } else {
                            format!("{} -> False", pat_wild(&c2.name, c2.fields.len()))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                format!("{} -> case r of {{ {inner} }}", pat(&c.name, "f", n))
            })
            .collect::<Vec<_>>()
            .join("; ")
    };
    format!(
        "instance Ord {} where {{\n  lte = \\l -> \\r -> case l of {{ {} }};\n  \
         lt = \\l -> \\r -> case l of {{ {} }}\n}};\n",
        d.name,
        method(false),
        method(true)
    )
}

fn render_handwritten(scn: &Scenario) -> String {
    let mut out = render_datas(scn, false);
    for d in scn {
        out.push_str(&hw_eq_instance(d));
        out.push_str(&hw_ord_instance(d));
    }
    out
}

// ---------------------------------------------------------------------
// Sample values and a comparison-battery `main`.
// ---------------------------------------------------------------------

/// Up to three ground values of type `scn[i]`, in constructor (tag)
/// order, mirroring the law harness's depth-bounded enumeration.
fn value_samples(scn: &Scenario, i: usize, depth: usize) -> Vec<String> {
    if depth > 2 {
        return Vec::new();
    }
    let mut out: Vec<String> = Vec::new();
    for c in &scn[i].cons {
        if out.len() >= 3 {
            break;
        }
        if c.fields.is_empty() {
            out.push(c.name.clone());
            continue;
        }
        let per_field: Vec<Vec<String>> = c
            .fields
            .iter()
            .map(|&f| match f {
                FieldTy::Int => vec!["0".into(), "1".into(), "2".into()],
                FieldTy::Bool => vec!["True".into(), "False".into()],
                FieldTy::Data(k) => value_samples(scn, k, depth + 1),
                FieldTy::SelfRec => value_samples(scn, i, depth + 1),
            })
            .collect();
        if per_field.iter().any(Vec::is_empty) {
            continue;
        }
        for k in 0..2usize {
            if out.len() >= 3 {
                break;
            }
            let mut t = c.name.clone();
            for fs in &per_field {
                t.push(' ');
                t.push_str(fs.get(k).unwrap_or(&fs[0]));
            }
            let t = format!("({t})");
            if k == 1 && out.last() == Some(&t) {
                break;
            }
            out.push(t);
        }
    }
    out
}

/// `main` builds a list of every `eq`/`neq`/`lte`/`lt` comparison over
/// sample pairs of every generated type — a single value whose rendered
/// form pins all comparison bits at once.
fn render_main(scn: &Scenario) -> String {
    let mut terms = Vec::new();
    for i in 0..scn.len() {
        let ss = value_samples(scn, i, 0);
        assert!(!ss.is_empty(), "type {} has no samples", scn[i].name);
        let a = &ss[0];
        let b = ss.last().expect("nonempty");
        for m in ["eq", "neq", "lte", "lt"] {
            terms.push(format!("{m} {a} {b}"));
            terms.push(format!("{m} {b} {a}"));
        }
    }
    let list = terms
        .iter()
        .rev()
        .fold("nil".to_string(), |acc, t| format!("cons ({t}) ({acc})"));
    format!("main = {list};\n")
}

// ---------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------

fn law_deny_options() -> Options {
    Options {
        check_laws: true,
        coherence_levels: coherence::CoherenceConfig::default()
            .with(coherence::Rule::LawViolation, LintLevel::Deny),
        ..Options::default()
    }
}

fn all_modes() -> [(&'static str, Options); 4] {
    [
        ("memo+share", Options::default()),
        (
            "memo",
            Options {
                share_dictionaries: false,
                ..Options::default()
            },
        ),
        (
            "share",
            Options {
                memoize_resolution: false,
                ..Options::default()
            },
        ),
        ("off", Options::unoptimized()),
    ]
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[test]
fn generator_covers_the_scenario_space() {
    // The stream must actually exercise the interesting corners; a
    // generator that degenerates (all-nullary, never recursive) would
    // silently weaken every property below.
    let (mut recursive, mut cross_ref, mut multi_type, mut two_field, mut nullary_only) =
        (false, false, false, false, false);
    for seed in 0..200u64 {
        let scn = gen_scenario(seed);
        if scn.len() > 1 {
            multi_type = true;
        }
        if scn
            .iter()
            .all(|d| d.cons.iter().all(|c| c.fields.is_empty()))
        {
            nullary_only = true;
        }
        for d in &scn {
            for c in &d.cons {
                if c.fields.len() == 2 {
                    two_field = true;
                }
                if c.fields.contains(&FieldTy::SelfRec) {
                    recursive = true;
                }
                if c.fields.iter().any(|f| matches!(f, FieldTy::Data(_))) {
                    cross_ref = true;
                }
            }
        }
    }
    assert!(
        recursive && cross_ref && multi_type && two_field && nullary_only,
        "degenerate generator: recursive={recursive} cross_ref={cross_ref} \
         multi_type={multi_type} two_field={two_field} nullary_only={nullary_only}"
    );
}

#[test]
fn derived_instances_pass_laws_under_deny_for_200_seeds() {
    let opts = law_deny_options();
    for seed in 0..200u64 {
        let src = render_datas(&gen_scenario(seed), true);
        let c = check_source(&src, &opts);
        assert!(
            c.ok(),
            "seed {seed}: derived instances violate class laws\n{src}\n{}",
            c.render_diagnostics()
        );
    }
}

#[test]
fn law_failures_cite_the_violating_constructor_sample() {
    // Negative control: a deliberately broken handwritten Eq on a
    // generated type must be caught, and the diagnostic must name the
    // constructor sample that witnessed the violation.
    let scn = gen_scenario(0);
    let first_con = scn[0].cons[0].name.clone();
    let src = format!(
        "{}instance Eq {} where {{\n  eq = \\l -> \\r -> False;\n  \
         neq = \\l -> \\r -> True\n}};\n",
        render_datas(&scn, false),
        scn[0].name
    );
    let c = check_source(&src, &law_deny_options());
    assert!(!c.ok(), "constant-False eq passed the law harness");
    let rendered = c.render_diagnostics();
    assert!(rendered.contains("L0011"), "{rendered}");
    assert!(
        rendered.contains(&first_con),
        "diagnostic does not cite the sample `{first_con}`:\n{rendered}"
    );
}

#[test]
fn derived_and_handwritten_twins_agree_across_all_modes() {
    for seed in 0..40u64 {
        let scn = gen_scenario(seed);
        let main = render_main(&scn);
        let derived = format!("{}{main}", render_datas(&scn, true));
        let handwritten = format!("{}{main}", render_handwritten(&scn));

        let mut reference: Option<String> = None;
        for (mode, opts) in all_modes() {
            let dr = run_source(&derived, &opts);
            let hr = run_source(&handwritten, &opts);
            let d_out = format!("{:?}", dr.outcome);
            let h_out = format!("{:?}", hr.outcome);
            assert!(
                matches!(dr.outcome, Outcome::Value(_)),
                "seed {seed} [{mode}]: derived program failed: {d_out}\n{derived}\n{}",
                dr.check.render_diagnostics()
            );
            assert_eq!(
                d_out, h_out,
                "seed {seed} [{mode}]: derived vs handwritten results differ\n\
                 derived:\n{derived}\nhandwritten:\n{handwritten}"
            );
            assert_eq!(
                dr.check.stats.resolve.dicts_constructed, hr.check.stats.resolve.dicts_constructed,
                "seed {seed} [{mode}]: dictionary-construction counts differ"
            );
            assert_eq!(
                dr.check.stats.share.constructions_before,
                hr.check.stats.share.constructions_before,
                "seed {seed} [{mode}]: pre-sharing dictionary sites differ"
            );
            assert_eq!(
                dr.check.stats.share.constructions_after, hr.check.stats.share.constructions_after,
                "seed {seed} [{mode}]: post-sharing dictionary sites differ"
            );
            // Byte-identity across modes, not just within one.
            match &reference {
                None => reference = Some(d_out),
                Some(r) => assert_eq!(
                    &d_out, r,
                    "seed {seed} [{mode}]: result differs from the memo+share reference"
                ),
            }
        }
    }
}

#[test]
fn generated_scenarios_run_clean_under_law_checked_evaluation() {
    // End-to-end: deriving + law harness + evaluation in one pass, the
    // configuration the CI deriving-gate runs.
    let opts = Options {
        check_laws: true,
        coherence_levels: coherence::CoherenceConfig::default()
            .with(coherence::Rule::LawViolation, LintLevel::Deny),
        ..Options::default()
    };
    for seed in [0u64, 7, 13, 29, 41] {
        let scn = gen_scenario(seed);
        let src = format!("{}{}", render_datas(&scn, true), render_main(&scn));
        let r = run_source(&src, &opts);
        assert!(
            matches!(r.outcome, Outcome::Value(_)),
            "seed {seed}: {:?}\n{src}\n{}",
            r.outcome,
            r.check.render_diagnostics()
        );
    }
}
