//! End-to-end tests for the `tc-lint` static-analysis pass through the
//! driver: every rule fires on a minimal program, the prelude and the
//! shipped examples are lint-clean, levels re-map severities, and lint
//! findings compose with ordinary pipeline diagnostics.

use typeclasses::syntax::Severity;
use typeclasses::{lint_source, run_checked, LintConfig, LintLevel, Options, Outcome, Rule};

fn lint_codes(src: &str) -> Vec<&'static str> {
    let check = lint_source(src, &Options::default());
    check.diags.iter().map(|d| d.code).collect()
}

#[test]
fn prelude_is_lint_clean() {
    // Lint the prelude *as* the user program (findings inside a
    // spliced prelude are suppressed, so `--no-prelude` is the honest
    // check) and deny every rule: any finding at all fails here.
    let opts = Options {
        lint_levels: LintConfig::all(LintLevel::Deny),
        use_prelude: false,
        ..Options::default()
    };
    let check = lint_source(typeclasses::PRELUDE, &opts);
    assert!(check.ok(), "{}", check.render_diagnostics());
    assert!(
        check.diags.is_empty(),
        "prelude must produce zero lint findings:\n{}",
        check.render_diagnostics()
    );
}

#[test]
fn prelude_findings_caused_by_user_code_are_suppressed() {
    // A user top-level `f` makes the prelude's `map f xs` parameter a
    // shadow of it — but that blames code the user cannot edit, so no
    // finding may point into the prelude.
    let check = lint_source(
        "f :: Int -> Int;\nf x = x;\nmain = f 1;",
        &Options::default(),
    );
    assert!(check.diags.is_empty(), "{}", check.render_diagnostics());
}

#[test]
fn shipped_examples_are_lint_clean_and_run() {
    let opts = Options {
        lint_levels: LintConfig::all(LintLevel::Deny),
        ..Options::default()
    };
    for (name, src, expect) in [
        ("member", include_str!("../examples/member.mh"), "True"),
        (
            "sumsquares",
            include_str!("../examples/sumsquares.mh"),
            "385",
        ),
        ("maxlist", include_str!("../examples/maxlist.mh"), "7"),
        ("deriving", include_str!("../examples/deriving.mh"), "True"),
    ] {
        let r = run_checked(lint_source(src, &opts), &opts);
        match r.outcome {
            Outcome::Value(v) => assert_eq!(v, expect, "example `{name}`"),
            other => panic!(
                "example `{name}` failed: {other:?}\n{}",
                r.check.render_diagnostics()
            ),
        }
    }
}

#[test]
fn instance_termination_fires_end_to_end() {
    let src = "class C a where { m :: a -> a; };\n\
               instance C (List (List a)) => C (List a) where { m = \\x -> x; };";
    assert!(lint_codes(src).contains(&"L0001"), "{:?}", lint_codes(src));
}

#[test]
fn redundant_constraint_fires_end_to_end() {
    // `Ord a` implies `Eq a` in the prelude's hierarchy.
    let src = "f :: (Eq a, Ord a) => a -> a;\nf x = x;\nmain = f 1;";
    assert!(lint_codes(src).contains(&"L0002"), "{:?}", lint_codes(src));
}

#[test]
fn ambiguous_type_variable_fires_end_to_end() {
    // `a` appears in the context only; note `g` is never *used* — the
    // lint reports the declaration, before any ambiguous use exists.
    let src = "g :: Eq a => Int -> Int;\ng x = x;";
    assert!(lint_codes(src).contains(&"L0003"), "{:?}", lint_codes(src));
}

#[test]
fn unused_and_shadowed_bindings_fire_end_to_end() {
    let codes = lint_codes("f = \\x -> 1;\ng y = \\y -> y;");
    assert!(codes.contains(&"L0004"), "{codes:?}");
    assert!(codes.contains(&"L0005"), "{codes:?}");
}

#[test]
fn unreachable_arm_fires_end_to_end() {
    let codes = lint_codes("main = if True then 1 else 2;");
    assert!(codes.contains(&"L0006"), "{codes:?}");
}

#[test]
fn unreachable_case_arm_fires_end_to_end() {
    // L0006 generalizes to `case`: an arm after a wildcard can never
    // be selected.
    let src = "data T = A | B;\nf x = case x of { _ -> 0; A -> 1 };\nmain = f A;";
    assert!(lint_codes(src).contains(&"L0006"), "{:?}", lint_codes(src));
}

#[test]
fn non_exhaustive_match_fires_end_to_end() {
    let src = "data T = A | B | C;\nf x = case x of { A -> 1 };\nmain = f A;";
    let check = lint_source(src, &Options::default());
    let d = check
        .diags
        .iter()
        .find(|d| d.code == "L0012")
        .unwrap_or_else(|| panic!("expected L0012:\n{}", check.render_diagnostics()));
    assert_eq!(d.severity, Severity::Warning, "warn by default");
    assert!(
        d.message.contains("`B`") && d.message.contains("`C`"),
        "missing constructors named: {}",
        d.message
    );
    // Deny-level escalation blocks evaluation like any other lint.
    let mut opts = Options::default();
    opts.lint_levels
        .set(Rule::NonExhaustiveMatch, LintLevel::Deny);
    let denied = lint_source(src, &opts);
    assert!(!denied.ok());
    let r = run_checked(denied, &opts);
    assert!(matches!(r.outcome, Outcome::CompileErrors));
}

#[test]
fn match_lint_codes_have_explain_entries() {
    // `--explain L0012` (and every other lint code) resolves through
    // `Rule::ALL`; pin the new rule's code, name, and description so
    // the CLI entry stays stable.
    let rule = Rule::ALL
        .iter()
        .find(|r| r.code() == "L0012")
        .expect("L0012 registered in Rule::ALL");
    assert_eq!(rule.name(), "non-exhaustive-match");
    assert!(
        rule.description().contains("match-failure"),
        "{}",
        rule.description()
    );
    let unreachable = Rule::ALL
        .iter()
        .find(|r| r.code() == "L0006")
        .expect("L0006 registered");
    assert!(
        unreachable.description().contains("case"),
        "L0006 description covers case arms: {}",
        unreachable.description()
    );
}

#[test]
fn repeated_dictionary_fires_only_without_the_sharing_pass() {
    // Two list-equality uses at the same element type construct the
    // same `$dict…$Eq$List $dict…$Eq$Int` dictionary twice in `main`.
    // The dictionary-sharing pass hoists that into one `$sh` binding
    // *before* lint runs, so under default options L0007 stays silent —
    // the pass is precisely the fix the lint used to suggest. With the
    // pass disabled the duplicate construction is back in the program
    // lint sees, and L0007 must fire. This pins the pipeline ordering:
    // convert → share → lint.
    let src = "main = and (eq (cons 1 nil) (cons 1 nil)) (eq (cons 2 nil) (cons 2 nil));";
    let codes = lint_codes(src);
    assert!(
        !codes.contains(&"L0007"),
        "sharing must pre-empt L0007: {codes:?}"
    );

    let opts = Options {
        share_dictionaries: false,
        ..Options::default()
    };
    let unshared = lint_source(src, &opts);
    let codes: Vec<_> = unshared.diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"L0007"), "{codes:?}");
}

#[test]
fn warnings_do_not_fail_compilation() {
    let check = lint_source("f = \\x -> 1;", &Options::default());
    assert!(check.ok(), "{}", check.render_diagnostics());
    assert!(check.diags.warning_count() >= 1);
    assert!(check.diags.iter().all(|d| d.severity == Severity::Warning));
    // And the program still runs.
    let opts = Options::default();
    let r = run_checked(lint_source("f = \\x -> 1;\nmain = 42;", &opts), &opts);
    assert!(
        matches!(r.outcome, Outcome::Value(v) if v == "42"),
        "runs despite warnings"
    );
}

#[test]
fn deny_escalates_to_error_and_blocks_evaluation() {
    let mut opts = Options::default();
    opts.lint_levels.set(Rule::UnusedBinding, LintLevel::Deny);
    let check = lint_source("f = \\x -> 1;\nmain = 42;", &opts);
    assert!(!check.ok());
    assert!(check
        .diags
        .iter()
        .any(|d| d.code == "L0004" && d.severity == Severity::Error));
    let r = run_checked(check, &opts);
    assert!(matches!(r.outcome, Outcome::CompileErrors));
}

#[test]
fn allow_silences_a_rule() {
    let mut opts = Options::default();
    opts.lint_levels.set(Rule::UnusedBinding, LintLevel::Allow);
    let check = lint_source("f = \\x -> 1;", &opts);
    assert!(
        check.diags.iter().all(|d| d.code != "L0004"),
        "{}",
        check.render_diagnostics()
    );
}

#[test]
fn check_source_does_not_lint() {
    let check = typeclasses::check_source("f = \\x -> 1;", &Options::default());
    assert!(check.diags.is_empty(), "{}", check.render_diagnostics());
}

#[test]
fn lints_and_pipeline_errors_render_sorted_with_summary() {
    // An unused-parameter warning on line 1 of the user program and an
    // unbound-variable error on line 2: the rendering must order them
    // by source position and append a severity summary.
    let check = lint_source("f = \\x -> 1;\nmain = undefinedName;", &Options::default());
    assert!(!check.ok());
    let rendered = check.render_diagnostics();
    let lint_pos = rendered.find("L0004").expect("lint rendered");
    let err_pos = rendered.find("E0405").expect("type error rendered");
    assert!(lint_pos < err_pos, "sorted by span:\n{rendered}");
    assert!(rendered.contains("warning(s) emitted"), "{rendered}");
}

#[test]
fn resolver_error_codes_are_distinct_end_to_end() {
    // A self-referential instance makes resolution cycle: context
    // reduction reports budget exhaustion (E0421) and dictionary
    // conversion reports the cycle (E0420) — distinct from the plain
    // no-instance code E0410.
    let src = "class C a where { m :: a -> a; };\n\
               instance C (List a) => C (List a) where { m = \\x -> x; };\n\
               main = m (cons 1 nil);";
    let check = typeclasses::check_source(src, &Options::default());
    assert!(!check.ok());
    let codes: Vec<&str> = check.diags.iter().map(|d| d.code).collect();
    assert!(
        codes.iter().any(|c| *c == "E0420" || *c == "E0421"),
        "cycle/budget code expected, got {codes:?}"
    );
    assert!(
        !codes.contains(&"E0410"),
        "not a no-instance failure: {codes:?}"
    );
}

#[test]
fn overlap_error_code_is_stable_end_to_end() {
    // Redefining a prelude instance is an orphan-style duplicate: the
    // coherence pass reports L0009 (deny by default) pointing at the
    // user declaration, with a note naming the prelude original.
    let src = "instance Eq Int where { eq = primEqInt; neq = \\x y -> False; };";
    let check = typeclasses::check_source(src, &Options::default());
    assert!(
        check.diags.iter().any(|d| d.code == "L0009"),
        "expected L0009, got {:?}",
        check.diags.iter().map(|d| &d.code).collect::<Vec<_>>()
    );
    assert!(!check.ok(), "prelude duplicates are deny by default");
}
