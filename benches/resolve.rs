//! Benchmark for tabled instance resolution and dictionary sharing.
//!
//! This is a plain `fn main` harness (`harness = false`): the build
//! environment is offline, so criterion is unavailable. It mirrors the
//! criterion CLI just enough for CI:
//!
//! ```sh
//! cargo bench --bench resolve            # full run
//! cargo bench --bench resolve -- --test  # smoke mode (small iteration counts)
//! ```
//!
//! Either way it writes `BENCH_resolve.json` to the current directory
//! (the workspace root under cargo) with per-workload counters from
//! [`tc_classes::ResolveStats`], wall-clock times, and per-stage
//! pipeline timings harvested from [`typeclasses::Telemetry`], and it
//! *asserts* the headline acceptance numbers: on the deep instance
//! tower the memo table must reach a >=90% hit rate and cut dictionary
//! constructions by >=2x versus cache-off.
//!
//! The output is produced by [`typeclasses::JsonWriter`] and checked
//! with `tc_trace::json::check` before it is written, so the bench
//! artifact can never be malformed JSON.
//!
//! Unknown flags are ignored: cargo itself passes `--bench` to
//! harness-less bench binaries.

use std::fmt::Write as _;
use std::time::Instant;
use typeclasses::classes::{build_class_env, ClassEnv, ReduceBudget, ResolveCache};
use typeclasses::serve::{serve_lines, ServeConfig};
use typeclasses::syntax::Span;
use typeclasses::types::{Pred, Type, VarGen};
use typeclasses::{JsonWriter, Options};

/// Build a [`ClassEnv`] from Mini-Haskell class/instance declarations.
fn env_from_source(src: &str) -> ClassEnv {
    let (toks, diags) = typeclasses::syntax::lex(src);
    assert!(!diags.has_errors(), "{}", diags.render_all(src));
    let (prog, pd) = typeclasses::syntax::parse_program(&toks, Default::default());
    assert!(!pd.has_errors(), "{}", pd.render_all(src));
    let mut gen = VarGen::new();
    let (cenv, cd) = build_class_env(&prog, &mut gen);
    assert!(!cd.has_errors(), "{}", cd.render_all(src));
    cenv
}

/// `List (List (... Int))`, `depth` lists deep.
fn tower_type(depth: usize) -> Type {
    let mut t = Type::int();
    for _ in 0..depth {
        t = Type::list(t);
    }
    t
}

#[derive(Default)]
struct Row {
    name: &'static str,
    goals: u64,
    table_hits: u64,
    table_misses: u64,
    dicts_constructed: u64,
    dicts_constructed_off: u64,
    hit_rate: f64,
    construction_ratio: f64,
    nanos_on: u128,
    nanos_off: u128,
    /// Per-stage pipeline timings `(stage name, duration in ns)`.
    /// Example workloads harvest them from telemetry; raw-resolution
    /// workloads never run the front end, so they carry a single
    /// synthetic `resolve` stage covering the cache-on loop.
    stages: Vec<(String, u64)>,
    /// Deterministic metric counters `(name, value)` from the
    /// metrics registry — no wall-clock readings, so the baseline
    /// comparator can hold them to exact equality.
    metrics: Vec<(&'static str, u64)>,
}

impl Row {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", self.name);
        w.field_u64("goals", self.goals);
        w.field_u64("table_hits", self.table_hits);
        w.field_u64("table_misses", self.table_misses);
        w.field_f64("hit_rate", self.hit_rate, 4);
        w.field_u64("dicts_constructed", self.dicts_constructed);
        w.field_u64("dicts_constructed_cache_off", self.dicts_constructed_off);
        w.field_f64("construction_ratio", self.construction_ratio, 2);
        w.field_u64("nanos_cache_on", saturate(self.nanos_on));
        w.field_u64("nanos_cache_off", saturate(self.nanos_off));
        w.begin_object_field("stage_nanos");
        for (stage, ns) in &self.stages {
            w.field_u64(stage, *ns);
        }
        w.end_object();
        w.begin_object_field("metrics");
        for (name, value) in &self.metrics {
            w.field_u64(name, *value);
        }
        w.end_object();
        w.end_object();
    }
}

fn saturate(n: u128) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Resolve `pred` `iters` times against `cenv`, once with a shared memo
/// table and once with the table disabled.
fn bench_resolution(name: &'static str, cenv: &ClassEnv, pred: &Pred, iters: usize) -> Row {
    let budget = ReduceBudget::default();

    let mut cache = ResolveCache::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        cenv.resolve_with(pred, &[], budget, &mut cache)
            .unwrap_or_else(|e| panic!("{name}: resolution failed: {e}"));
    }
    let nanos_on = t0.elapsed().as_nanos();
    let on = cache.stats;

    let mut off_cache = ResolveCache::disabled();
    let t1 = Instant::now();
    for _ in 0..iters {
        cenv.resolve_with(pred, &[], budget, &mut off_cache)
            .unwrap_or_else(|e| panic!("{name}: resolution failed: {e}"));
    }
    let nanos_off = t1.elapsed().as_nanos();
    let off = off_cache.stats;

    // Counters are folded after the timed loops, so enabling metrics
    // here costs the measurement nothing.
    cache.enable_metrics();
    cache.flush_metrics();

    Row {
        name,
        goals: on.goals,
        table_hits: on.table_hits,
        table_misses: on.table_misses,
        dicts_constructed: on.dicts_constructed,
        dicts_constructed_off: off.dicts_constructed,
        hit_rate: on.hit_rate(),
        construction_ratio: off.dicts_constructed as f64 / on.dicts_constructed.max(1) as f64,
        nanos_on,
        nanos_off,
        // Raw resolution has exactly one "stage": the cache-on loop.
        stages: vec![("resolve".to_string(), saturate(nanos_on))],
        metrics: cache.metrics.counters_snapshot(),
    }
}

/// Compile one example program with the optimizations on vs off.
///
/// The optimized run compiles with `trace_timing` enabled so the row
/// carries per-stage timings from the pipeline's telemetry spans.
fn bench_example(name: &'static str, src: &str) -> Row {
    let on_opts = Options {
        trace_timing: true,
        collect_metrics: true,
        ..Options::default()
    };
    let t0 = Instant::now();
    let on = typeclasses::check_source(src, &on_opts);
    let nanos_on = t0.elapsed().as_nanos();
    assert!(on.ok(), "{name}: {}", on.render_diagnostics());

    let off_opts = Options::unoptimized();
    let t1 = Instant::now();
    let off = typeclasses::check_source(src, &off_opts);
    let nanos_off = t1.elapsed().as_nanos();
    assert!(off.ok(), "{name}: {}", off.render_diagnostics());

    Row {
        name,
        goals: on.stats.resolve.goals,
        table_hits: on.stats.resolve.table_hits,
        table_misses: on.stats.resolve.table_misses,
        dicts_constructed: on.stats.resolve.dicts_constructed,
        dicts_constructed_off: off.stats.resolve.dicts_constructed,
        hit_rate: on.stats.resolve.hit_rate(),
        construction_ratio: off.stats.resolve.dicts_constructed as f64
            / on.stats.resolve.dicts_constructed.max(1) as f64,
        nanos_on,
        nanos_off,
        stages: on
            .telemetry
            .spans()
            .iter()
            .map(|s| (s.stage.name().to_string(), s.duration_ns))
            .collect(),
        metrics: on.stats.metrics.counters_snapshot(),
    }
}

/// End-to-end server throughput: the three example programs repeated
/// `reps` times, pushed through the serve worker pool as one JSONL
/// batch.
///
/// The counters (`programs`, `responses_ok`) are deterministic and
/// held to exact equality by the baseline gate; `nanos_batch` gets
/// timing tolerance and `programs_per_sec` gets the one-sided
/// throughput tolerance (a collapse gates, a speedup never does).
struct ServeRow {
    programs: u64,
    responses_ok: u64,
    nanos_batch: u128,
    programs_per_sec: f64,
}

impl ServeRow {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", "serve_batch_throughput");
        w.field_u64("programs", self.programs);
        w.field_u64("responses_ok", self.responses_ok);
        w.field_u64("nanos_batch", saturate(self.nanos_batch));
        w.field_f64("programs_per_sec", self.programs_per_sec, 1);
        w.end_object();
    }
}

/// The three example programs repeated `reps` times as one JSONL batch.
fn example_batch_lines(reps: usize) -> Vec<String> {
    let sources: Vec<String> = [
        "examples/member.mh",
        "examples/maxlist.mh",
        "examples/sumsquares.mh",
    ]
    .iter()
    .map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run from the workspace root)"))
    })
    .collect();
    let mut lines = Vec::new();
    for i in 0..reps {
        for (j, src) in sources.iter().enumerate() {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_u64("id", (i * sources.len() + j) as u64 + 1);
            w.field_str("program", src);
            w.end_object();
            lines.push(w.finish());
        }
    }
    lines
}

fn bench_serve_batch(reps: usize) -> ServeRow {
    let lines = example_batch_lines(reps);
    // The queue holds the whole batch so admission never sheds and the
    // measurement is pure pipeline + pool overhead.
    let cfg = ServeConfig {
        queue_capacity: lines.len().max(64),
        ..ServeConfig::default()
    };

    // Best of three batches: the pool's thread spawn/join cost is part
    // of what we measure, but a single cold run is too noisy to gate on.
    let mut best_nanos = u128::MAX;
    let mut responses_ok = 0;
    for _ in 0..3 {
        let t0 = Instant::now();
        let (out, summary) = serve_lines(&lines, &cfg);
        let nanos = t0.elapsed().as_nanos();
        assert_eq!(out.len(), lines.len(), "every request must be answered");
        assert_eq!(
            summary.ok(),
            lines.len() as u64,
            "examples must all succeed through serve"
        );
        responses_ok = summary.ok();
        best_nanos = best_nanos.min(nanos);
    }

    let programs = lines.len() as u64;
    ServeRow {
        programs,
        responses_ok,
        nanos_batch: best_nanos,
        programs_per_sec: programs as f64 * 1e9 / best_nanos.max(1) as f64,
    }
}

/// Flight-recorder overhead: the same serve batch with the recorder
/// off vs on. The recorder-on run head-samples *every* request
/// (`sample_every = 1`) so the tail sampler does maximal work —
/// record, extract, and retain a trace per request. Counters are
/// deterministic and gate exactly; both timings are `nanos_*` fields,
/// so the comparator holds the recorder-on cost to the same ratio
/// tolerance as every other timing, bounding recorder overhead.
struct ObsRow {
    programs: u64,
    traces_retained: u64,
    nanos_recorder_off: u128,
    nanos_recorder_on: u128,
}

impl ObsRow {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", "obs_overhead");
        w.field_u64("programs", self.programs);
        w.field_u64("traces_retained", self.traces_retained);
        w.field_u64("nanos_recorder_off", saturate(self.nanos_recorder_off));
        w.field_u64("nanos_recorder_on", saturate(self.nanos_recorder_on));
        w.end_object();
    }
}

fn bench_obs_overhead(reps: usize) -> ObsRow {
    use typeclasses::RecorderConfig;
    let lines = example_batch_lines(reps);
    let base = ServeConfig {
        queue_capacity: lines.len().max(64),
        ..ServeConfig::default()
    };
    let run = |cfg: &ServeConfig| {
        let mut best = u128::MAX;
        let mut retained = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (out, summary) = serve_lines(&lines, cfg);
            let nanos = t0.elapsed().as_nanos();
            assert_eq!(out.len(), lines.len(), "every request must be answered");
            assert_eq!(summary.ok(), lines.len() as u64);
            retained = summary.traces_retained();
            best = best.min(nanos);
        }
        (best, retained)
    };

    let (nanos_off, retained_off) = run(&base);
    assert_eq!(retained_off, 0, "recorder off must retain nothing");
    let cfg_on = ServeConfig {
        recorder: RecorderConfig {
            enabled: true,
            sample_every: 1,
            max_retained: lines.len().max(1),
            ..RecorderConfig::default()
        },
        ..base.clone()
    };
    let (nanos_on, retained_on) = run(&cfg_on);
    assert_eq!(
        retained_on,
        lines.len() as u64,
        "sample_every=1 must retain every request's trace"
    );

    ObsRow {
        programs: lines.len() as u64,
        traces_retained: retained_on,
        nanos_recorder_off: nanos_off,
        nanos_recorder_on: nanos_on,
    }
}

/// Socket-transport round-trip throughput: the same example batch
/// pushed through a loopback TCP server by one pipelining client, so
/// the row prices the full framing + admission + response-routing
/// path rather than the in-process `serve_lines` shortcut.
///
/// `programs`/`responses_ok` are deterministic and gate exactly;
/// `nanos_batch` gets timing tolerance and `requests_per_sec` the
/// one-sided throughput tolerance.
struct SocketRow {
    programs: u64,
    responses_ok: u64,
    nanos_batch: u128,
    requests_per_sec: f64,
}

impl SocketRow {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", "socket_roundtrip");
        w.field_u64("programs", self.programs);
        w.field_u64("responses_ok", self.responses_ok);
        w.field_u64("nanos_batch", saturate(self.nanos_batch));
        w.field_f64("requests_per_sec", self.requests_per_sec, 1);
        w.end_object();
    }
}

fn bench_socket_roundtrip(reps: usize) -> SocketRow {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use typeclasses::serve::serve_socket;

    let lines = example_batch_lines(reps);
    let cfg = ServeConfig {
        queue_capacity: lines.len().max(64),
        ..ServeConfig::default()
    };

    // Best of three batches over a fresh server each time, so listener
    // setup and worker spawn amortize the same way in every round.
    let mut best_nanos = u128::MAX;
    let mut responses_ok = 0;
    for _ in 0..3 {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = serve_socket(listener, &cfg).expect("serve_socket");
        let stream = TcpStream::connect(handle.addr()).expect("connect loopback");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);

        let blob = lines.join("\n") + "\n";
        let t0 = Instant::now();
        writer
            .write_all(blob.as_bytes())
            .and_then(|()| writer.flush())
            .expect("send batch");
        let mut line = String::new();
        for _ in 0..lines.len() {
            line.clear();
            let n = reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "server closed before answering the batch");
        }
        let nanos = t0.elapsed().as_nanos();
        drop(writer);
        drop(reader);
        let summary = handle.shutdown();
        assert_eq!(
            summary.ok(),
            lines.len() as u64,
            "examples must all succeed over the socket"
        );
        responses_ok = summary.ok();
        best_nanos = best_nanos.min(nanos);
    }

    let programs = lines.len() as u64;
    SocketRow {
        programs,
        responses_ok,
        nanos_batch: best_nanos,
        requests_per_sec: programs as f64 * 1e9 / best_nanos.max(1) as f64,
    }
}

/// Coherence-checker throughput: pairwise overlap detection over a
/// deliberately wide (and deliberately disjoint — the pass must come
/// back clean) instance world, reported as instances/sec.
///
/// The instance/pair counters are deterministic and gate exactly;
/// `nanos_check` gets timing tolerance and `instances_per_sec` the
/// one-sided throughput tolerance, like the serve row.
struct CoherenceRow {
    instances: u64,
    pairs: u64,
    nanos_check: u128,
    instances_per_sec: f64,
    metrics: Vec<(&'static str, u64)>,
}

impl CoherenceRow {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", "coherence_check");
        w.field_u64("instances", self.instances);
        w.field_u64("pairs", self.pairs);
        w.field_u64("nanos_check", saturate(self.nanos_check));
        w.field_f64("instances_per_sec", self.instances_per_sec, 1);
        w.begin_object_field("metrics");
        for (name, value) in &self.metrics {
            w.field_u64(name, *value);
        }
        w.end_object();
        w.end_object();
    }
}

/// `classes` classes, each instanced at every `List^d Int` / `List^d
/// Bool` for `d < depths` — disjoint heads, so the check is all work
/// and no findings.
fn coherence_source(classes: usize, depths: usize) -> String {
    let mut src = String::new();
    for c in 0..classes {
        let _ = writeln!(src, "class C{c} a where {{ m{c} :: a -> Bool; }};");
        for d in 0..depths {
            for base in ["Int", "Bool"] {
                let mut ty = base.to_string();
                for _ in 0..d {
                    ty = format!("(List {ty})");
                }
                let _ = writeln!(src, "instance C{c} {ty} where {{ m{c} = \\x -> True; }};");
            }
        }
    }
    src
}

fn bench_coherence(iters: usize) -> CoherenceRow {
    use typeclasses::coherence::{check_coherence, CoherenceConfig, CoherenceInput};
    use typeclasses::MetricsRegistry;

    let cenv = env_from_source(&coherence_source(6, 4));
    let cfg = CoherenceConfig::default();
    let mut metrics = MetricsRegistry::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        let diags = check_coherence(
            &CoherenceInput {
                cenv: &cenv,
                user_start: 0,
            },
            &cfg,
            &mut metrics,
        );
        assert!(
            diags.is_empty(),
            "disjoint instance world must check clean: {diags:?}"
        );
    }
    let nanos_check = t0.elapsed().as_nanos();

    let total = metrics.counter(typeclasses::CounterId::CoherenceInstancesChecked);
    let pairs = metrics.counter(typeclasses::CounterId::CoherencePairsUnified);
    CoherenceRow {
        instances: total / iters.max(1) as u64,
        pairs: pairs / iters.max(1) as u64,
        nanos_check,
        instances_per_sec: total as f64 * 1e9 / nanos_check.max(1) as f64,
        metrics: metrics.counters_snapshot(),
    }
}

const TOWER_SRC: &str = "\
    class Eq a where { eq :: a -> a -> Bool; };\n\
    instance Eq Int where { eq = primEqInt; };\n\
    instance Eq a => Eq (List a) where { eq = \\x y -> True; };\n";

/// Like [`TOWER_SRC`] but the tower instance is *derived*: the
/// `deriving (Eq)` clause on `Wrap` generates
/// `instance Eq a => Eq (Wrap a)` mechanically, so resolving
/// `Eq (Wrap^8 Int)` measures the memo table over derived instances.
const DERIVED_TOWER_SRC: &str = "\
    class Eq a where { eq :: a -> a -> Bool; neq :: a -> a -> Bool; };\n\
    instance Eq Int where { eq = primEqInt; neq = \\x y -> False; };\n\
    data Wrap a = Wrap a deriving (Eq);\n";

/// `Wrap (Wrap (... Int))`, `depth` wraps deep.
fn wrap_tower_type(depth: usize) -> Type {
    let mut t = Type::int();
    for _ in 0..depth {
        t = Type::App(Box::new(Type::Con("Wrap".into())), Box::new(t));
    }
    t
}

/// Eight sibling superclasses under one class, all instanced at Int.
fn wide_super_source(width: usize) -> String {
    let mut src = String::new();
    for i in 0..width {
        let _ = writeln!(src, "class S{i} a where {{ s{i} :: a -> Bool; }};");
        let _ = writeln!(src, "instance S{i} Int where {{ s{i} = \\x -> True; }};");
    }
    let supers: Vec<String> = (0..width).map(|i| format!("S{i} a")).collect();
    let _ = writeln!(
        src,
        "class ({}) => K a where {{ k :: a -> Bool; }};",
        supers.join(", ")
    );
    let _ = writeln!(src, "instance K Int where {{ k = \\x -> True; }};");
    src
}

fn main() {
    // Cargo passes `--bench`; criterion uses `--test` for smoke mode.
    // Ignore anything else so the harness never trips on runner flags.
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 100 } else { 10_000 };

    let sp = Span::DUMMY;
    let mut rows = Vec::new();

    // Deep instance tower: Eq (List^8 Int), resolved `iters` times.
    let tower_env = env_from_source(TOWER_SRC);
    let deep = Pred::new("Eq", tower_type(8), sp);
    let row = bench_resolution("deep_tower_eq_list8_int", &tower_env, &deep, iters);
    assert!(
        row.hit_rate >= 0.90,
        "deep tower hit rate {:.4} < 0.90",
        row.hit_rate
    );
    assert!(
        row.construction_ratio >= 2.0,
        "deep tower construction ratio {:.2} < 2.0",
        row.construction_ratio
    );
    rows.push(row);

    // Same tower through a *derived* instance: `deriving (Eq)` on
    // `Wrap a` must resolve exactly like the handwritten List tower.
    let derived_env = env_from_source(DERIVED_TOWER_SRC);
    let derived = Pred::new("Eq", wrap_tower_type(8), sp);
    let row = bench_resolution("derived_eq_tower", &derived_env, &derived, iters);
    assert!(
        row.hit_rate >= 0.90,
        "derived tower hit rate {:.4} < 0.90",
        row.hit_rate
    );
    assert!(
        row.construction_ratio >= 2.0,
        "derived tower construction ratio {:.2} < 2.0",
        row.construction_ratio
    );
    rows.push(row);

    // Wide superclass graph: K Int pulls in 8 sibling superclass dicts.
    let wide_env = env_from_source(&wide_super_source(8));
    let wide = Pred::new("K", Type::int(), sp);
    rows.push(bench_resolution(
        "wide_supers_k_int",
        &wide_env,
        &wide,
        iters,
    ));

    // The three checked-in example programs, full pipeline on vs off.
    for (name, path) in [
        ("example_member", "examples/member.mh"),
        ("example_maxlist", "examples/maxlist.mh"),
        ("example_sumsquares", "examples/sumsquares.mh"),
        ("example_deriving", "examples/deriving.mh"),
    ] {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run from the workspace root)"));
        rows.push(bench_example(name, &src));
    }

    // End-to-end server throughput over the same example programs.
    let serve_row = bench_serve_batch(if smoke { 20 } else { 200 });

    // Flight-recorder overhead: the same batch, recorder off vs on.
    let obs_row = bench_obs_overhead(if smoke { 10 } else { 100 });

    // The same batch over loopback TCP: framing + routing overhead.
    let socket_row = bench_socket_roundtrip(if smoke { 20 } else { 200 });

    // Coherence-checker throughput over a wide disjoint instance world.
    let coherence_row = bench_coherence(iters);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "resolve");
    w.field_str("mode", if smoke { "smoke" } else { "full" });
    w.field_u64("iters", iters as u64);
    w.begin_array_field("workloads");
    for r in &rows {
        r.write_json(&mut w);
    }
    serve_row.write_json(&mut w);
    obs_row.write_json(&mut w);
    socket_row.write_json(&mut w);
    coherence_row.write_json(&mut w);
    w.end_array();
    w.end_object();
    let json = w.finish();
    typeclasses::trace::json::check(&json)
        .unwrap_or_else(|e| panic!("bench emitted malformed JSON: {e}"));
    std::fs::write("BENCH_resolve.json", &json).expect("cannot write BENCH_resolve.json");

    for r in &rows {
        println!(
            "{:28} goals={:8} hits={:8} hit_rate={:6.2}% dicts on/off={}/{} ({:.1}x) \
             time on/off={:.3}ms/{:.3}ms",
            r.name,
            r.goals,
            r.table_hits,
            r.hit_rate * 100.0,
            r.dicts_constructed,
            r.dicts_constructed_off,
            r.construction_ratio,
            r.nanos_on as f64 / 1e6,
            r.nanos_off as f64 / 1e6,
        );
    }
    println!(
        "{:28} programs={:6} ok={:6} batch={:.3}ms throughput={:.0}/s",
        "serve_batch_throughput",
        serve_row.programs,
        serve_row.responses_ok,
        serve_row.nanos_batch as f64 / 1e6,
        serve_row.programs_per_sec,
    );
    println!(
        "{:28} programs={:6} retained={:4} off={:.3}ms on={:.3}ms ({:+.1}% overhead)",
        "obs_overhead",
        obs_row.programs,
        obs_row.traces_retained,
        obs_row.nanos_recorder_off as f64 / 1e6,
        obs_row.nanos_recorder_on as f64 / 1e6,
        (obs_row.nanos_recorder_on as f64 / obs_row.nanos_recorder_off.max(1) as f64 - 1.0) * 100.0,
    );
    println!(
        "{:28} programs={:6} ok={:6} batch={:.3}ms throughput={:.0}/s",
        "socket_roundtrip",
        socket_row.programs,
        socket_row.responses_ok,
        socket_row.nanos_batch as f64 / 1e6,
        socket_row.requests_per_sec,
    );
    println!(
        "{:28} instances={:4} pairs={:5} check={:.3}ms throughput={:.0} instances/s",
        "coherence_check",
        coherence_row.instances,
        coherence_row.pairs,
        coherence_row.nanos_check as f64 / 1e6,
        coherence_row.instances_per_sec,
    );
    println!("wrote BENCH_resolve.json");
}
