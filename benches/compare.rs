//! CLI wrapper around [`typeclasses::compare::compare_reports`]: the
//! perf-regression baseline gate.
//!
//! ```sh
//! cargo bench --bench resolve -- --test           # produce BENCH_resolve.json
//! cargo bench --bench compare -- benches/baseline.json BENCH_resolve.json
//! ```
//!
//! Flags:
//!
//! * `--tol-nanos=<ratio>` — timing tolerance ratio (default 3.0): a
//!   timing regresses when `new > old * ratio`;
//! * `--min-nanos=<ns>` — noise floor (default 100000): baseline
//!   timings below it are not compared at all.
//!
//! Exit codes: 0 clean, 1 regression(s), 2 usage / unreadable input /
//! incomparable reports. `--bench` and `--test` (passed by cargo) are
//! ignored, like the resolve bench does.

use std::process::ExitCode;
use typeclasses::compare::{compare_reports, Tolerance};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo bench --bench compare -- [--tol-nanos=<ratio>] [--min-nanos=<ns>] \
         <baseline.json> <current.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut tol = Tolerance::default();
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--bench" || arg == "--test" {
            continue; // cargo passes these to harness-less benches
        } else if let Some(v) = arg.strip_prefix("--tol-nanos=") {
            match v.parse::<f64>() {
                Ok(r) if r >= 1.0 => tol.nanos_ratio = r,
                _ => {
                    eprintln!("--tol-nanos wants a ratio >= 1.0, got {v:?}");
                    return usage();
                }
            }
        } else if let Some(v) = arg.strip_prefix("--min-nanos=") {
            match v.parse::<u64>() {
                Ok(n) => tol.min_nanos = n,
                Err(_) => {
                    eprintln!("--min-nanos wants an integer, got {v:?}");
                    return usage();
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("unknown flag {arg:?}");
            return usage();
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (baseline, current) = match (read(baseline_path), read(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    match compare_reports(&baseline, &current, &tol) {
        Err(e) => {
            eprintln!("compare: {e}");
            ExitCode::from(2)
        }
        Ok(cmp) => {
            print!("{}", cmp.report);
            println!(
                "compared {} workloads, {} fields (timing tolerance {}x, noise floor {}ns)",
                cmp.workloads_compared, cmp.fields_compared, tol.nanos_ratio, tol.min_nanos
            );
            if cmp.ok() {
                println!("no regressions against {baseline_path}");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "{} regression(s) against {baseline_path}:",
                    cmp.regressions.len()
                );
                for r in &cmp.regressions {
                    eprintln!("  {}: {}", r.workload, r.detail);
                }
                eprintln!(
                    "if this change is intentional, refresh the baseline: \
                     cargo bench --bench resolve -- --test && \
                     cp BENCH_resolve.json benches/baseline.json"
                );
                ExitCode::FAILURE
            }
        }
    }
}
