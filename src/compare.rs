//! Bench-report comparator: the perf-regression baseline gate.
//!
//! [`compare_reports`] diffs two `BENCH_resolve.json` documents (a
//! committed baseline and a fresh run) and classifies every numeric
//! field of every workload:
//!
//! * **timings** (`nanos_*` fields and everything inside
//!   `stage_nanos`) are held to a *ratio* tolerance
//!   ([`Tolerance::nanos_ratio`], default 3x) with an absolute floor
//!   ([`Tolerance::min_nanos`]) below which readings are considered
//!   noise and skipped — wall-clock numbers vary wildly across
//!   machines, so only order-of-magnitude blowups gate;
//! * **rates** (`hit_rate`, `construction_ratio`) are held to a small
//!   absolute epsilon ([`Tolerance::rate_epsilon`]) — they are derived
//!   from deterministic counters, so any real drift is a behavior
//!   change;
//! * **throughputs** (fields ending in `per_sec`, e.g. the serve
//!   pool's `programs_per_sec`) are timings with the axis flipped:
//!   they regress when the *new* reading falls below the baseline
//!   divided by [`Tolerance::nanos_ratio`] — higher is better, so
//!   only collapses gate, not gains;
//! * **everything else** (goal counts, table hits, the `metrics`
//!   counter object) must match *exactly* — these are deterministic
//!   invariants of the compiler, and a change in either direction
//!   means the baseline no longer describes the code.
//!
//! A workload present in the baseline but missing from the new report
//! is itself a regression (lost coverage). Reports from different
//! modes (`smoke` vs `full`) or iteration counts refuse to compare —
//! that is an operator error, not a regression.
//!
//! The CLI wrapper lives in `benches/compare.rs`
//! (`cargo bench --bench compare -- <baseline> <current>`); it exits 0
//! when clean, 1 on regression, 2 on usage/parse errors.

use std::fmt::Write as _;
use tc_trace::json::{parse, Value};

/// How much slack each class of field gets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// A timing regresses when `new > old * nanos_ratio`.
    pub nanos_ratio: f64,
    /// Timings where the baseline reading is below this many
    /// nanoseconds are skipped as noise.
    pub min_nanos: u64,
    /// Absolute slack for `hit_rate` / `construction_ratio`.
    pub rate_epsilon: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            nanos_ratio: 3.0,
            min_nanos: 100_000,
            rate_epsilon: 0.01,
        }
    }
}

/// One field that moved outside its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub workload: String,
    pub field: String,
    pub baseline: f64,
    pub current: f64,
    /// Human sentence: which rule tripped and by how much.
    pub detail: String,
}

/// The outcome of one comparison: every regression found plus a
/// rendered per-workload delta report.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    pub regressions: Vec<Regression>,
    /// Workloads present in both reports and compared.
    pub workloads_compared: usize,
    /// Numeric fields compared (skipped-as-noise timings excluded).
    pub fields_compared: usize,
    /// Per-workload delta table, one line per workload.
    pub report: String,
}

impl Comparison {
    /// No regressions?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Field classes, decided by name and position.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FieldClass {
    Timing,
    Rate,
    Throughput,
    Exact,
}

fn classify(field: &str, inside_stage_nanos: bool) -> FieldClass {
    if inside_stage_nanos || field.starts_with("nanos") {
        FieldClass::Timing
    } else if field == "hit_rate" || field == "construction_ratio" {
        FieldClass::Rate
    } else if field.ends_with("per_sec") {
        FieldClass::Throughput
    } else {
        FieldClass::Exact
    }
}

/// Diff two bench-report JSON documents. `Err` means the inputs could
/// not be compared at all (malformed JSON, wrong shape, mismatched
/// mode/iters); regressions are reported in the `Ok` payload.
pub fn compare_reports(
    baseline_src: &str,
    current_src: &str,
    tol: &Tolerance,
) -> Result<Comparison, String> {
    let base = parse(baseline_src).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse(current_src).map_err(|e| format!("current: {e}"))?;

    for key in ["bench", "mode"] {
        let b = base
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("baseline: missing string field \"{key}\""))?;
        let c = cur
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("current: missing string field \"{key}\""))?;
        if b != c {
            return Err(format!(
                "reports are not comparable: \"{key}\" is \"{b}\" in the baseline \
                 but \"{c}\" in the current run"
            ));
        }
    }
    let b_iters = base.get("iters").and_then(Value::as_u64);
    let c_iters = cur.get("iters").and_then(Value::as_u64);
    if b_iters != c_iters {
        return Err(format!(
            "reports are not comparable: iters {b_iters:?} vs {c_iters:?}"
        ));
    }

    let base_wl = workloads(&base).map_err(|e| format!("baseline: {e}"))?;
    let cur_wl = workloads(&cur).map_err(|e| format!("current: {e}"))?;

    let mut cmp = Comparison::default();
    for (name, old) in &base_wl {
        let Some((_, new)) = cur_wl.iter().find(|(n, _)| n == name) else {
            cmp.regressions.push(Regression {
                workload: name.clone(),
                field: "<workload>".into(),
                baseline: 1.0,
                current: 0.0,
                detail: "workload missing from the current report".into(),
            });
            continue;
        };
        cmp.workloads_compared += 1;
        let before = cmp.regressions.len();
        compare_object(name, "", old, new, false, tol, &mut cmp);
        let on_old = old
            .get("nanos_cache_on")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let on_new = new
            .get("nanos_cache_on")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let verdict = if cmp.regressions.len() == before {
            "ok"
        } else {
            "REGRESSED"
        };
        let _ = writeln!(
            cmp.report,
            "{name:32} nanos_cache_on {:>12.0} -> {:>12.0} ({:+.1}%)  {verdict}",
            on_old,
            on_new,
            if on_old > 0.0 {
                (on_new - on_old) / on_old * 100.0
            } else {
                0.0
            },
        );
    }
    Ok(cmp)
}

/// Index a report's `workloads` array by name.
fn workloads(report: &Value) -> Result<Vec<(String, &Value)>, String> {
    let arr = report
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or("missing \"workloads\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for w in arr {
        let name = w
            .get("name")
            .and_then(Value::as_str)
            .ok_or("workload without a \"name\"")?;
        out.push((name.to_string(), w));
    }
    Ok(out)
}

/// Compare every field of a workload (or nested) object. `prefix`
/// dots into nested objects for readable field paths.
fn compare_object(
    workload: &str,
    prefix: &str,
    old: &Value,
    new: &Value,
    inside_stage_nanos: bool,
    tol: &Tolerance,
    cmp: &mut Comparison,
) {
    let Some(fields) = old.as_object() else {
        return;
    };
    for (key, ov) in fields {
        if key == "name" {
            continue;
        }
        let path = if prefix.is_empty() {
            key.clone()
        } else {
            format!("{prefix}.{key}")
        };
        let nv = new.get(key);
        match ov {
            Value::Object(_) => {
                let Some(nv) = nv else {
                    cmp.regressions.push(Regression {
                        workload: workload.into(),
                        field: path.clone(),
                        baseline: 1.0,
                        current: 0.0,
                        detail: format!("object \"{path}\" missing from the current report"),
                    });
                    continue;
                };
                compare_object(
                    workload,
                    &path,
                    ov,
                    nv,
                    key == "stage_nanos" || inside_stage_nanos,
                    tol,
                    cmp,
                );
            }
            Value::Num(old_n) => {
                let Some(new_n) = nv.and_then(Value::as_f64) else {
                    cmp.regressions.push(Regression {
                        workload: workload.into(),
                        field: path.clone(),
                        baseline: *old_n,
                        current: f64::NAN,
                        detail: format!("numeric field \"{path}\" missing from the current report"),
                    });
                    continue;
                };
                compare_num(workload, &path, *old_n, new_n, inside_stage_nanos, tol, cmp);
            }
            // Strings / bools / nulls / arrays inside a workload are
            // identity metadata; only numbers gate.
            _ => {}
        }
    }
}

fn compare_num(
    workload: &str,
    field: &str,
    old: f64,
    new: f64,
    inside_stage_nanos: bool,
    tol: &Tolerance,
    cmp: &mut Comparison,
) {
    match classify(
        field.rsplit('.').next().unwrap_or(field),
        inside_stage_nanos,
    ) {
        FieldClass::Timing => {
            if old < tol.min_nanos as f64 {
                return; // below the noise floor — not compared
            }
            cmp.fields_compared += 1;
            if new > old * tol.nanos_ratio {
                cmp.regressions.push(Regression {
                    workload: workload.into(),
                    field: field.into(),
                    baseline: old,
                    current: new,
                    detail: format!(
                        "timing {field}: {new:.0}ns exceeds {:.1}x the baseline {old:.0}ns",
                        tol.nanos_ratio
                    ),
                });
            }
        }
        FieldClass::Throughput => {
            if old <= 0.0 {
                return; // nothing measured in the baseline — not compared
            }
            cmp.fields_compared += 1;
            if new < old / tol.nanos_ratio {
                cmp.regressions.push(Regression {
                    workload: workload.into(),
                    field: field.into(),
                    baseline: old,
                    current: new,
                    detail: format!(
                        "throughput {field}: {new:.0}/s fell below 1/{:.1} of the baseline {old:.0}/s",
                        tol.nanos_ratio
                    ),
                });
            }
        }
        FieldClass::Rate => {
            cmp.fields_compared += 1;
            if (new - old).abs() > tol.rate_epsilon {
                cmp.regressions.push(Regression {
                    workload: workload.into(),
                    field: field.into(),
                    baseline: old,
                    current: new,
                    detail: format!(
                        "rate {field}: {new:.4} drifted more than {:.4} from the baseline {old:.4}",
                        tol.rate_epsilon
                    ),
                });
            }
        }
        FieldClass::Exact => {
            cmp.fields_compared += 1;
            if new != old {
                cmp.regressions.push(Regression {
                    workload: workload.into(),
                    field: field.into(),
                    baseline: old,
                    current: new,
                    detail: format!(
                        "counter {field}: {new} != baseline {old} (deterministic \
                         invariant changed — investigate, then refresh the baseline)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"bench": "resolve", "mode": "smoke", "iters": 100, "workloads": [
        {"name": "deep", "goals": 108, "table_hits": 99, "hit_rate": 0.9167,
         "nanos_cache_on": 1000000, "nanos_cache_off": 2000000,
         "stage_nanos": {"resolve": 1000000},
         "metrics": {"resolve.cache.hits": 99, "intern.fresh": 9}},
        {"name": "wide", "goals": 100, "table_hits": 99, "hit_rate": 0.99,
         "nanos_cache_on": 50000, "nanos_cache_off": 50000,
         "stage_nanos": {}, "metrics": {}}
    ]}"#;

    #[test]
    fn identical_reports_are_clean() {
        let c = compare_reports(BASE, BASE, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
        assert_eq!(c.workloads_compared, 2);
        assert!(c.fields_compared > 0);
        assert!(c.report.contains("deep"), "{}", c.report);
        assert!(c.report.contains("ok"), "{}", c.report);
    }

    #[test]
    fn timing_blowup_regresses_but_noise_is_tolerated() {
        // 2x on a measured timing: inside the default 3x ratio.
        let within = BASE.replace("\"nanos_cache_on\": 1000000", "\"nanos_cache_on\": 2000000");
        let c = compare_reports(BASE, &within, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
        // 10x: over the ratio, regression (in both the top-level field
        // and the stage_nanos entry).
        let blowup = BASE
            .replace(
                "\"nanos_cache_on\": 1000000",
                "\"nanos_cache_on\": 10000000",
            )
            .replace("{\"resolve\": 1000000}", "{\"resolve\": 10000000}");
        let c = compare_reports(BASE, &blowup, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert!(c.regressions.iter().any(|r| r.field == "nanos_cache_on"));
        assert!(c
            .regressions
            .iter()
            .any(|r| r.field == "stage_nanos.resolve"));
        // The 50000ns workload is below the default noise floor: a 10x
        // there does not gate.
        let noisy = BASE.replace("\"nanos_cache_on\": 50000", "\"nanos_cache_on\": 500000");
        let c = compare_reports(BASE, &noisy, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
    }

    #[test]
    fn counter_changes_regress_exactly() {
        let drifted = BASE.replace("\"table_hits\": 99,", "\"table_hits\": 98,");
        let c = compare_reports(BASE, &drifted, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert!(c.regressions.iter().all(|r| r.field == "table_hits"));
        // Metrics-object counters are exact too.
        let m = BASE.replace("\"intern.fresh\": 9", "\"intern.fresh\": 10");
        let c = compare_reports(BASE, &m, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert_eq!(c.regressions[0].field, "metrics.intern.fresh");
    }

    #[test]
    fn rate_drift_regresses_beyond_epsilon() {
        let small = BASE.replace("\"hit_rate\": 0.9167", "\"hit_rate\": 0.9166");
        assert!(compare_reports(BASE, &small, &Tolerance::default())
            .unwrap()
            .ok());
        let big = BASE.replace("\"hit_rate\": 0.9167", "\"hit_rate\": 0.5");
        let c = compare_reports(BASE, &big, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert_eq!(c.regressions[0].field, "hit_rate");
    }

    #[test]
    fn throughput_collapse_regresses_but_gains_do_not() {
        let base = r#"{"bench": "resolve", "mode": "smoke", "iters": 100, "workloads": [
            {"name": "serve", "programs": 30, "programs_per_sec": 9000.0,
             "nanos_batch": 3000000, "stage_nanos": {}, "metrics": {}}
        ]}"#;
        // Half the throughput: within the default 3x ratio.
        let slower = base.replace("9000.0", "4500.0");
        let c = compare_reports(base, &slower, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
        // A 10x collapse gates.
        let collapsed = base.replace("9000.0", "900.0");
        let c = compare_reports(base, &collapsed, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert_eq!(c.regressions[0].field, "programs_per_sec");
        assert!(c.regressions[0].detail.contains("throughput"));
        // Going faster never regresses.
        let faster = base.replace("9000.0", "90000.0");
        let c = compare_reports(base, &faster, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
        // A zero baseline reading is skipped, not divided by.
        let zero = base.replace("9000.0", "0.0");
        let c = compare_reports(&zero, base, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
    }

    #[test]
    fn missing_workload_and_missing_field_regress() {
        let one = r#"{"bench": "resolve", "mode": "smoke", "iters": 100, "workloads": [
            {"name": "deep", "goals": 108, "table_hits": 99, "hit_rate": 0.9167,
             "nanos_cache_on": 1000000, "nanos_cache_off": 2000000,
             "stage_nanos": {"resolve": 1000000},
             "metrics": {"resolve.cache.hits": 99, "intern.fresh": 9}}
        ]}"#;
        let c = compare_reports(BASE, one, &Tolerance::default()).unwrap();
        assert!(!c.ok());
        assert!(c.regressions.iter().any(|r| r.workload == "wide"));
        let no_goals = BASE.replace("\"goals\": 108, ", "");
        let c = compare_reports(BASE, &no_goals, &Tolerance::default()).unwrap();
        assert!(c.regressions.iter().any(|r| r.field == "goals"));
    }

    #[test]
    fn incomparable_reports_error_out() {
        let full = BASE.replace("\"mode\": \"smoke\"", "\"mode\": \"full\"");
        assert!(compare_reports(BASE, &full, &Tolerance::default()).is_err());
        let iters = BASE.replace("\"iters\": 100", "\"iters\": 10000");
        assert!(compare_reports(BASE, &iters, &Tolerance::default()).is_err());
        assert!(compare_reports(BASE, "not json", &Tolerance::default()).is_err());
    }

    #[test]
    fn real_bench_artifact_shape_parses() {
        // Guard against the comparator and the bench serializer
        // drifting apart: a row shaped exactly like benches/resolve.rs
        // emits must compare cleanly against itself.
        let row = r#"{"bench": "resolve", "mode": "smoke", "iters": 100, "workloads": [
            {"name": "deep_tower_eq_list8_int", "goals": 108, "table_hits": 99,
             "table_misses": 9, "hit_rate": 0.9167, "dicts_constructed": 9,
             "dicts_constructed_cache_off": 900, "construction_ratio": 100.00,
             "nanos_cache_on": 154610, "nanos_cache_off": 2413485,
             "stage_nanos": {"resolve": 154610},
             "metrics": {"resolve.cache.hits": 99, "resolve.cache.misses": 9,
                         "resolve.goals": 108, "intern.hits": 12, "intern.fresh": 10}}
        ]}"#;
        let c = compare_reports(row, row, &Tolerance::default()).unwrap();
        assert!(c.ok(), "{:?}", c.regressions);
        assert_eq!(c.workloads_compared, 1);
    }
}
