//! Reproduction of *Implementing Type Classes* (Peterson & Jones,
//! PLDI 1993): a Mini-Haskell compiler built around placeholder-based
//! dictionary conversion, plus a resource-bounded lazy evaluator.
//!
//! This facade crate re-exports the pipeline crates; see the README
//! for the stage-by-stage tour and [`tc_driver::run_source`] for the
//! one-call entry point.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod compare;

pub use tc_classes as classes;
pub use tc_coherence as coherence;
pub use tc_core as core_elab;
pub use tc_coreir as coreir;
pub use tc_driver as driver;
pub use tc_eval as eval;
pub use tc_lint as lint;
pub use tc_serve as serve;
pub use tc_syntax as syntax;
pub use tc_trace as trace;
pub use tc_types as types;

pub use compare::{compare_reports, Comparison, Regression, Tolerance};
pub use tc_driver::{
    check_source, lint_source, run_checked, run_source, Check, FaultPlan, Options, Outcome,
    PipelineStats, RunResult, CANCELLED_CODE, PRELUDE,
};
pub use tc_eval::{Budget, BudgetSnapshot, EvalError, EvalProfile, EvalStats};
pub use tc_lint::{LintConfig, Rule};
pub use tc_serve::{
    retry_after_hint, serve_socket, AccessLog, RecorderConfig, RetainedTrace, ServeConfig,
    ServeSummary, SocketHandle, SHED_WINDOW_SECS,
};
pub use tc_syntax::LintLevel;
pub use tc_trace::{
    bucket_index, chrome_trace_json, CancelToken, CounterId, Event, EventKind, EventLog,
    EventScope, GaugeId, Histogram, HistogramId, HistogramSnapshot, JsonWriter, MetricsRegistry,
    MetricsSnapshot, SpanEvent, Stage, StageSpan, Telemetry, TraceNode,
};
