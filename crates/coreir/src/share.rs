//! Dictionary sharing: hoist repeated compound-dictionary
//! constructions into a single `letrec` binding per top-level scope.
//!
//! Dictionary conversion spells out every placeholder independently, so
//! a binding that uses `eq` at `List Int` twice builds the compound
//! dictionary `($dictEqList $dictEqInt)` twice — the re-evaluation cost
//! the paper's dictionary-sharing discussion warns about, and exactly
//! what the `L0007` lint flags. This pass runs *between* dictionary
//! conversion and linting: within each top-level binding it finds every
//! maximal instance-constructor application spine that occurs more than
//! once, binds one copy under the binding's dictionary-lambda prefix
//! (`\$d... ->`), and rewrites all occurrences to reference it:
//!
//! ```text
//! f = \$d -> ... ($dictEqList $d) ... ($dictEqList $d) ...
//!   ⇒
//! f = \$d -> letrec { $sh0 = $dictEqList $d } in ... $sh0 ... $sh0 ...
//! ```
//!
//! Dictionary constructions are closed, effect-free values, and the
//! evaluator is lazy, so hoisting can only *reduce* work — evaluation
//! results are bit-identical (the differential suite pins this).
//!
//! Safety conditions for hoisting a spine:
//! * its head is a `$dict…` instance constructor with ≥ 1 argument
//!   (nullary dictionaries are already shared globals);
//! * the head is not the enclosing binding itself — the recursive
//!   self-knot a recursive instance ties inside its own constructor is
//!   generated code, exempt here exactly as in `L0007`;
//! * every free variable is either a global `$dict…` constructor or
//!   one of the binding's dictionary-lambda parameters, so the shared
//!   binding is well-scoped directly under that prefix.

use crate::{pretty, CoreExpr, CoreProgram};
use std::collections::{BTreeSet, HashMap};
use tc_trace::{CounterId, HistogramId, MetricsRegistry};

/// Counters from one run of the sharing pass, surfaced by the driver's
/// `--stats` as "dictionaries constructed vs shared".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Maximal compound-dictionary construction sites before the pass.
    pub constructions_before: u64,
    /// Construction sites remaining after the pass (hoisted bindings
    /// count once each).
    pub constructions_after: u64,
    /// Shared `$sh…` bindings introduced.
    pub hoisted_bindings: u64,
    /// Construction occurrences rewritten to a shared reference.
    pub occurrences_shared: u64,
}

/// Run dictionary sharing over every top-level binding in place.
/// Equivalent to [`share_program_metered`] with metrics off.
pub fn share_program(prog: &mut CoreProgram) -> ShareStats {
    share_program_metered(prog, &mut MetricsRegistry::off())
}

/// Run dictionary sharing, additionally folding per-binding
/// observations into `metrics`: the `share.dicts_hoisted` /
/// `share.occurrences_shared` counters and the `share.let_size`
/// histogram (one observation per binding that hoisted anything — the
/// number of `$sh…` definitions its `letrec` introduces). Costs one
/// branch per binding when `metrics` is off.
pub fn share_program_metered(prog: &mut CoreProgram, metrics: &mut MetricsRegistry) -> ShareStats {
    let mut stats = ShareStats {
        constructions_before: count_constructions(prog),
        ..Default::default()
    };
    for (name, expr) in &mut prog.binds {
        let (hoisted, rewritten) = share_binding(name, expr);
        stats.hoisted_bindings += hoisted;
        stats.occurrences_shared += rewritten;
        if hoisted > 0 {
            metrics.observe(HistogramId::ShareLetSize, hoisted);
        }
    }
    metrics.add(CounterId::ShareDictsHoisted, stats.hoisted_bindings);
    metrics.add(CounterId::ShareOccurrencesShared, stats.occurrences_shared);
    stats.constructions_after = count_constructions(prog);
    stats
}

/// Total maximal compound-dictionary construction sites in a program —
/// the quantity the pass minimizes, also used by benches.
pub fn count_constructions(prog: &CoreProgram) -> u64 {
    let mut n = 0u64;
    for (_, expr) in &prog.binds {
        let mut stack = vec![expr];
        while let Some(e) = stack.pop() {
            if spine_key(e, "").is_some() {
                // Maximal spine: nested constructions inside it are
                // already shared by sharing the outermost one.
                n += 1;
                continue;
            }
            e.push_children(&mut stack);
        }
    }
    n
}

/// If `e` is an applied `$dict…` construction whose head is not
/// `self_name`, its identity key (the printed expression).
fn spine_key(e: &CoreExpr, self_name: &str) -> Option<String> {
    let (head, args) = e.spine();
    match head {
        CoreExpr::Var(n) if n.starts_with("$dict") && !args.is_empty() && n != self_name => {
            Some(pretty(e))
        }
        _ => None,
    }
}

/// Free variables of `e` (variables not bound by an enclosing `Lam` or
/// `LetRec` within `e`). Recursion depth is bounded by the parser's
/// expression-depth budget, like the converter's.
fn free_vars(e: &CoreExpr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        CoreExpr::Var(n) => {
            if !bound.iter().any(|b| b == n) {
                out.insert(n.clone());
            }
        }
        CoreExpr::Lam(p, b) => {
            bound.push(p.clone());
            free_vars(b, bound, out);
            bound.pop();
        }
        CoreExpr::LetRec(bs, b) => {
            let base = bound.len();
            bound.extend(bs.iter().map(|(n, _)| n.clone()));
            for (_, v) in bs {
                free_vars(v, bound, out);
            }
            free_vars(b, bound, out);
            bound.truncate(base);
        }
        CoreExpr::Case(scrut, arms) => {
            free_vars(scrut, bound, out);
            for arm in arms {
                let base = bound.len();
                bound.extend(arm.binders.iter().cloned());
                free_vars(&arm.body, bound, out);
                bound.truncate(base);
            }
        }
        _ => {
            let mut kids = Vec::new();
            e.push_children(&mut kids);
            for k in kids {
                free_vars(k, bound, out);
            }
        }
    }
}

/// Share one top-level binding in place. Returns (bindings hoisted,
/// occurrences rewritten).
fn share_binding(name: &str, expr: &mut CoreExpr) -> (u64, u64) {
    // Peel the dictionary-lambda prefix: conversion emits
    // `\$d… -> <body>`, and generated dictionary parameters all start
    // with `$d` (user identifiers cannot contain `$`).
    let mut prefix: Vec<String> = Vec::new();
    let mut body = &*expr;
    while let CoreExpr::Lam(p, b) = body {
        if !p.starts_with("$d") {
            break;
        }
        prefix.push(p.clone());
        body = b;
    }

    // Count maximal candidate spines in first-traversal order.
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut order: Vec<(String, CoreExpr)> = Vec::new();
    let mut stack = vec![body];
    while let Some(e) = stack.pop() {
        if let Some(key) = spine_key(e, name) {
            if !counts.contains_key(&key) && hoistable(e, &prefix) {
                order.push((key.clone(), e.clone()));
            }
            *counts.entry(key).or_insert(0) += 1;
            continue;
        }
        // Reverse so the left child pops first: keeps `order`
        // deterministic in (approximate) source order.
        let mut kids = Vec::new();
        e.push_children(&mut kids);
        stack.extend(kids.into_iter().rev());
    }

    // Keep repeated, hoistable spines; name them in discovery order.
    let mut share_names: HashMap<String, String> = HashMap::new();
    let mut defs: Vec<(String, CoreExpr)> = Vec::new();
    for (key, proto) in order {
        if counts.get(&key).copied().unwrap_or(0) < 2 {
            continue;
        }
        let share = format!("$sh{}", share_names.len());
        share_names.insert(key, share.clone());
        defs.push((share, proto));
    }
    if defs.is_empty() {
        return (0, 0);
    }

    // Rewrite the body; then rewrite each definition's *arguments*
    // (never its own root, which would tie `$shN = $shN`), so shared
    // constructions nested inside other shared constructions reference
    // their sibling binding.
    let mut rewritten = 0u64;
    let new_body = rewrite(body, name, &share_names, &mut rewritten);
    let defs: Vec<(String, CoreExpr)> = defs
        .into_iter()
        .map(|(n, d)| {
            let mut inner = 0u64;
            let d = rewrite_spine_args(&d, name, &share_names, &mut inner);
            (n, d)
        })
        .collect();
    let hoisted = defs.len() as u64;
    *expr = CoreExpr::lams(prefix, CoreExpr::LetRec(defs, Box::new(new_body)));
    (hoisted, rewritten)
}

/// Is the spine's every free variable a global `$dict…` constructor or
/// a dictionary parameter of the enclosing binding?
fn hoistable(e: &CoreExpr, prefix: &[String]) -> bool {
    let mut fv = BTreeSet::new();
    free_vars(e, &mut Vec::new(), &mut fv);
    fv.iter()
        .all(|v| v.starts_with("$dict") || prefix.iter().any(|p| p == v))
}

/// Replace every shared construction with its `$sh…` reference,
/// rebuilding everything else structurally.
fn rewrite(
    e: &CoreExpr,
    self_name: &str,
    shares: &HashMap<String, String>,
    rewritten: &mut u64,
) -> CoreExpr {
    if let Some(key) = spine_key(e, self_name) {
        if let Some(share) = shares.get(&key) {
            *rewritten += 1;
            return CoreExpr::Var(share.clone());
        }
        // An unshared (e.g. single-occurrence) construction may still
        // contain shared ones in argument position.
        return rewrite_spine_args(e, self_name, shares, rewritten);
    }
    match e {
        CoreExpr::Var(_)
        | CoreExpr::Lit(_)
        | CoreExpr::Fail(_)
        | CoreExpr::Placeholder(_)
        | CoreExpr::Con { .. } => e.clone(),
        CoreExpr::Case(scrut, arms) => CoreExpr::Case(
            Box::new(rewrite(scrut, self_name, shares, rewritten)),
            arms.iter()
                .map(|arm| crate::CoreArm {
                    con: arm.con.clone(),
                    binders: arm.binders.clone(),
                    body: rewrite(&arm.body, self_name, shares, rewritten),
                })
                .collect(),
        ),
        CoreExpr::App(f, x) => CoreExpr::app(
            rewrite(f, self_name, shares, rewritten),
            rewrite(x, self_name, shares, rewritten),
        ),
        CoreExpr::Lam(p, b) => CoreExpr::Lam(
            p.clone(),
            Box::new(rewrite(b, self_name, shares, rewritten)),
        ),
        CoreExpr::LetRec(bs, b) => CoreExpr::LetRec(
            bs.iter()
                .map(|(n, v)| (n.clone(), rewrite(v, self_name, shares, rewritten)))
                .collect(),
            Box::new(rewrite(b, self_name, shares, rewritten)),
        ),
        CoreExpr::If(c, t, f) => CoreExpr::If(
            Box::new(rewrite(c, self_name, shares, rewritten)),
            Box::new(rewrite(t, self_name, shares, rewritten)),
            Box::new(rewrite(f, self_name, shares, rewritten)),
        ),
        CoreExpr::Tuple(xs) => CoreExpr::Tuple(
            xs.iter()
                .map(|x| rewrite(x, self_name, shares, rewritten))
                .collect(),
        ),
        CoreExpr::Proj(i, b) => {
            CoreExpr::Proj(*i, Box::new(rewrite(b, self_name, shares, rewritten)))
        }
    }
}

/// Rewrite only the argument positions of an application spine,
/// leaving the spine structure (and its head) intact.
fn rewrite_spine_args(
    e: &CoreExpr,
    self_name: &str,
    shares: &HashMap<String, String>,
    rewritten: &mut u64,
) -> CoreExpr {
    match e {
        CoreExpr::App(f, x) => CoreExpr::app(
            rewrite_spine_args(f, self_name, shares, rewritten),
            rewrite(x, self_name, shares, rewritten),
        ),
        _ => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> CoreExpr {
        CoreExpr::Var(n.into())
    }

    /// `$dictEqList $dictEqInt`
    fn list_int_dict() -> CoreExpr {
        CoreExpr::app(var("$dict1$Eq$List"), var("$dict0$Eq$Int"))
    }

    fn prog(binds: Vec<(&str, CoreExpr)>) -> CoreProgram {
        CoreProgram {
            binds: binds.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
            main: None,
        }
    }

    #[test]
    fn repeated_construction_is_hoisted() {
        let body = CoreExpr::apps(var("f"), vec![list_int_dict(), list_int_dict()]);
        let mut p = prog(vec![("main", body)]);
        let stats = share_program(&mut p);
        assert_eq!(stats.constructions_before, 2);
        assert_eq!(stats.constructions_after, 1);
        assert_eq!(stats.hoisted_bindings, 1);
        assert_eq!(stats.occurrences_shared, 2);
        let printed = pretty(&p.binds[0].1);
        assert!(
            printed.contains("letrec {$sh0 = ($dict1$Eq$List $dict0$Eq$Int)}"),
            "{printed}"
        );
        assert!(printed.contains("((f $sh0) $sh0)"), "{printed}");
    }

    #[test]
    fn single_occurrence_is_untouched() {
        let body = CoreExpr::app(var("f"), list_int_dict());
        let mut p = prog(vec![("main", body.clone())]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 0);
        assert_eq!(p.binds[0].1, body);
    }

    #[test]
    fn hoists_under_dict_lambda_prefix() {
        // g = \$dg0$0 -> f ($dictEqList $dg0$0) ($dictEqList $dg0$0)
        let d = CoreExpr::app(var("$dict1$Eq$List"), var("$dg0$0"));
        let body = CoreExpr::Lam(
            "$dg0$0".into(),
            Box::new(CoreExpr::apps(var("f"), vec![d.clone(), d])),
        );
        let mut p = prog(vec![("g", body)]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 1);
        let printed = pretty(&p.binds[0].1);
        // The letrec sits under the lambda so the parameter is in scope.
        assert!(
            printed.starts_with("(\\$dg0$0 -> (letrec {$sh0 = "),
            "{printed}"
        );
    }

    #[test]
    fn construction_under_user_lambda_still_shares_at_prefix() {
        // h = \$dg0$0 -> \x -> f ($dictEqList $dg0$0) ($dictEqList $dg0$0)
        // The user lambda is *inside*; hoisting lands under the dict
        // prefix, above the user lambda, sharing across calls.
        let d = CoreExpr::app(var("$dict1$Eq$List"), var("$dg0$0"));
        let body = CoreExpr::Lam(
            "$dg0$0".into(),
            Box::new(CoreExpr::Lam(
                "x".into(),
                Box::new(CoreExpr::apps(var("f"), vec![d.clone(), d])),
            )),
        );
        let mut p = prog(vec![("h", body)]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 1);
        let printed = pretty(&p.binds[0].1);
        assert!(printed.starts_with("(\\$dg0$0 -> (letrec {"), "{printed}");
        assert!(printed.contains("(\\x -> ((f $sh0) $sh0))"), "{printed}");
    }

    #[test]
    fn locally_scoped_construction_is_not_hoisted() {
        // A construction referencing a method-local dictionary
        // parameter ($dx…) bound *inside* the body cannot move to the
        // prefix scope.
        let d = CoreExpr::app(var("$dict1$Eq$List"), var("$dx0$eq$0"));
        let body = CoreExpr::Lam(
            "$dx0$eq$0".into(),
            Box::new(CoreExpr::apps(var("f"), vec![d.clone(), d])),
        );
        // NB: the $dx lambda IS the prefix here (it starts with $d), so
        // craft a case where it is genuinely inner: wrap in a user lam.
        let body = CoreExpr::Lam("x".into(), Box::new(body));
        let mut p = prog(vec![("k", body.clone())]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 0);
        assert_eq!(p.binds[0].1, body);
    }

    #[test]
    fn recursive_instance_self_knot_is_exempt() {
        // Inside $dict1$Eq$List's own body, applications of itself are
        // the converter's recursive knot — left alone.
        let knot = CoreExpr::app(var("$dict1$Eq$List"), var("$di1$0"));
        let body = CoreExpr::Lam(
            "$di1$0".into(),
            Box::new(CoreExpr::Tuple(vec![knot.clone(), knot])),
        );
        let mut p = prog(vec![("$dict1$Eq$List", body.clone())]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 0);
        assert_eq!(p.binds[0].1, body);
    }

    #[test]
    fn nested_shared_constructions_reference_siblings() {
        // outer = $dictEqList ($dictEqList $dictEqInt), twice;
        // inner = $dictEqList $dictEqInt, also twice on its own.
        let inner = list_int_dict();
        let outer = CoreExpr::app(var("$dict1$Eq$List"), inner.clone());
        let body = CoreExpr::apps(var("f"), vec![outer.clone(), outer, inner.clone(), inner]);
        let mut p = prog(vec![("main", body)]);
        let stats = share_program(&mut p);
        assert_eq!(stats.hoisted_bindings, 2);
        let printed = pretty(&p.binds[0].1);
        // The outer definition reuses the inner shared binding.
        assert!(
            printed.contains("$sh0 = ($dict1$Eq$List $sh1)")
                || printed.contains("$sh1 = ($dict1$Eq$List $sh0)"),
            "{printed}"
        );
    }

    #[test]
    fn metered_share_agrees_with_plain_and_fills_metrics() {
        let body = CoreExpr::apps(var("f"), vec![list_int_dict(), list_int_dict()]);
        let mut p1 = prog(vec![("main", body.clone())]);
        let mut p2 = prog(vec![("main", body)]);
        let plain = share_program(&mut p1);
        let mut m = MetricsRegistry::new();
        let metered = share_program_metered(&mut p2, &mut m);
        assert_eq!(plain, metered);
        assert_eq!(p1.binds, p2.binds);
        assert_eq!(
            m.counter(CounterId::ShareDictsHoisted),
            metered.hoisted_bindings
        );
        assert_eq!(
            m.counter(CounterId::ShareOccurrencesShared),
            metered.occurrences_shared
        );
        // `unwrap_or_default` keeps the crate panic-free; a disabled
        // registry would fail the count assertion below anyway.
        let h = m
            .histogram(HistogramId::ShareLetSize)
            .cloned()
            .unwrap_or_default();
        assert_eq!(h.count, 1, "one binding hoisted");
        assert_eq!(h.sum, metered.hoisted_bindings);
        // With metrics off nothing is allocated.
        let mut off = MetricsRegistry::off();
        let mut p3 = prog(vec![("main", CoreExpr::app(var("f"), list_int_dict()))]);
        share_program_metered(&mut p3, &mut off);
        assert!(off.allocates_nothing());
    }

    #[test]
    fn count_constructions_counts_maximal_spines_only() {
        let nested = CoreExpr::app(var("$dict1$Eq$List"), list_int_dict());
        let p = prog(vec![("main", CoreExpr::app(var("f"), nested))]);
        assert_eq!(count_constructions(&p), 1);
    }
}
