//! `tc-coreir`: the dictionary-passing core language.
//!
//! The elaborator in `tc-core` translates surface programs into this
//! IR in two steps, exactly as in Peterson & Jones: type inference
//! inserts [`CoreExpr::Placeholder`] nodes wherever a dictionary will
//! eventually be needed (the predicate's type may still be an
//! uninstantiated variable at that point), and a later *dictionary
//! conversion* pass replaces every placeholder with a concrete
//! dictionary expression — a parameter reference, a superclass
//! projection, or an instance dictionary application.
//!
//! Dictionaries are plain tuples: for `class (S1, .., Sm) => C a` with
//! methods `m1 .. mk`, a `C`-dictionary is
//! `(dS1, .., dSm, m1_impl, .., mk_impl)` and method selection is
//! [`CoreExpr::Proj`].
//!
//! A converted program contains no placeholders; [`CoreProgram::verify_converted`]
//! checks that invariant so the evaluator never has to.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod share;

pub use share::{count_constructions, share_program, share_program_metered, ShareStats};

use std::collections::HashMap;
use std::fmt;
use tc_syntax::Span;
use tc_types::Pred;

/// Literal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Literal {
    Int(i64),
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(n) => write!(f, "{n}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Identifier for a placeholder created during inference.
pub type PlaceholderId = u32;

/// What a placeholder stands for.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceholderKind {
    /// A dictionary witnessing `pred`. The predicate's type is zonked
    /// (final substitution applied) before resolution.
    Dict { pred: Pred },
    /// A recursive occurrence of a same-group binding; resolved to the
    /// binding applied to the group's shared dictionary parameters.
    RecCall { name: String, span: Span },
}

/// Side table of placeholders, owned by the elaboration session.
#[derive(Debug, Clone, Default)]
pub struct PlaceholderTable {
    entries: Vec<PlaceholderKind>,
}

impl PlaceholderTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn alloc(&mut self, kind: PlaceholderKind) -> PlaceholderId {
        let id = self.entries.len() as PlaceholderId;
        self.entries.push(kind);
        id
    }

    pub fn get(&self, id: PlaceholderId) -> Option<&PlaceholderKind> {
        self.entries.get(id as usize)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Core expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreExpr {
    /// Variable reference — a top-level binding, lambda parameter,
    /// dictionary parameter, or evaluator builtin (`primAddInt`, ...).
    Var(String),
    Lit(Literal),
    App(Box<CoreExpr>, Box<CoreExpr>),
    Lam(String, Box<CoreExpr>),
    /// Mutually recursive local bindings.
    LetRec(Vec<(String, CoreExpr)>, Box<CoreExpr>),
    If(Box<CoreExpr>, Box<CoreExpr>, Box<CoreExpr>),
    /// Dictionary construction.
    Tuple(Vec<CoreExpr>),
    /// Dictionary slot selection (superclass dict or method).
    Proj(usize, Box<CoreExpr>),
    /// Saturated or partial data-constructor application: `Con` alone
    /// is a value (or a curried function when `arity > 0`); the
    /// evaluator builds a tagged value once `arity` arguments arrive.
    Con {
        name: String,
        /// Declaration index within the data type; `case` dispatches on it.
        tag: u32,
        /// Number of fields.
        arity: usize,
    },
    /// `case` over a scrutinee: each arm either matches one constructor
    /// (binding its fields) or is a default that binds the scrutinee.
    Case(Box<CoreExpr>, Vec<CoreArm>),
    /// Unresolved dictionary reference; present only between inference
    /// and dictionary conversion.
    Placeholder(PlaceholderId),
    /// Deliberate runtime failure with a message. Produced for
    /// unrecoverable elaboration holes (so a partially-broken program
    /// still compiles to *something* deterministic) — evaluating it
    /// yields a structured error, never a panic.
    Fail(String),
}

/// One alternative of a [`CoreExpr::Case`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoreArm {
    /// `Some((name, tag))` for a constructor arm; `None` for a default
    /// (variable or wildcard) arm.
    pub con: Option<(String, u32)>,
    /// Field binders for a constructor arm (one per field), or the
    /// single scrutinee binder of a default arm. `_` entries bind
    /// nothing.
    pub binders: Vec<String>,
    pub body: CoreExpr,
}

impl CoreExpr {
    pub fn app(f: CoreExpr, x: CoreExpr) -> CoreExpr {
        CoreExpr::App(Box::new(f), Box::new(x))
    }

    /// `f x1 x2 ...`
    pub fn apps(f: CoreExpr, args: impl IntoIterator<Item = CoreExpr>) -> CoreExpr {
        args.into_iter().fold(f, CoreExpr::app)
    }

    /// `\p1 p2 ... -> body`
    pub fn lams(params: impl IntoIterator<Item = String>, body: CoreExpr) -> CoreExpr {
        let ps: Vec<String> = params.into_iter().collect();
        ps.into_iter()
            .rev()
            .fold(body, |acc, p| CoreExpr::Lam(p, Box::new(acc)))
    }

    /// Push every direct child expression onto `out`. The shared
    /// primitive behind the IR's iterative traversals (placeholder
    /// detection here, the static-analysis walks in `tc-lint`), so a
    /// new variant cannot be forgotten by one traversal but not
    /// another.
    pub fn push_children<'a>(&'a self, out: &mut Vec<&'a CoreExpr>) {
        match self {
            CoreExpr::Var(_)
            | CoreExpr::Lit(_)
            | CoreExpr::Fail(_)
            | CoreExpr::Placeholder(_)
            | CoreExpr::Con { .. } => {}
            CoreExpr::Case(scrut, arms) => {
                out.push(scrut);
                for arm in arms {
                    out.push(&arm.body);
                }
            }
            CoreExpr::App(a, b) => {
                out.push(a);
                out.push(b);
            }
            CoreExpr::Lam(_, b) => out.push(b),
            CoreExpr::LetRec(bs, b) => {
                out.push(b);
                for (_, e) in bs {
                    out.push(e);
                }
            }
            CoreExpr::If(c, t, e2) => {
                out.push(c);
                out.push(t);
                out.push(e2);
            }
            CoreExpr::Tuple(xs) => out.extend(xs.iter()),
            CoreExpr::Proj(_, b) => out.push(b),
        }
    }

    /// Does any placeholder remain? Iterative traversal.
    pub fn first_placeholder(&self) -> Option<PlaceholderId> {
        let mut stack = vec![self];
        while let Some(e) = stack.pop() {
            if let CoreExpr::Placeholder(id) = e {
                return Some(*id);
            }
            e.push_children(&mut stack);
        }
        None
    }

    /// Number of IR nodes in the expression (iterative). Used by the
    /// telemetry layer as a cheap size counter for the core program.
    pub fn node_count(&self) -> u64 {
        let mut n = 0u64;
        let mut stack = vec![self];
        while let Some(e) = stack.pop() {
            n += 1;
            e.push_children(&mut stack);
        }
        n
    }

    /// The application spine of the expression: the head (the innermost
    /// function) and the arguments, outermost application last. A
    /// non-application returns itself with no arguments.
    pub fn spine(&self) -> (&CoreExpr, Vec<&CoreExpr>) {
        let mut head = self;
        let mut args: Vec<&CoreExpr> = Vec::new();
        while let CoreExpr::App(f, x) = head {
            args.push(x);
            head = f;
        }
        args.reverse();
        (head, args)
    }
}

/// A fully elaborated program: top-level bindings (one mutually
/// recursive namespace) and the entry-point name, if any.
#[derive(Debug, Clone, Default)]
pub struct CoreProgram {
    pub binds: Vec<(String, CoreExpr)>,
    pub main: Option<String>,
}

impl CoreProgram {
    pub fn lookup(&self, name: &str) -> Option<&CoreExpr> {
        self.binds.iter().find(|(n, _)| n == name).map(|(_, e)| e)
    }

    /// Check the "no placeholders remain" invariant; returns the names
    /// of offending bindings (empty = converted).
    pub fn verify_converted(&self) -> Vec<&str> {
        self.binds
            .iter()
            .filter(|(_, e)| e.first_placeholder().is_some())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Bindings as a map view (names are unique after elaboration).
    pub fn as_map(&self) -> HashMap<&str, &CoreExpr> {
        self.binds.iter().map(|(n, e)| (n.as_str(), e)).collect()
    }

    /// Total IR nodes across all bindings (telemetry size counter).
    pub fn node_count(&self) -> u64 {
        self.binds.iter().map(|(_, e)| e.node_count()).sum()
    }
}

/// Compact pretty-printer for debugging and driver `--dump-core`.
/// Depth-limited: beyond the cap it prints `…` rather than recursing.
pub fn pretty(e: &CoreExpr) -> String {
    let mut out = String::new();
    pretty_rec(e, 0, &mut out);
    out
}

const PRETTY_MAX_DEPTH: usize = 64;

fn pretty_rec(e: &CoreExpr, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    if depth > PRETTY_MAX_DEPTH {
        out.push('…');
        return;
    }
    match e {
        CoreExpr::Var(n) => out.push_str(n),
        CoreExpr::Lit(l) => {
            let _ = write!(out, "{l}");
        }
        CoreExpr::App(f, x) => {
            out.push('(');
            pretty_rec(f, depth + 1, out);
            out.push(' ');
            pretty_rec(x, depth + 1, out);
            out.push(')');
        }
        CoreExpr::Lam(p, b) => {
            let _ = write!(out, "(\\{p} -> ");
            pretty_rec(b, depth + 1, out);
            out.push(')');
        }
        CoreExpr::LetRec(bs, b) => {
            out.push_str("(letrec {");
            for (i, (n, v)) in bs.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                let _ = write!(out, "{n} = ");
                pretty_rec(v, depth + 1, out);
            }
            out.push_str("} in ");
            pretty_rec(b, depth + 1, out);
            out.push(')');
        }
        CoreExpr::If(c, t, f) => {
            out.push_str("(if ");
            pretty_rec(c, depth + 1, out);
            out.push_str(" then ");
            pretty_rec(t, depth + 1, out);
            out.push_str(" else ");
            pretty_rec(f, depth + 1, out);
            out.push(')');
        }
        CoreExpr::Tuple(xs) => {
            out.push('(');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pretty_rec(x, depth + 1, out);
            }
            out.push(')');
        }
        CoreExpr::Proj(i, b) => {
            let _ = write!(out, "#{i} ");
            pretty_rec(b, depth + 1, out);
        }
        CoreExpr::Con { name, .. } => out.push_str(name),
        CoreExpr::Case(scrut, arms) => {
            out.push_str("(case ");
            pretty_rec(scrut, depth + 1, out);
            out.push_str(" of {");
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                match &arm.con {
                    Some((name, _)) => {
                        out.push_str(name);
                        for b in &arm.binders {
                            let _ = write!(out, " {b}");
                        }
                    }
                    None => {
                        out.push_str(arm.binders.first().map(String::as_str).unwrap_or("_"));
                    }
                }
                out.push_str(" -> ");
                pretty_rec(&arm.body, depth + 1, out);
            }
            out.push_str("})");
        }
        CoreExpr::Placeholder(id) => {
            let _ = write!(out, "<ph{id}>");
        }
        CoreExpr::Fail(msg) => {
            let _ = write!(out, "<fail: {msg}>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apps_and_lams_builders() {
        let e = CoreExpr::lams(
            vec!["x".to_string(), "y".to_string()],
            CoreExpr::apps(
                CoreExpr::Var("f".into()),
                vec![CoreExpr::Var("x".into()), CoreExpr::Var("y".into())],
            ),
        );
        assert_eq!(pretty(&e), "(\\x -> (\\y -> ((f x) y)))");
    }

    #[test]
    fn placeholder_detection() {
        let e = CoreExpr::app(CoreExpr::Var("f".into()), CoreExpr::Placeholder(3));
        assert_eq!(e.first_placeholder(), Some(3));
        let prog = CoreProgram {
            binds: vec![
                ("a".into(), e),
                ("b".into(), CoreExpr::Lit(Literal::Int(1))),
            ],
            main: None,
        };
        assert_eq!(prog.verify_converted(), vec!["a"]);
    }

    #[test]
    fn node_count_counts_every_node() {
        // (\x -> ((f x) y)) = Lam + App + App + Var f + Var x + Var y = 6
        let e = CoreExpr::lams(
            vec!["x".to_string()],
            CoreExpr::apps(
                CoreExpr::Var("f".into()),
                vec![CoreExpr::Var("x".into()), CoreExpr::Var("y".into())],
            ),
        );
        assert_eq!(e.node_count(), 6);
        let prog = CoreProgram {
            binds: vec![
                ("a".into(), e),
                ("b".into(), CoreExpr::Lit(Literal::Int(1))),
            ],
            main: None,
        };
        assert_eq!(prog.node_count(), 7);
    }

    #[test]
    fn spine_unwinds_applications() {
        let e = CoreExpr::apps(
            CoreExpr::Var("f".into()),
            vec![CoreExpr::Var("x".into()), CoreExpr::Var("y".into())],
        );
        let (head, args) = e.spine();
        assert_eq!(head, &CoreExpr::Var("f".into()));
        assert_eq!(
            args,
            vec![&CoreExpr::Var("x".into()), &CoreExpr::Var("y".into())]
        );
        let atom = CoreExpr::Lit(Literal::Int(1));
        assert_eq!(atom.spine(), (&atom, vec![]));
    }

    #[test]
    fn table_roundtrip() {
        let mut t = PlaceholderTable::new();
        let id = t.alloc(PlaceholderKind::RecCall {
            name: "go".into(),
            span: Span::DUMMY,
        });
        assert!(matches!(
            t.get(id),
            Some(PlaceholderKind::RecCall { name, .. }) if name == "go"
        ));
    }
}
