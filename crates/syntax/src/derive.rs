//! `deriving (Eq, Ord)` — mechanical instance generation.
//!
//! Runs at the end of parsing so every consumer of [`Program`] (the
//! driver, test utilities, benches) sees derived instances exactly as
//! if the user had written them by hand. This is the translation of
//! Peterson & Jones (PLDI 1993): a derived instance is an ordinary
//! dictionary whose methods are built from the data declaration's
//! shape, with the per-parameter dictionaries threaded through the
//! instance context (`instance (Eq a, ...) => Eq (T a ...)`).
//!
//! The generated method bodies use only `case`, `if`, constructor
//! literals, and the class methods themselves — no prelude helpers —
//! so derived code works even under `--no-prelude` as long as the
//! classes are declared. Generated binders are `$`-prefixed (the lexer
//! cannot produce `$` in identifiers) so they can never capture or
//! shadow user names, and every inner `case` enumerates all
//! constructors, so derived matches are always exhaustive.
//!
//! * Derived `eq` compares tags via a nested case; same-tag arms
//!   compare fields left to right (`if eq f g then <rest> else False`,
//!   last field bare). Nullary constructors compare `True`.
//! * Derived `lte`/`lt` order constructors by declaration index (the
//!   tag), then lexicographically by fields: `if lt f g then True else
//!   if eq f g then <rest> else False`, last field `lte`/`lt`. The
//!   field-level `eq` comes from `Ord`'s `Eq` superclass dictionary.

use crate::ast::*;
use crate::diag::{Diagnostics, Stage};
use crate::span::Span;

/// Append one generated instance per `deriving` entry of each data
/// declaration. Unknown or repeated classes produce `E0212`
/// diagnostics instead of instances.
pub fn derive_instances(prog: &mut Program, diags: &mut Diagnostics) {
    let mut derived = Vec::new();
    for data in &prog.datas {
        let mut seen: Vec<&str> = Vec::new();
        for (class, cspan) in &data.deriving {
            if seen.contains(&class.as_str()) {
                diags.error(
                    Stage::Parser,
                    "E0212",
                    format!(
                        "class `{class}` appears more than once in the deriving clause for `{}`",
                        data.name
                    ),
                    *cspan,
                );
                continue;
            }
            seen.push(class);
            match class.as_str() {
                "Eq" => derived.push(derive_eq(data, *cspan)),
                "Ord" => derived.push(derive_ord(data, *cspan)),
                _ => {
                    diags.error(
                        Stage::Parser,
                        "E0212",
                        format!(
                            "cannot derive `{class}` for `{}`; only `Eq` and `Ord` are derivable",
                            data.name
                        ),
                        *cspan,
                    );
                }
            }
        }
    }
    prog.instances.extend(derived);
}

/// `T a b` as a type expression (the instance head).
fn head_type(data: &DataDecl, s: Span) -> TypeExpr {
    let mut t = TypeExpr::Con(data.name.clone(), s);
    for p in &data.params {
        t = TypeExpr::App(Box::new(t), Box::new(TypeExpr::Var(p.clone(), s)), s);
    }
    t
}

/// `(C a, C b, ...)` — one predicate per type parameter.
fn param_context(class: &str, data: &DataDecl, s: Span) -> Vec<PredExpr> {
    data.params
        .iter()
        .map(|p| PredExpr {
            class: class.to_string(),
            ty: TypeExpr::Var(p.clone(), s),
            span: s,
        })
        .collect()
}

fn var(n: impl Into<String>, s: Span) -> Expr {
    Expr::Var(n.into(), s)
}

fn tru(s: Span) -> Expr {
    Expr::Con("True".into(), s)
}

fn fls(s: Span) -> Expr {
    Expr::Con("False".into(), s)
}

/// `m a b` for a binary method `m`.
fn app2(m: &str, a: Expr, b: Expr, s: Span) -> Expr {
    Expr::App(
        Box::new(Expr::App(Box::new(var(m, s)), Box::new(a), s)),
        Box::new(b),
        s,
    )
}

fn iff(c: Expr, t: Expr, e: Expr, s: Span) -> Expr {
    Expr::If(Box::new(c), Box::new(t), Box::new(e), s)
}

fn lam2(x: &str, y: &str, body: Expr, s: Span) -> Expr {
    Expr::Lam(
        x.into(),
        Box::new(Expr::Lam(y.into(), Box::new(body), s)),
        s,
    )
}

/// `$f0 $f1 ...` binders for a constructor's fields.
fn field_binders(prefix: &str, n: usize, s: Span) -> Vec<(String, Span)> {
    (0..n).map(|i| (format!("${prefix}{i}"), s)).collect()
}

/// `_ _ ...` — wildcard binders for arms that ignore their fields.
fn wildcards(n: usize, s: Span) -> Vec<(String, Span)> {
    (0..n).map(|_| ("_".to_string(), s)).collect()
}

fn con_pattern(name: &str, binders: Vec<(String, Span)>, s: Span) -> Pattern {
    Pattern::Con {
        name: name.to_string(),
        binders,
        span: s,
    }
}

/// Field-wise equality: `if eq $f0 $g0 then ... else False`, last
/// field bare `eq $fn $gn`; nullary constructors are equal.
fn eq_chain(n: usize, s: Span) -> Expr {
    if n == 0 {
        return tru(s);
    }
    let mut acc = app2(
        "eq",
        var(format!("$f{}", n - 1), s),
        var(format!("$g{}", n - 1), s),
        s,
    );
    for i in (0..n - 1).rev() {
        acc = iff(
            app2("eq", var(format!("$f{i}"), s), var(format!("$g{i}"), s), s),
            acc,
            fls(s),
            s,
        );
    }
    acc
}

/// Lexicographic field comparison for same-tag values:
/// `if lt f g then True else if eq f g then <rest> else False`, with
/// the last field decided by `lte` (non-strict) or `lt` (strict).
fn ord_chain(n: usize, strict: bool, s: Span) -> Expr {
    if n == 0 {
        return if strict { fls(s) } else { tru(s) };
    }
    let last_m = if strict { "lt" } else { "lte" };
    let mut acc = app2(
        last_m,
        var(format!("$f{}", n - 1), s),
        var(format!("$g{}", n - 1), s),
        s,
    );
    for k in (0..n - 1).rev() {
        let f = var(format!("$f{k}"), s);
        let g = var(format!("$g{k}"), s);
        acc = iff(
            app2("lt", f.clone(), g.clone(), s),
            tru(s),
            iff(app2("eq", f, g, s), acc, fls(s), s),
            s,
        );
    }
    acc
}

fn derive_eq(data: &DataDecl, s: Span) -> InstanceDecl {
    let outer_arms: Vec<CaseArm> = data
        .constructors
        .iter()
        .map(|c| {
            let n = c.fields.len();
            let inner_arms: Vec<CaseArm> = data
                .constructors
                .iter()
                .map(|c2| {
                    let (binders, body) = if c2.name == c.name {
                        (field_binders("g", n, s), eq_chain(n, s))
                    } else {
                        (wildcards(c2.fields.len(), s), fls(s))
                    };
                    CaseArm {
                        pattern: con_pattern(&c2.name, binders, s),
                        body,
                        span: s,
                    }
                })
                .collect();
            CaseArm {
                pattern: con_pattern(&c.name, field_binders("f", n, s), s),
                body: Expr::Case(Box::new(var("$r", s)), inner_arms, s),
                span: s,
            }
        })
        .collect();
    let eq_body = lam2(
        "$l",
        "$r",
        Expr::Case(Box::new(var("$l", s)), outer_arms, s),
        s,
    );
    let neq_body = lam2(
        "$l",
        "$r",
        iff(app2("eq", var("$l", s), var("$r", s), s), fls(s), tru(s), s),
        s,
    );
    InstanceDecl {
        context: param_context("Eq", data, s),
        class: "Eq".into(),
        head: head_type(data, s),
        methods: vec![
            Binding {
                name: "eq".into(),
                expr: eq_body,
                span: s,
            },
            Binding {
                name: "neq".into(),
                expr: neq_body,
                span: s,
            },
        ],
        span: s,
    }
}

fn derive_ord(data: &DataDecl, s: Span) -> InstanceDecl {
    let method = |strict: bool| -> Expr {
        let outer_arms: Vec<CaseArm> = data
            .constructors
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let n = c.fields.len();
                let inner_arms: Vec<CaseArm> = data
                    .constructors
                    .iter()
                    .enumerate()
                    .map(|(j, c2)| {
                        let (binders, body) = if j == i {
                            (field_binders("g", n, s), ord_chain(n, strict, s))
                        } else if i < j {
                            // Earlier tag: strictly less than any later tag.
                            (wildcards(c2.fields.len(), s), tru(s))
                        } else {
                            (wildcards(c2.fields.len(), s), fls(s))
                        };
                        CaseArm {
                            pattern: con_pattern(&c2.name, binders, s),
                            body,
                            span: s,
                        }
                    })
                    .collect();
                CaseArm {
                    pattern: con_pattern(&c.name, field_binders("f", n, s), s),
                    body: Expr::Case(Box::new(var("$r", s)), inner_arms, s),
                    span: s,
                }
            })
            .collect();
        lam2(
            "$l",
            "$r",
            Expr::Case(Box::new(var("$l", s)), outer_arms, s),
            s,
        )
    };
    InstanceDecl {
        context: param_context("Ord", data, s),
        class: "Ord".into(),
        head: head_type(data, s),
        methods: vec![
            Binding {
                name: "lte".into(),
                expr: method(false),
                span: s,
            },
            Binding {
                name: "lt".into(),
                expr: method(true),
                span: s,
            },
        ],
        span: s,
    }
}
