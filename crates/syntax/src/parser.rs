//! A recovering recursive-descent parser.
//!
//! Design rules, in order of importance:
//!
//! 1. **Never panic, never hang.** All recursion is guarded by an
//!    explicit nesting budget ([`ParseOptions::max_depth`]), so a
//!    source file of ten thousand `(` produces a diagnostic instead of
//!    a stack overflow. Every recovery loop consumes at least one token,
//!    so parsing always terminates.
//! 2. **Recover and accumulate.** A broken top-level declaration is
//!    skipped to the next synchronization point (`;`, `class`,
//!    `instance`, or a closing brace) and parsing continues, so one
//!    typo does not hide every later error.
//! 3. **Blame precisely.** Diagnostics carry the span of the offending
//!    token and say what was expected.

use crate::ast::*;
use crate::diag::{Diagnostics, Stage};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Knobs for parser robustness limits.
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Maximum grammar recursion depth (expression/type nesting).
    pub max_depth: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { max_depth: 400 }
    }
}

/// Marker meaning "a diagnostic was already recorded; unwind to the
/// nearest recovery point".
struct Broken;

type PResult<T> = Result<T, Broken>;

enum SigOrBinding {
    Sig(SigDecl),
    Binding(Binding),
}

/// Counters describing one parse: how often the parser had to abandon
/// a construct and skip to a recovery point. Always on — one integer
/// add on an already-cold error path — and surfaced through the
/// metrics registry by the driver (`tc-syntax` stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Error-recovery skips: syncs to the next top-level declaration
    /// or to the next `;` / `}` inside a class or instance body.
    pub recoveries: u64,
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    depth: usize,
    opts: ParseOptions,
    diags: Diagnostics,
    stats: ParseStats,
}

/// Parse a token stream (as produced by [`crate::lex`]) into a
/// [`Program`], accumulating diagnostics. The returned program contains
/// every declaration that could be salvaged.
pub fn parse_program(tokens: &[Token], opts: ParseOptions) -> (Program, Diagnostics) {
    let (prog, diags, _) = parse_program_with(tokens, opts);
    (prog, diags)
}

/// Like [`parse_program`], additionally reporting [`ParseStats`] (the
/// recovery-event count the metrics registry records).
pub fn parse_program_with(
    tokens: &[Token],
    opts: ParseOptions,
) -> (Program, Diagnostics, ParseStats) {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        depth: 0,
        opts,
        diags: Diagnostics::new(),
        stats: ParseStats::default(),
    };
    let mut prog = p.program();
    let mut diags = p.diags;
    // Desugar `deriving` clauses into ordinary instances here so every
    // consumer of the parsed program sees them without extra plumbing.
    crate::derive::derive_instances(&mut prog, &mut diags);
    (prog, diags, p.stats)
}

impl<'t> Parser<'t> {
    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        self.toks
            .get(self.pos)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        self.toks
            .get(self.pos + off)
            .map(|t| &t.kind)
            .unwrap_or(&TokenKind::Eof)
    }

    fn span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .or_else(|| self.toks.last().map(|t| t.span))
            .unwrap_or(Span::DUMMY)
    }

    fn bump(&mut self) -> Token {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .unwrap_or_else(|| Token::new(TokenKind::Eof, Span::DUMMY));
        if !matches!(t.kind, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err_here(&mut self, code: &'static str, msg: String) -> Broken {
        let span = self.span();
        self.diags.error(Stage::Parser, code, msg, span);
        Broken
    }

    fn expect(&mut self, kind: TokenKind, ctx: &str) -> PResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            let found = self.peek().describe();
            Err(self.err_here(
                "E0201",
                format!("expected {} {ctx}, found {found}", kind.describe()),
            ))
        }
    }

    fn expect_ident(&mut self, ctx: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(self.err_here(
                "E0202",
                format!("expected identifier {ctx}, found {}", other.describe()),
            )),
        }
    }

    fn expect_upper(&mut self, ctx: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::UpperIdent(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(self.err_here(
                "E0203",
                format!(
                    "expected capitalized name {ctx}, found {}",
                    other.describe()
                ),
            )),
        }
    }

    /// Run `f` one grammar level deeper; errors out (with a single
    /// diagnostic) when the nesting budget is exhausted. The depth is
    /// restored on all paths, including `Err` returns from `f`.
    fn with_depth<T>(&mut self, f: impl FnOnce(&mut Self) -> PResult<T>) -> PResult<T> {
        if self.depth >= self.opts.max_depth {
            let span = self.span();
            self.diags.error(
                Stage::Parser,
                "E0207",
                format!(
                    "nesting deeper than the limit of {} levels; simplify the expression",
                    self.opts.max_depth
                ),
                span,
            );
            return Err(Broken);
        }
        self.depth += 1;
        let r = f(self);
        self.depth = self.depth.saturating_sub(1);
        r
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Skip tokens until a plausible top-level start or separator.
    /// Always makes progress.
    fn sync_topdecl(&mut self) {
        self.stats.recoveries = self.stats.recoveries.saturating_add(1);
        loop {
            match self.peek() {
                TokenKind::Eof | TokenKind::Class | TokenKind::Instance | TokenKind::Data => return,
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                // A lower identifier followed by `::` or `=` looks like
                // the start of the next declaration; stop before it.
                TokenKind::Ident(_)
                    if matches!(self.peek_at(1), TokenKind::DoubleColon | TokenKind::Equals) =>
                {
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skip tokens until `;` at bracket depth 0 (consumed), or a
    /// closing brace / Eof (not consumed). Always makes progress when
    /// anything is skipped.
    fn sync_in_braces(&mut self) {
        self.stats.recoveries = self.stats.recoveries.saturating_add(1);
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace if depth == 0 => return,
                TokenKind::LBrace | TokenKind::LParen => {
                    depth = depth.saturating_add(1);
                    self.bump();
                }
                TokenKind::RBrace | TokenKind::RParen => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut prog = Program::default();
        loop {
            // Tolerate stray semicolons between declarations.
            while self.eat(&TokenKind::Semi) {}
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Class => match self.class_decl() {
                    Ok(c) => prog.classes.push(c),
                    Err(Broken) => self.sync_topdecl(),
                },
                TokenKind::Instance => match self.instance_decl() {
                    Ok(i) => prog.instances.push(i),
                    Err(Broken) => self.sync_topdecl(),
                },
                TokenKind::Data => match self.data_decl() {
                    Ok(d) => prog.datas.push(d),
                    Err(Broken) => self.sync_topdecl(),
                },
                TokenKind::Ident(_) => match self.sig_or_binding() {
                    Ok(SigOrBinding::Sig(s)) => prog.sigs.push(s),
                    Ok(SigOrBinding::Binding(b)) => prog.bindings.push(b),
                    Err(Broken) => self.sync_topdecl(),
                },
                other => {
                    let msg = format!(
                        "expected a class, instance, signature, or binding at top level, found {}",
                        other.describe()
                    );
                    let _ = self.err_here("E0204", msg);
                    self.sync_topdecl();
                }
            }
        }
        prog
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.span();
        self.expect(TokenKind::Class, "to start a class declaration")?;
        let supers = if self.context_ahead() {
            let ctx = self.context()?;
            self.expect(TokenKind::FatArrow, "after superclass context")?;
            ctx
        } else {
            Vec::new()
        };
        let (name, _) = self.expect_upper("as the class name")?;
        let (tyvar, _) = self.expect_ident("as the class type variable")?;
        self.expect(TokenKind::Where, "after the class head")?;
        self.expect(TokenKind::LBrace, "to open the class body")?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.method_sig() {
                Ok(m) => {
                    methods.push(m);
                    if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::RBrace) {
                        let _ = self.err_here(
                            "E0205",
                            "expected `;` or `}` after a method signature".to_string(),
                        );
                        self.sync_in_braces();
                    }
                }
                Err(Broken) => self.sync_in_braces(),
            }
        }
        let end = self.span();
        self.expect(TokenKind::RBrace, "to close the class body")?;
        Ok(ClassDecl {
            supers,
            name,
            tyvar,
            methods,
            span: start.merge(end),
        })
    }

    fn method_sig(&mut self) -> PResult<MethodSig> {
        let (name, nspan) = self.expect_ident("as a method name")?;
        self.expect(TokenKind::DoubleColon, "after the method name")?;
        let qt = self.qual_type()?;
        let span = nspan.merge(qt.span);
        Ok(MethodSig {
            name,
            qual_ty: qt,
            span,
        })
    }

    fn instance_decl(&mut self) -> PResult<InstanceDecl> {
        let start = self.span();
        self.expect(TokenKind::Instance, "to start an instance declaration")?;
        let context = if self.context_ahead() {
            let ctx = self.context()?;
            self.expect(TokenKind::FatArrow, "after instance context")?;
            ctx
        } else {
            Vec::new()
        };
        let (class, _) = self.expect_upper("as the instance's class name")?;
        let head = self.atype()?;
        self.expect(TokenKind::Where, "after the instance head")?;
        self.expect(TokenKind::LBrace, "to open the instance body")?;
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.binding() {
                Ok(b) => {
                    methods.push(b);
                    if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::RBrace) {
                        let _ = self.err_here(
                            "E0205",
                            "expected `;` or `}` after an instance method".to_string(),
                        );
                        self.sync_in_braces();
                    }
                }
                Err(Broken) => self.sync_in_braces(),
            }
        }
        let end = self.span();
        self.expect(TokenKind::RBrace, "to close the instance body")?;
        Ok(InstanceDecl {
            context,
            class,
            head,
            methods,
            span: start.merge(end),
        })
    }

    /// `data T a b = C1 t ... | C2 ... [deriving (Eq, Ord)] ;`
    fn data_decl(&mut self) -> PResult<DataDecl> {
        let start = self.span();
        self.expect(TokenKind::Data, "to start a data declaration")?;
        let (name, _) = self.expect_upper("as the data type name")?;
        let mut params = Vec::new();
        while let TokenKind::Ident(p) = self.peek().clone() {
            self.bump();
            params.push(p);
        }
        self.expect(TokenKind::Equals, "after the data type head")?;
        let mut constructors = vec![self.con_decl()?];
        while self.eat(&TokenKind::Pipe) {
            constructors.push(self.con_decl()?);
        }
        let deriving = if self.eat(&TokenKind::Deriving) {
            self.deriving_clause()?
        } else {
            Vec::new()
        };
        let end = self.span();
        if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::Eof) {
            let _ = self.err_here("E0205", "expected `;` after a data declaration".to_string());
            self.sync_topdecl();
        }
        Ok(DataDecl {
            name,
            params,
            constructors,
            deriving,
            span: start.merge(end),
        })
    }

    /// One constructor alternative: `Node a (Tree a) (Tree a)`.
    fn con_decl(&mut self) -> PResult<ConDecl> {
        let (name, nspan) = self.expect_upper("as a data constructor name")?;
        let mut fields = Vec::new();
        let mut span = nspan;
        while self.type_atom_ahead() {
            let f = self.atype()?;
            span = span.merge(f.span());
            fields.push(f);
        }
        Ok(ConDecl { name, fields, span })
    }

    /// `deriving (Eq, Ord)` or `deriving Eq` (the keyword is consumed).
    fn deriving_clause(&mut self) -> PResult<Vec<(String, Span)>> {
        if self.eat(&TokenKind::LParen) {
            let mut classes = Vec::new();
            if !self.at(&TokenKind::RParen) {
                loop {
                    classes.push(self.expect_upper("as a class name in `deriving`")?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "to close the deriving clause")?;
            Ok(classes)
        } else {
            Ok(vec![
                self.expect_upper("as the class name after `deriving`")?
            ])
        }
    }

    fn sig_or_binding(&mut self) -> PResult<SigOrBinding> {
        if matches!(self.peek_at(1), TokenKind::DoubleColon) {
            let (name, nspan) = self.expect_ident("as a signature name")?;
            self.bump(); // `::`
            let qt = self.qual_type()?;
            if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::Eof) {
                let _ = self.err_here("E0205", "expected `;` after a type signature".to_string());
                self.sync_topdecl();
            }
            let span = nspan.merge(qt.span);
            Ok(SigOrBinding::Sig(SigDecl {
                name,
                qual_ty: qt,
                span,
            }))
        } else {
            let b = self.binding()?;
            if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::Eof) {
                let _ = self.err_here("E0205", "expected `;` after a binding".to_string());
                self.sync_topdecl();
            }
            Ok(SigOrBinding::Binding(b))
        }
    }

    /// `name param* = expr` — parameters desugar to nested lambdas.
    fn binding(&mut self) -> PResult<Binding> {
        let (name, nspan) = self.expect_ident("as a binding name")?;
        let mut params: Vec<(String, Span)> = Vec::new();
        while let TokenKind::Ident(p) = self.peek().clone() {
            let t = self.bump();
            params.push((p, t.span));
        }
        self.expect(TokenKind::Equals, "after the binding head")?;
        let body = self.expr()?;
        let span = nspan.merge(body.span());
        let expr = params.into_iter().rev().fold(body, |acc, (p, pspan)| {
            let s = pspan.merge(acc.span());
            Expr::Lam(p, Box::new(acc), s)
        });
        Ok(Binding { name, expr, span })
    }

    // ------------------------------------------------------------------
    // Types and contexts
    // ------------------------------------------------------------------

    /// Decide whether a class context (`C t =>` or `(C t, ...) =>`)
    /// starts at the cursor, by scanning ahead for a `=>` at paren
    /// depth zero before any token that cannot occur inside a context.
    /// The scan consumes one token per iteration and stops at `Eof`,
    /// so it always terminates.
    fn context_ahead(&self) -> bool {
        let mut depth = 0usize;
        let mut off = 0usize;
        loop {
            match self.peek_at(off) {
                TokenKind::FatArrow if depth == 0 => return true,
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                // An arrow at depth zero means we are inside a plain
                // type (`Int -> Bool`), not a context. Inside parens it
                // may be a function type *constrained by* the context
                // (`C (a -> a) => ...`), so keep scanning.
                TokenKind::Arrow if depth == 0 => return false,
                TokenKind::Equals
                | TokenKind::Semi
                | TokenKind::Where
                | TokenKind::LBrace
                | TokenKind::RBrace
                | TokenKind::Eof => return false,
                _ => {}
            }
            off += 1;
        }
    }

    fn context(&mut self) -> PResult<Vec<PredExpr>> {
        if self.at(&TokenKind::LParen) {
            self.bump();
            let mut preds = Vec::new();
            if !self.at(&TokenKind::RParen) {
                loop {
                    preds.push(self.pred()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "to close the context")?;
            Ok(preds)
        } else {
            Ok(vec![self.pred()?])
        }
    }

    fn pred(&mut self) -> PResult<PredExpr> {
        let (class, cspan) = self.expect_upper("as a class name in a context")?;
        let ty = self.atype()?;
        let span = cspan.merge(ty.span());
        Ok(PredExpr { class, ty, span })
    }

    fn qual_type(&mut self) -> PResult<QualTypeExpr> {
        let start = self.span();
        let context = if self.context_ahead() {
            let ctx = self.context()?;
            self.expect(TokenKind::FatArrow, "after the context")?;
            ctx
        } else {
            Vec::new()
        };
        let ty = self.type_expr()?;
        let span = start.merge(ty.span());
        Ok(QualTypeExpr { context, ty, span })
    }

    fn type_expr(&mut self) -> PResult<TypeExpr> {
        self.with_depth(|p| {
            let lhs = p.btype()?;
            if p.eat(&TokenKind::Arrow) {
                let rhs = p.type_expr()?;
                let span = lhs.span().merge(rhs.span());
                Ok(TypeExpr::Fun(Box::new(lhs), Box::new(rhs), span))
            } else {
                Ok(lhs)
            }
        })
    }

    fn btype(&mut self) -> PResult<TypeExpr> {
        let mut acc = self.atype()?;
        while self.type_atom_ahead() {
            let arg = self.atype()?;
            let span = acc.span().merge(arg.span());
            acc = TypeExpr::App(Box::new(acc), Box::new(arg), span);
        }
        Ok(acc)
    }

    fn type_atom_ahead(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_) | TokenKind::UpperIdent(_) | TokenKind::LParen
        )
    }

    fn atype(&mut self) -> PResult<TypeExpr> {
        self.with_depth(|p| match p.peek().clone() {
            TokenKind::Ident(n) => {
                let t = p.bump();
                Ok(TypeExpr::Var(n, t.span))
            }
            TokenKind::UpperIdent(n) => {
                let t = p.bump();
                Ok(TypeExpr::Con(n, t.span))
            }
            TokenKind::LParen => {
                p.bump();
                let inner = p.type_expr()?;
                p.expect(TokenKind::RParen, "to close the type")?;
                Ok(inner)
            }
            other => Err(p.err_here(
                "E0206",
                format!("expected a type, found {}", other.describe()),
            )),
        })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.with_depth(|p| match p.peek().clone() {
            TokenKind::Backslash => {
                let start = p.span();
                p.bump();
                let mut params = Vec::new();
                while let TokenKind::Ident(n) = p.peek().clone() {
                    let t = p.bump();
                    params.push((n, t.span));
                }
                if params.is_empty() {
                    return Err(
                        p.err_here("E0208", "a lambda needs at least one parameter".to_string())
                    );
                }
                p.expect(TokenKind::Arrow, "after lambda parameters")?;
                let body = p.expr()?;
                let span = start.merge(body.span());
                Ok(params.into_iter().rev().fold(body, |acc, (n, pspan)| {
                    let s = pspan.merge(acc.span()).merge(span);
                    Expr::Lam(n, Box::new(acc), s)
                }))
            }
            TokenKind::Let => {
                let start = p.span();
                p.bump();
                let mut binds = Vec::new();
                if p.eat(&TokenKind::LBrace) {
                    while !p.at(&TokenKind::RBrace) && !p.at(&TokenKind::Eof) {
                        match p.binding() {
                            Ok(b) => {
                                binds.push(b);
                                if !p.eat(&TokenKind::Semi) && !p.at(&TokenKind::RBrace) {
                                    let _ = p.err_here(
                                        "E0205",
                                        "expected `;` or `}` after a let binding".to_string(),
                                    );
                                    p.sync_in_braces();
                                }
                            }
                            Err(Broken) => p.sync_in_braces(),
                        }
                    }
                    p.expect(TokenKind::RBrace, "to close the let bindings")?;
                } else {
                    binds.push(p.binding()?);
                }
                p.expect(TokenKind::In, "after let bindings")?;
                let body = p.expr()?;
                let span = start.merge(body.span());
                Ok(Expr::Let(binds, Box::new(body), span))
            }
            TokenKind::If => {
                let start = p.span();
                p.bump();
                let c = p.expr()?;
                p.expect(TokenKind::Then, "after the condition")?;
                let t = p.expr()?;
                p.expect(TokenKind::Else, "after the then-branch")?;
                let e = p.expr()?;
                let span = start.merge(e.span());
                Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e), span))
            }
            TokenKind::Case => {
                let start = p.span();
                p.bump();
                let scrut = p.expr()?;
                p.expect(TokenKind::Of, "after the case scrutinee")?;
                p.expect(TokenKind::LBrace, "to open the case alternatives")?;
                let mut arms = Vec::new();
                while !p.at(&TokenKind::RBrace) && !p.at(&TokenKind::Eof) {
                    match p.case_arm() {
                        Ok(a) => {
                            arms.push(a);
                            if !p.eat(&TokenKind::Semi) && !p.at(&TokenKind::RBrace) {
                                let _ = p.err_here(
                                    "E0205",
                                    "expected `;` or `}` after a case alternative".to_string(),
                                );
                                p.sync_in_braces();
                            }
                        }
                        Err(Broken) => p.sync_in_braces(),
                    }
                }
                let end = p.span();
                p.expect(TokenKind::RBrace, "to close the case alternatives")?;
                let span = start.merge(end);
                if arms.is_empty() {
                    p.diags.error(
                        Stage::Parser,
                        "E0210",
                        "a `case` expression needs at least one alternative",
                        span,
                    );
                    return Err(Broken);
                }
                Ok(Expr::Case(Box::new(scrut), arms, span))
            }
            _ => p.app_expr(),
        })
    }

    /// `pattern -> expr`.
    fn case_arm(&mut self) -> PResult<CaseArm> {
        let pat = self.pattern()?;
        self.expect(TokenKind::Arrow, "after the case pattern")?;
        let body = self.expr()?;
        let span = pat.span().merge(body.span());
        Ok(CaseArm {
            pattern: pat,
            body,
            span,
        })
    }

    /// A flat pattern: `C x y`, a variable, or `_`. Nested patterns are
    /// not in the grammar; constructor arguments must be plain binders.
    fn pattern(&mut self) -> PResult<Pattern> {
        match self.peek().clone() {
            TokenKind::UpperIdent(name) => {
                let t = self.bump();
                let mut span = t.span;
                let mut binders = Vec::new();
                while let TokenKind::Ident(b) = self.peek().clone() {
                    let bt = self.bump();
                    span = span.merge(bt.span);
                    binders.push((b, bt.span));
                }
                Ok(Pattern::Con {
                    name,
                    binders,
                    span,
                })
            }
            TokenKind::Ident(n) => {
                let t = self.bump();
                Ok(Pattern::Var(n, t.span))
            }
            other => Err(self.err_here(
                "E0211",
                format!(
                    "expected a pattern (a constructor or a variable), found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn app_expr(&mut self) -> PResult<Expr> {
        let mut acc = self.atom()?;
        while self.atom_ahead() {
            let arg = self.atom()?;
            let span = acc.span().merge(arg.span());
            acc = Expr::App(Box::new(acc), Box::new(arg), span);
        }
        Ok(acc)
    }

    fn atom_ahead(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_) | TokenKind::UpperIdent(_) | TokenKind::Int(_) | TokenKind::LParen
        )
    }

    fn atom(&mut self) -> PResult<Expr> {
        self.with_depth(|p| match p.peek().clone() {
            TokenKind::Ident(n) => {
                let t = p.bump();
                Ok(Expr::Var(n, t.span))
            }
            TokenKind::UpperIdent(n) => {
                let t = p.bump();
                Ok(Expr::Con(n, t.span))
            }
            TokenKind::Int(v) => {
                let t = p.bump();
                Ok(Expr::IntLit(v, t.span))
            }
            TokenKind::LParen => {
                p.bump();
                let inner = p.expr()?;
                p.expect(TokenKind::RParen, "to close the expression")?;
                Ok(inner)
            }
            other => Err(p.err_here(
                "E0209",
                format!("expected an expression, found {}", other.describe()),
            )),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Program, Diagnostics) {
        let (toks, lex_diags) = lex(src);
        assert!(!lex_diags.has_errors(), "lex errors in test fixture");
        parse_program(&toks, ParseOptions::default())
    }

    fn parse_lossy(src: &str) -> (Program, Diagnostics) {
        let (toks, mut diags) = lex(src);
        let (prog, pdiags) = parse_program(&toks, ParseOptions::default());
        diags.extend(pdiags);
        (prog, diags)
    }

    #[test]
    fn parse_stats_count_recoveries() {
        let (toks, _) = lex("f = 1;\ng = 2;");
        let (_, diags, stats) = parse_program_with(&toks, ParseOptions::default());
        assert!(!diags.has_errors());
        assert_eq!(stats.recoveries, 0, "clean input never recovers");

        // Two broken declarations -> at least two recovery skips.
        let (toks, _) = lex("f = = 1;\nclass where;\ng = 2;");
        let (prog, diags, stats) = parse_program_with(&toks, ParseOptions::default());
        assert!(diags.has_errors());
        assert!(stats.recoveries >= 2, "{stats:?}");
        // Recovery still salvages the good declaration.
        assert!(prog.bindings.iter().any(|b| b.name == "g"));
    }

    #[test]
    fn context_may_constrain_function_types() {
        // The arrow inside the parenthesized constraint type must not
        // stop the context lookahead.
        let (prog, diags) = parse("instance C (a -> a) => C (List a) where { m = \\x -> x; };");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.instances.len(), 1);
        assert_eq!(prog.instances[0].context.len(), 1);
        // A plain parenthesized function type is still not a context.
        let (prog2, diags2) = parse("f :: (Int -> Int) -> Int;\nf g = g 1;");
        assert!(!diags2.has_errors(), "{:?}", diags2.into_vec());
        assert!(prog2.sigs[0].qual_ty.context.is_empty());
    }

    #[test]
    fn class_and_instance() {
        let (prog, diags) = parse(
            "class Eq a where { eq :: a -> a -> Bool };\n\
             instance Eq Int where { eq = primEqInt };\n\
             instance Eq a => Eq (List a) where { eq = eqList eq };",
        );
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.classes.len(), 1);
        assert_eq!(prog.instances.len(), 2);
        assert_eq!(prog.instances[1].context.len(), 1);
    }

    #[test]
    fn superclass_context() {
        let (prog, diags) = parse("class Eq a => Ord a where { lte :: a -> a -> Bool };");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.classes[0].supers.len(), 1);
        assert_eq!(prog.classes[0].supers[0].class, "Eq");
    }

    #[test]
    fn binding_with_params_desugars() {
        let (prog, diags) = parse("compose f g x = f (g x);");
        assert!(!diags.has_errors());
        assert!(matches!(prog.bindings[0].expr, Expr::Lam(..)));
    }

    #[test]
    fn signature_with_context() {
        let (prog, diags) = parse("member :: Eq a => a -> List a -> Bool;");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.sigs[0].qual_ty.context.len(), 1);
    }

    #[test]
    fn recovery_keeps_later_decls() {
        let (prog, diags) = parse_lossy("broken = = ;\ngood = 42;");
        assert!(diags.has_errors());
        assert_eq!(prog.bindings.len(), 1);
        assert_eq!(prog.bindings[0].name, "good");
    }

    #[test]
    fn multiple_errors_accumulate() {
        let (_, diags) = parse_lossy("a = = ;\nb = = ;\nc = = ;");
        assert!(diags.error_count() >= 3, "{:?}", diags.into_vec());
    }

    #[test]
    fn deep_nesting_is_a_diagnostic_not_a_crash() {
        let mut src = String::from("x = ");
        src.push_str(&"(".repeat(50_000));
        src.push('1');
        src.push_str(&")".repeat(50_000));
        src.push(';');
        let (_, diags) = parse_lossy(&src);
        assert!(diags.has_errors());
        assert!(diags.iter().any(|d| d.code == "E0207"), "depth diagnostic");
    }

    #[test]
    fn empty_input_is_fine() {
        let (prog, diags) = parse("");
        assert!(prog.is_empty());
        assert!(diags.is_empty());
    }

    #[test]
    fn truncated_input_terminates() {
        let (_, diags) = parse_lossy("class Eq a where { eq ::");
        assert!(diags.has_errors());
    }

    #[test]
    fn data_decl_with_deriving() {
        let (prog, diags) =
            parse("data Tree a = Leaf | Node a (Tree a) (Tree a) deriving (Eq, Ord);");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.datas.len(), 1);
        let d = &prog.datas[0];
        assert_eq!(d.name, "Tree");
        assert_eq!(d.params, vec!["a".to_string()]);
        assert_eq!(d.constructors.len(), 2);
        assert_eq!(d.constructors[0].name, "Leaf");
        assert_eq!(d.constructors[0].fields.len(), 0);
        assert_eq!(d.constructors[1].fields.len(), 3);
        // deriving desugared into two instances: Eq then Ord.
        assert_eq!(prog.instances.len(), 2);
        assert_eq!(prog.instances[0].class, "Eq");
        assert_eq!(prog.instances[1].class, "Ord");
        assert_eq!(prog.instances[0].context.len(), 1);
        let names: Vec<_> = prog.instances[0]
            .methods
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["eq", "neq"]);
        let names: Vec<_> = prog.instances[1]
            .methods
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["lte", "lt"]);
    }

    #[test]
    fn deriving_single_class_without_parens() {
        let (prog, diags) = parse("data Color = Red | Green | Blue deriving Eq;");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.instances.len(), 1);
        assert_eq!(prog.instances[0].class, "Eq");
        assert!(prog.instances[0].context.is_empty());
    }

    #[test]
    fn deriving_unknown_class_is_e0212() {
        let (prog, diags) = parse_lossy("data T = MkT deriving (Show);");
        assert!(
            diags.iter().any(|d| d.code == "E0212"),
            "{:?}",
            diags.into_vec()
        );
        assert!(prog.instances.is_empty());
    }

    #[test]
    fn deriving_repeated_class_is_e0212() {
        let (prog, diags) = parse_lossy("data T = MkT deriving (Eq, Eq);");
        assert!(diags.iter().any(|d| d.code == "E0212"));
        assert_eq!(prog.instances.len(), 1, "only one Eq instance generated");
    }

    #[test]
    #[allow(clippy::panic)]
    fn case_expression_parses() {
        let (prog, diags) = parse(
            "data Maybe a = Nothing | Just a;\n\
             fromMaybe d m = case m of { Nothing -> d; Just x -> x };",
        );
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        let body = &prog.bindings[0].expr;
        // d and m desugar to lambdas around the case.
        let mut e = body;
        while let Expr::Lam(_, inner, _) = e {
            e = inner;
        }
        match e {
            Expr::Case(_, arms, _) => {
                assert_eq!(arms.len(), 2);
                assert!(
                    matches!(&arms[0].pattern, Pattern::Con { name, binders, .. }
                    if name == "Nothing" && binders.is_empty())
                );
                assert!(
                    matches!(&arms[1].pattern, Pattern::Con { name, binders, .. }
                    if name == "Just" && binders.len() == 1)
                );
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::panic)]
    fn case_wildcard_and_var_patterns() {
        let (prog, diags) = parse("f x = case x of { True -> 1; _ -> 0 };");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        let mut e = &prog.bindings[0].expr;
        while let Expr::Lam(_, inner, _) = e {
            e = inner;
        }
        match e {
            Expr::Case(_, arms, _) => {
                assert!(arms[1].pattern.is_irrefutable());
                assert!(matches!(&arms[1].pattern, Pattern::Var(n, _) if n == "_"));
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn empty_case_is_e0210() {
        let (_, diags) = parse_lossy("f x = case x of { };");
        assert!(
            diags.iter().any(|d| d.code == "E0210"),
            "{:?}",
            diags.into_vec()
        );
    }

    #[test]
    fn bad_pattern_is_e0211() {
        let (_, diags) = parse_lossy("f x = case x of { 1 -> 2 };");
        assert!(
            diags.iter().any(|d| d.code == "E0211"),
            "{:?}",
            diags.into_vec()
        );
    }

    #[test]
    fn broken_case_arm_recovers() {
        let (prog, diags) = parse_lossy("f x = case x of { True -> ; False -> 0 };\ng = 1;");
        assert!(diags.has_errors());
        assert!(prog.bindings.iter().any(|b| b.name == "g"));
    }

    #[test]
    fn broken_data_decl_recovers() {
        let (prog, diags) = parse_lossy("data = Oops;\ngood = 42;");
        assert!(diags.has_errors());
        assert!(prog.bindings.iter().any(|b| b.name == "good"));
    }

    #[test]
    fn if_let_lambda() {
        let (prog, diags) = parse("f = \\x y -> if x then let z = y in z else 0;");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(prog.bindings.len(), 1);
    }
}
