//! Byte-offset source spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
///
/// Spans are cheap to copy and attached to every token, AST node, and
/// diagnostic so that errors discovered deep in the pipeline can still
/// point at the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// A span that points at nothing; used for synthesized nodes
    /// (prelude desugarings, compiler-generated bindings).
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`.
    /// Dummy spans are absorbed rather than dragging the result to 0.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Resolves byte offsets to 1-based line/column pairs.
///
/// Built once per source file; lookup is a binary search over line
/// starts, so rendering many diagnostics stays cheap.
#[derive(Debug, Clone)]
pub struct LineMap {
    line_starts: Vec<u32>,
    len: u32,
}

impl LineMap {
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                // Offsets into realistic sources fit u32; clamp otherwise.
                line_starts.push(u32::try_from(i + 1).unwrap_or(u32::MAX));
            }
        }
        LineMap {
            line_starts,
            len: u32::try_from(src.len()).unwrap_or(u32::MAX),
        }
    }

    /// 1-based (line, column) for a byte offset. Offsets past the end of
    /// the file clamp to the last position instead of panicking.
    pub fn location(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let line_start = self.line_starts.get(line_idx).copied().unwrap_or(0);
        (
            u32::try_from(line_idx)
                .unwrap_or(u32::MAX)
                .saturating_add(1),
            offset.saturating_sub(line_start).saturating_add(1),
        )
    }

    /// The full text of the (1-based) line containing `offset`, without
    /// its trailing newline. Used for diagnostic excerpts.
    pub fn line_text<'s>(&self, src: &'s str, offset: u32) -> &'s str {
        let offset = offset.min(self.len);
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let start = self.line_starts.get(line_idx).copied().unwrap_or(0) as usize;
        let end = self
            .line_starts
            .get(line_idx + 1)
            .map(|e| *e as usize)
            .unwrap_or(src.len());
        src.get(start..end).unwrap_or("").trim_end_matches('\n')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_dummy() {
        let a = Span::new(3, 7);
        assert_eq!(Span::DUMMY.merge(a), a);
        assert_eq!(a.merge(Span::DUMMY), a);
        assert_eq!(a.merge(Span::new(10, 12)), Span::new(3, 12));
    }

    #[test]
    fn line_map_locations() {
        let src = "ab\ncd\n";
        let lm = LineMap::new(src);
        assert_eq!(lm.location(0), (1, 1));
        assert_eq!(lm.location(1), (1, 2));
        assert_eq!(lm.location(3), (2, 1));
        assert_eq!(lm.location(100), (3, 1)); // clamped, no panic
        assert_eq!(lm.line_text(src, 4), "cd");
    }
}
