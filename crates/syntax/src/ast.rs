//! Abstract syntax for Mini-Haskell.
//!
//! The surface language is a small Haskell subset sufficient for the
//! programs in Peterson & Jones (PLDI 1993): `data` declarations (sums
//! and products, parameterized) with `deriving (Eq, Ord)`, class
//! declarations with superclasses, instance declarations with
//! contexts, top-level (mutually recursive) bindings with optional
//! type signatures, and an expression language of lambdas,
//! application, `let`, `if`, `case` over flat patterns, integer and
//! boolean literals. Lists are built from the prelude primitives
//! `nil` / `cons` / `null` / `head` / `tail`, and `case` can match
//! them through the builtin `Nil` / `Cons` constructor patterns.

use crate::span::Span;
use std::fmt;

/// A surface-level type expression, e.g. `Eq a => a -> List a -> Bool`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// Type variable (`a`).
    Var(String, Span),
    /// Type constructor (`Int`, `Bool`, `List`).
    Con(String, Span),
    /// Application (`List a`).
    App(Box<TypeExpr>, Box<TypeExpr>, Span),
    /// Function arrow (`a -> b`).
    Fun(Box<TypeExpr>, Box<TypeExpr>, Span),
}

impl TypeExpr {
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Var(_, s)
            | TypeExpr::Con(_, s)
            | TypeExpr::App(_, _, s)
            | TypeExpr::Fun(_, _, s) => *s,
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Var(n, _) => f.write_str(n),
            TypeExpr::Con(n, _) => f.write_str(n),
            TypeExpr::App(a, b, _) => write!(f, "{a} ({b})"),
            TypeExpr::Fun(a, b, _) => write!(f, "({a} -> {b})"),
        }
    }
}

/// A class predicate in source syntax: `Eq a`, `Ord (List b)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredExpr {
    pub class: String,
    pub ty: TypeExpr,
    pub span: Span,
}

/// A qualified type: `(Eq a, Ord b) => ...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualTypeExpr {
    pub context: Vec<PredExpr>,
    pub ty: TypeExpr,
    pub span: Span,
}

/// One constructor alternative of a `data` declaration:
/// `Leaf` or `Node a (Tree a) (Tree a)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConDecl {
    pub name: String,
    /// Field types, in declaration order.
    pub fields: Vec<TypeExpr>,
    pub span: Span,
}

/// `data T a b = C1 t ... | C2 ... deriving (Eq, Ord);`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDecl {
    pub name: String,
    /// Type parameters (`a`, `b`, ...).
    pub params: Vec<String>,
    /// Constructor alternatives; the declaration index is the
    /// constructor's tag (used for derived `Ord` ordering).
    pub constructors: Vec<ConDecl>,
    /// Classes named in the `deriving (...)` clause, with the span of
    /// each class name.
    pub deriving: Vec<(String, Span)>,
    pub span: Span,
}

/// A (flat) pattern in a `case` alternative. Nested patterns are not
/// part of the surface language: a constructor pattern binds plain
/// variables (or `_`) only.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `C x y` — constructor pattern with variable binders. A binder
    /// named `_` is a wildcard and binds nothing.
    Con {
        name: String,
        binders: Vec<(String, Span)>,
        span: Span,
    },
    /// `x` — irrefutable variable pattern (`_` is a wildcard).
    Var(String, Span),
}

impl Pattern {
    pub fn span(&self) -> Span {
        match self {
            Pattern::Con { span, .. } => *span,
            Pattern::Var(_, s) => *s,
        }
    }

    /// Is this an irrefutable (variable or wildcard) pattern?
    pub fn is_irrefutable(&self) -> bool {
        matches!(self, Pattern::Var(..))
    }
}

/// One `pattern -> expr` alternative of a `case` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    pub pattern: Pattern,
    pub body: Expr,
    pub span: Span,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable or method reference.
    Var(String, Span),
    /// Constructor reference (`True`, `False`, `Nil`).
    Con(String, Span),
    /// Integer literal.
    IntLit(i64, Span),
    /// Application `f x`.
    App(Box<Expr>, Box<Expr>, Span),
    /// Lambda `\x -> e` (multi-parameter lambdas are desugared).
    Lam(String, Box<Expr>, Span),
    /// `let { x = e1; ... } in e2`; bindings are mutually recursive.
    Let(Vec<Binding>, Box<Expr>, Span),
    /// `if c then t else e`.
    If(Box<Expr>, Box<Expr>, Box<Expr>, Span),
    /// `case e of { pat -> e; ... }`.
    Case(Box<Expr>, Vec<CaseArm>, Span),
    /// Placeholder produced by parser recovery. Type checks as a fresh
    /// variable so one syntax error does not cascade into dozens of
    /// bogus type errors; evaluation of it is an error.
    Hole(Span),
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::Var(_, s)
            | Expr::Con(_, s)
            | Expr::IntLit(_, s)
            | Expr::App(_, _, s)
            | Expr::Lam(_, _, s)
            | Expr::Let(_, _, s)
            | Expr::If(_, _, _, s)
            | Expr::Case(_, _, s)
            | Expr::Hole(s) => *s,
        }
    }
}

/// `name = expr` (with any parameters already desugared into lambdas).
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    pub name: String,
    pub expr: Expr,
    pub span: Span,
}

/// A method signature inside a class declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSig {
    pub name: String,
    pub qual_ty: QualTypeExpr,
    pub span: Span,
}

/// `class (Super a, ...) => C a where { m :: t; ... }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    pub supers: Vec<PredExpr>,
    pub name: String,
    pub tyvar: String,
    pub methods: Vec<MethodSig>,
    pub span: Span,
}

/// `instance (C a, ...) => C (T a ...) where { m = e; ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceDecl {
    pub context: Vec<PredExpr>,
    pub class: String,
    pub head: TypeExpr,
    pub methods: Vec<Binding>,
    pub span: Span,
}

/// A top-level type signature `name :: qualtype`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigDecl {
    pub name: String,
    pub qual_ty: QualTypeExpr,
    pub span: Span,
}

/// A whole source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub datas: Vec<DataDecl>,
    pub classes: Vec<ClassDecl>,
    pub instances: Vec<InstanceDecl>,
    pub sigs: Vec<SigDecl>,
    pub bindings: Vec<Binding>,
}

impl Program {
    pub fn is_empty(&self) -> bool {
        self.datas.is_empty()
            && self.classes.is_empty()
            && self.instances.is_empty()
            && self.sigs.is_empty()
            && self.bindings.is_empty()
    }

    /// Append another program (used to splice the prelude in front of
    /// user code).
    pub fn extend(&mut self, other: Program) {
        self.datas.extend(other.datas);
        self.classes.extend(other.classes);
        self.instances.extend(other.instances);
        self.sigs.extend(other.sigs);
        self.bindings.extend(other.bindings);
    }
}
