//! Tokens produced by the lexer.

use crate::span::Span;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Lower-case identifier: variables, method names.
    Ident(String),
    /// Upper-case identifier: type constructors, class names, `True`/`False`.
    UpperIdent(String),
    /// Integer literal. Stored as i64; overflow is a lexer diagnostic.
    Int(i64),

    // Keywords.
    Class,
    Instance,
    Where,
    Let,
    In,
    If,
    Then,
    Else,
    Data,
    Case,
    Of,
    Deriving,

    // Punctuation / operators.
    Backslash,
    Arrow,       // ->
    FatArrow,    // =>
    DoubleColon, // ::
    Equals,
    Semi,
    Comma,
    Pipe, // |
    LParen,
    RParen,
    LBrace,
    RBrace,

    /// End of input. Always the last token; makes the parser's
    /// lookahead total without `Option` juggling.
    Eof,

    /// A token the lexer could not understand. Carries the raw text so
    /// the parser can mention it while recovering.
    Error(String),
}

impl TokenKind {
    /// Human-readable name used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::UpperIdent(s) => format!("constructor `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Class => "`class`".into(),
            TokenKind::Instance => "`instance`".into(),
            TokenKind::Where => "`where`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::In => "`in`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Then => "`then`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::Data => "`data`".into(),
            TokenKind::Case => "`case`".into(),
            TokenKind::Of => "`of`".into(),
            TokenKind::Deriving => "`deriving`".into(),
            TokenKind::Backslash => "`\\`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::FatArrow => "`=>`".into(),
            TokenKind::DoubleColon => "`::`".into(),
            TokenKind::Equals => "`=`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Eof => "end of input".into(),
            TokenKind::Error(s) => format!("unrecognized text `{s}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
