//! A recovering lexer.
//!
//! The lexer never fails outright: unknown characters become
//! [`TokenKind::Error`] tokens plus diagnostics, runs of adjacent junk
//! are coalesced into a single diagnostic, oversized integer literals
//! are clamped with a diagnostic, and an unterminated block comment is
//! reported once rather than cascading. The token stream always ends
//! with a single `Eof` token.

use crate::diag::{Diagnostics, Stage};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Hard cap on the number of tokens a single source file may produce.
/// This bounds lexer memory on adversarial inputs (e.g. gigabytes of
/// `;`); the cap is generous for real programs.
pub const MAX_TOKENS: usize = 1_000_000;

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

/// Lex `src` into a token vector (always `Eof`-terminated) plus any
/// diagnostics. Lexing never panics and always terminates: the cursor
/// advances on every iteration, including over junk bytes.
pub fn lex(src: &str) -> (Vec<Token>, Diagnostics) {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        diags: Diagnostics::new(),
    };
    lx.run();
    (lx.tokens, lx.diags)
}

impl<'s> Lexer<'s> {
    fn run(&mut self) {
        while self.pos < self.bytes.len() {
            if self.tokens.len() >= MAX_TOKENS {
                self.diags.error(
                    Stage::Lexer,
                    "E0105",
                    format!("input produced more than {MAX_TOKENS} tokens; lexing stopped"),
                    self.span_here(0),
                );
                break;
            }
            self.step();
        }
        let end = u32::try_from(self.src.len()).unwrap_or(u32::MAX);
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::new(end, end)));
    }

    fn span_here(&self, len: usize) -> Span {
        let s = u32::try_from(self.pos).unwrap_or(u32::MAX);
        let e = u32::try_from(self.pos + len).unwrap_or(u32::MAX);
        Span::new(s, e)
    }

    fn peek(&self, off: usize) -> u8 {
        self.bytes.get(self.pos + off).copied().unwrap_or(0)
    }

    fn step(&mut self) {
        let c = self.peek(0);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.pos += 1;
            }
            b'-' if self.peek(1) == b'-' => self.line_comment(),
            b'{' if self.peek(1) == b'-' => self.block_comment(),
            b'\\' => self.simple(TokenKind::Backslash, 1),
            b'-' if self.peek(1) == b'>' => self.simple(TokenKind::Arrow, 2),
            b'=' if self.peek(1) == b'>' => self.simple(TokenKind::FatArrow, 2),
            b':' if self.peek(1) == b':' => self.simple(TokenKind::DoubleColon, 2),
            b'=' => self.simple(TokenKind::Equals, 1),
            b';' => self.simple(TokenKind::Semi, 1),
            b',' => self.simple(TokenKind::Comma, 1),
            b'|' => self.simple(TokenKind::Pipe, 1),
            b'(' => self.simple(TokenKind::LParen, 1),
            b')' => self.simple(TokenKind::RParen, 1),
            b'{' => self.simple(TokenKind::LBrace, 1),
            b'}' => self.simple(TokenKind::RBrace, 1),
            b'0'..=b'9' => self.number(false),
            // Negative literals: only when `-` is directly glued to a digit.
            b'-' if self.peek(1).is_ascii_digit() => self.number(true),
            b'a'..=b'z' | b'_' => self.ident(false),
            b'A'..=b'Z' => self.ident(true),
            _ => self.junk(),
        }
    }

    fn simple(&mut self, kind: TokenKind, len: usize) {
        let span = self.span_here(len);
        self.tokens.push(Token::new(kind, span));
        self.pos += len;
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        let open = self.span_here(2);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'{' && self.peek(1) == b'-' {
                // Nesting depth is bounded by input length; saturate anyway.
                depth = depth.saturating_add(1);
                self.pos += 2;
            } else if self.peek(0) == b'-' && self.peek(1) == b'}' {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        if depth > 0 {
            self.diags
                .error(Stage::Lexer, "E0102", "unterminated block comment", open);
        }
    }

    fn number(&mut self, negative: bool) {
        let start = self.pos;
        if negative {
            self.pos += 1;
        }
        while self.peek(0).is_ascii_digit() {
            self.pos += 1;
        }
        let text = self.src.get(start..self.pos).unwrap_or("");
        let span = Span::new(
            u32::try_from(start).unwrap_or(u32::MAX),
            u32::try_from(self.pos).unwrap_or(u32::MAX),
        );
        match text.parse::<i64>() {
            Ok(n) => self.tokens.push(Token::new(TokenKind::Int(n), span)),
            Err(_) => {
                self.diags.error(
                    Stage::Lexer,
                    "E0103",
                    format!("integer literal `{text}` does not fit in 64 bits"),
                    span,
                );
                // Recover with a clamped value so parsing can continue.
                let clamped = if negative { i64::MIN } else { i64::MAX };
                self.tokens.push(Token::new(TokenKind::Int(clamped), span));
            }
        }
    }

    fn ident(&mut self, upper: bool) {
        let start = self.pos;
        while matches!(self.peek(0), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'\'') {
            self.pos += 1;
        }
        let text = self.src.get(start..self.pos).unwrap_or("");
        let span = Span::new(
            u32::try_from(start).unwrap_or(u32::MAX),
            u32::try_from(self.pos).unwrap_or(u32::MAX),
        );
        let kind = if upper {
            TokenKind::UpperIdent(text.to_string())
        } else {
            match text {
                "class" => TokenKind::Class,
                "instance" => TokenKind::Instance,
                "where" => TokenKind::Where,
                "let" => TokenKind::Let,
                "in" => TokenKind::In,
                "if" => TokenKind::If,
                "then" => TokenKind::Then,
                "else" => TokenKind::Else,
                "data" => TokenKind::Data,
                "case" => TokenKind::Case,
                "of" => TokenKind::Of,
                "deriving" => TokenKind::Deriving,
                _ => TokenKind::Ident(text.to_string()),
            }
        };
        self.tokens.push(Token::new(kind, span));
    }

    /// Consume a maximal run of unrecognizable bytes as one `Error`
    /// token with one diagnostic, advancing on UTF-8 boundaries so the
    /// excerpt slicing stays valid.
    fn junk(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.is_token_start() {
            // Advance one whole character, not one byte.
            let rest = self.src.get(self.pos..).unwrap_or("");
            let step = rest.chars().next().map(char::len_utf8).unwrap_or(1);
            self.pos += step;
        }
        let span = Span::new(
            u32::try_from(start).unwrap_or(u32::MAX),
            u32::try_from(self.pos).unwrap_or(u32::MAX),
        );
        let text = self
            .src
            .get(start..self.pos)
            .unwrap_or("<bytes>")
            .to_string();
        let preview: String = text.chars().take(12).collect();
        self.diags.error(
            Stage::Lexer,
            "E0101",
            format!("unrecognized character(s) `{preview}`"),
            span,
        );
        self.tokens.push(Token::new(TokenKind::Error(text), span));
    }

    fn is_token_start(&self) -> bool {
        matches!(
            self.peek(0),
            b' ' | b'\t'
                | b'\r'
                | b'\n'
                | b'\\'
                | b'='
                | b':'
                | b';'
                | b','
                | b'|'
                | b'('
                | b')'
                | b'{'
                | b'}'
                | b'-'
                | b'0'..=b'9'
                | b'a'..=b'z'
                | b'A'..=b'Z'
                | b'_'
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("class Eq a where { eq :: a -> a -> Bool }");
        assert_eq!(ks[0], TokenKind::Class);
        assert_eq!(ks[1], TokenKind::UpperIdent("Eq".into()));
        assert!(ks.contains(&TokenKind::DoubleColon));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn junk_is_coalesced() {
        let (toks, diags) = lex("let x = @@@@@ ;");
        assert_eq!(diags.len(), 1, "one diagnostic for a junk run");
        assert!(toks.iter().any(|t| matches!(t.kind, TokenKind::Error(_))));
    }

    #[test]
    fn overflow_literal_recovers() {
        let (toks, diags) = lex("99999999999999999999999999");
        assert!(diags.has_errors());
        assert!(matches!(toks[0].kind, TokenKind::Int(i64::MAX)));
    }

    #[test]
    fn unterminated_block_comment() {
        let (_, diags) = lex("{- never closed");
        assert!(diags.has_errors());
    }

    #[test]
    fn negative_literal() {
        assert_eq!(kinds("-42")[0], TokenKind::Int(-42));
    }

    #[test]
    fn utf8_junk_no_panic() {
        let (_, diags) = lex("let x = λ™∞ ;");
        assert!(diags.has_errors());
    }
}
