//! `tc-syntax`: the front end of the Mini-Haskell pipeline.
//!
//! This crate owns the pieces every later stage depends on:
//!
//! * [`Span`] — byte ranges into the original source, attached to every
//!   token, AST node, and diagnostic.
//! * [`Diagnostic`] / [`Diagnostics`] — the shared error model. Every stage
//!   of the pipeline reports problems through this type instead of
//!   panicking; the driver renders them with source excerpts.
//! * The lexer ([`lex`]) and parser ([`parse_program`]), both of which
//!   *recover* from malformed input and accumulate multiple diagnostics
//!   per run rather than aborting on the first error.
//!
//! No function in this crate panics on user input: unknown characters,
//! unterminated constructs, deep nesting, and truncated files all come
//! back as structured diagnostics.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod ast;
pub mod derive;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::*;
pub use diag::{Diagnostic, Diagnostics, LintLevel, Severity, Stage};
pub use lexer::lex;
pub use parser::{parse_program, parse_program_with, ParseOptions, ParseStats};
pub use span::Span;
pub use token::{Token, TokenKind};
