//! The shared diagnostic model.
//!
//! Every pipeline stage — lexer, parser, class-environment construction,
//! type inference, dictionary conversion, evaluation — reports problems
//! as [`Diagnostic`] values collected in a [`Diagnostics`] bag. Stages
//! never panic on user input and never stop at the first error when
//! recovery is possible; instead they accumulate diagnostics and let the
//! driver decide how to present them.

use crate::span::{LineMap, Span};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Something suspicious but not fatal (e.g. shadowed binding).
    Warning,
    /// The program is rejected.
    Error,
}

/// Which pipeline stage produced a diagnostic. Useful both for tests
/// (asserting an adversarial program dies in the stage we expect) and
/// for users reading mixed output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    Lexer,
    Parser,
    Classes,
    Coherence,
    TypeCheck,
    DictConv,
    Lint,
    Eval,
    Driver,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Lexer => "lex",
            Stage::Parser => "parse",
            Stage::Classes => "classes",
            Stage::Coherence => "coherence",
            Stage::TypeCheck => "typecheck",
            Stage::DictConv => "dict",
            Stage::Lint => "lint",
            Stage::Eval => "eval",
            Stage::Driver => "driver",
        };
        f.write_str(s)
    }
}

/// How a lint rule's findings are reported. Shared between the lint
/// pass itself and any configuration surface (driver options, CLI
/// flags): `Allow` suppresses the rule entirely, `Warn` reports a
/// [`Severity::Warning`], `Deny` escalates to [`Severity::Error`] so
/// the finding fails compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LintLevel {
    /// The rule is disabled; findings are not even computed.
    Allow,
    /// Findings are reported as warnings (the default everywhere).
    #[default]
    Warn,
    /// Findings are reported as errors and fail the compilation.
    Deny,
}

impl LintLevel {
    /// The severity a finding at this level is reported with, or
    /// `None` when the rule is allowed (silenced).
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Warn => Some(Severity::Warning),
            LintLevel::Deny => Some(Severity::Error),
        }
    }

    /// Parse a CLI-style level name (`allow` / `warn` / `deny`).
    pub fn parse(s: &str) -> Option<LintLevel> {
        match s {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        })
    }
}

/// A single structured diagnostic with a primary span and optional
/// secondary notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub stage: Stage,
    /// Stable machine-readable code, e.g. `E0003`.
    pub code: &'static str,
    pub message: String,
    pub span: Span,
    /// Extra context lines: (optional span, note text).
    pub notes: Vec<(Option<Span>, String)>,
}

impl Diagnostic {
    pub fn error(stage: Stage, code: &'static str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            stage,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    pub fn warning(
        stage: Stage,
        code: &'static str,
        message: impl Into<String>,
        span: Span,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            stage,
            code,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, span: Option<Span>, note: impl Into<String>) -> Self {
        self.notes.push((span, note.into()));
        self
    }

    /// Render with a source excerpt and caret line, `rustc`-style but
    /// deliberately minimal.
    pub fn render(&self, src: &str, line_map: &LineMap) -> String {
        use fmt::Write as _;
        let (line, col) = line_map.location(self.span.start);
        let mut out = String::new();
        let _ = write!(
            out,
            "{}[{}/{}]: {} (line {}, col {})",
            match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.stage,
            self.code,
            self.message,
            line,
            col
        );
        if !self.span.is_dummy() {
            let text = line_map.line_text(src, self.span.start);
            if !text.is_empty() {
                let caret_col = (col as usize).saturating_sub(1);
                let caret_len = (self.span.len() as usize)
                    .clamp(1, text.len().saturating_sub(caret_col).max(1));
                let _ = write!(
                    out,
                    "\n  | {}\n  | {}{}",
                    text,
                    " ".repeat(caret_col.min(text.len())),
                    "^".repeat(caret_len)
                );
            }
        }
        for (nspan, note) in &self.notes {
            let _ = write!(out, "\n  note: {note}");
            if let Some(s) = nspan {
                let (nl, nc) = line_map.location(s.start);
                let _ = write!(out, " (line {nl}, col {nc})");
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}]: {} @ {}",
            match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.stage,
            self.code,
            self.message,
            self.span
        )
    }
}

/// An append-only bag of diagnostics with a hard cap.
///
/// The cap is a robustness measure in its own right: a pathological
/// input that produces one diagnostic per byte must not balloon memory.
/// Once the cap is hit, further diagnostics are counted but dropped,
/// and a final "too many errors" marker is appended.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
    cap: usize,
    dropped: usize,
}

impl Default for Diagnostics {
    fn default() -> Self {
        Self::with_cap(Self::DEFAULT_CAP)
    }
}

impl Diagnostics {
    pub const DEFAULT_CAP: usize = 200;

    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_cap(cap: usize) -> Self {
        Diagnostics {
            items: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    pub fn push(&mut self, d: Diagnostic) {
        if self.items.len() < self.cap {
            self.items.push(d);
        } else {
            self.dropped += 1;
        }
    }

    pub fn extend(&mut self, other: Diagnostics) {
        self.dropped += other.dropped;
        for d in other.items {
            self.push(d);
        }
    }

    pub fn error(&mut self, stage: Stage, code: &'static str, msg: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(stage, code, msg, span));
    }

    pub fn warning(
        &mut self,
        stage: Stage,
        code: &'static str,
        msg: impl Into<String>,
        span: Span,
    ) {
        self.push(Diagnostic::warning(stage, code, msg, span));
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error) || self.dropped > 0
    }

    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
            + self.dropped
    }

    /// Number of warnings currently held (dropped diagnostics are
    /// counted as errors, never as warnings).
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.dropped == 0
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Number of diagnostics dropped because the cap was reached.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// Render all diagnostics against the source, one block per
    /// diagnostic, plus a trailer if any were dropped.
    pub fn render_all(&self, src: &str) -> String {
        let lm = LineMap::new(src);
        let mut blocks: Vec<String> = self.items.iter().map(|d| d.render(src, &lm)).collect();
        if self.dropped > 0 {
            blocks.push(Self::dropped_trailer(self.dropped));
        }
        blocks.join("\n")
    }

    /// Like [`render_all`](Self::render_all), but in source order:
    /// diagnostics are sorted by span (errors before warnings at the
    /// same location), and a severity summary line is appended. Stages
    /// run one after another, so the raw accumulation order interleaves
    /// a binding's type error with a lint warning pages away; sorting
    /// lets a reader walk the file top to bottom.
    pub fn render_all_sorted(&self, src: &str) -> String {
        let lm = LineMap::new(src);
        let mut sorted: Vec<&Diagnostic> = self.items.iter().collect();
        sorted.sort_by_key(|d| {
            (
                d.span.start,
                d.span.end,
                std::cmp::Reverse(d.severity), // Error sorts before Warning
            )
        });
        let mut blocks: Vec<String> = sorted.iter().map(|d| d.render(src, &lm)).collect();
        if self.dropped > 0 {
            blocks.push(Self::dropped_trailer(self.dropped));
        }
        if !blocks.is_empty() {
            blocks.push(format!(
                "{} error(s), {} warning(s) emitted",
                self.error_count(),
                self.warning_count()
            ));
        }
        blocks.join("\n")
    }

    fn dropped_trailer(dropped: usize) -> String {
        format!(
            "error[driver/E0000]: too many diagnostics; {dropped} further diagnostic(s) suppressed"
        )
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_drops_but_counts() {
        let mut bag = Diagnostics::with_cap(2);
        for i in 0..5 {
            bag.error(Stage::Lexer, "E9999", format!("d{i}"), Span::DUMMY);
        }
        assert_eq!(bag.len(), 2);
        assert_eq!(bag.dropped(), 3);
        assert_eq!(bag.error_count(), 5);
        assert!(bag.has_errors());
    }

    #[test]
    fn sorted_render_orders_by_span_and_labels_severity() {
        let src = "line one\nline two\n";
        let mut bag = Diagnostics::new();
        bag.warning(Stage::Lint, "L0004", "later warning", Span::new(10, 13));
        bag.error(Stage::TypeCheck, "E0405", "early error", Span::new(1, 4));
        let r = bag.render_all_sorted(src);
        let e = r.find("E0405").expect("error rendered");
        let w = r.find("L0004").expect("warning rendered");
        assert!(e < w, "sorted by span start: {r}");
        assert!(r.contains("1 error(s), 1 warning(s) emitted"), "{r}");
        assert_eq!(bag.warning_count(), 1);
    }

    #[test]
    fn lint_level_severity_mapping() {
        assert_eq!(LintLevel::Allow.severity(), None);
        assert_eq!(LintLevel::Warn.severity(), Some(Severity::Warning));
        assert_eq!(LintLevel::Deny.severity(), Some(Severity::Error));
        assert_eq!(LintLevel::parse("deny"), Some(LintLevel::Deny));
        assert_eq!(LintLevel::parse("nope"), None);
        assert_eq!(LintLevel::default(), LintLevel::Warn);
        assert_eq!(LintLevel::Warn.to_string(), "warn");
    }

    #[test]
    fn render_includes_caret() {
        let src = "let x = @;";
        let lm = LineMap::new(src);
        let d = Diagnostic::error(Stage::Lexer, "E0001", "unknown character", Span::new(8, 9));
        let r = d.render(src, &lm);
        assert!(r.contains("unknown character"), "{r}");
        assert!(r.contains('^'), "{r}");
    }
}
