//! `tc-serve`: a fault-isolated compilation server over the pipeline.
//!
//! The driver compiles one program per process invocation; this crate
//! turns it into a **batch/server front end**: a stream of JSONL
//! requests (one JSON object per line, one program per request) is
//! compiled and evaluated on a fixed pool of worker threads, and each
//! request gets **exactly one** JSONL response — whatever happens
//! inside the pipeline. Four robustness mechanisms back that promise:
//!
//! - **Panic isolation.** Every request runs under `catch_unwind`
//!   ([`tc_driver::resilience::isolated`]); a panic — real bug or
//!   injected fault — becomes an `{"error":"internal"}` response and
//!   the worker thread lives on.
//! - **Deadlines.** `deadline_ms` arms a [`CancelToken`] at admission
//!   (queue wait counts against the budget). The token is polled at
//!   stage boundaries, inside the resolver's search loop, and inside
//!   the evaluator's fuel loop, so a deadline trips mid-stage and the
//!   request answers `{"error":"deadline"}` instead of hogging a
//!   worker.
//! - **Load shedding and graceful degradation.** Admission is a
//!   fixed-capacity queue: a full queue answers
//!   `{"error":"overloaded","retry_after_ms":...}` immediately. Under
//!   partial load the server degrades before it sheds — at ≥50%
//!   occupancy optional observability (explain traces, goal spans,
//!   profiling) is dropped; at ≥75% the resolution memo table is
//!   capped so memory stays bounded.
//! - **Deterministic fault injection.** A [`FaultPlan`] makes workers
//!   panic / stall / exhaust budgets at named pipeline sites, keyed by
//!   the request sequence number — the chaos suite replays the exact
//!   same failures every run.
//! - **Flight recorder with tail sampling.** With
//!   [`RecorderConfig::enabled`], every request records its pipeline
//!   events (stage boundaries, resolver goals, evaluator checkpoints,
//!   injected faults, cancellations) into a per-worker fixed-capacity
//!   [`EventLog`] ring under `trace_id = seq`. Most rings are simply
//!   overwritten; a request that turns out to be *anomalous* — errored,
//!   shed, deadline-exceeded, fault-injected, slower than
//!   [`RecorderConfig::latency_threshold_us`], or picked by 1-in-N head
//!   sampling — has its events extracted and **retained** after the
//!   fact (tail-based sampling: the keep/drop decision happens when the
//!   outcome is known, so anomalies are never lost to an up-front coin
//!   flip). `{"cmd":"dump"}` drains the retained set as one JSON line.
//!
//! # Request protocol
//!
//! One JSON object per line. Fields (all optional except `program`):
//!
//! | field         | type   | meaning                                        |
//! |---------------|--------|------------------------------------------------|
//! | `id`          | num/str| echoed on the response (default: line number)  |
//! | `cmd`         | str    | `"run"` (default), `"check"`, `"stats"`, `"dump"`, `"health"`, or `"watch"` (socket only) |
//! | `interval_ms` | num    | `watch` tick period (default 1000, min 10)     |
//! | `program`     | str    | Mini-Haskell source (required for `run`/`check`)|
//! | `deadline_ms` | num    | per-request deadline, admission to answer      |
//! | `prelude`     | bool   | splice the prelude (default true)              |
//! | `memoize`     | bool   | tabled resolution (default true)               |
//! | `share`       | bool   | dictionary sharing (default true)              |
//! | `lint`        | bool   | also run the lint pass (default false for `run`, true for `check`) |
//! | `check_laws`  | bool   | also run the Eq/Ord law harness (default false)|
//! | `explain`     | bool   | include the resolution explain-trace           |
//! | `stats`       | bool   | include pipeline stats in the response         |
//! | `fuel`, `max_depth`, `max_allocs` | num | evaluator budget overrides    |
//!
//! Responses are single-line JSON with `"status":"ok"` (outcome
//! `value` / `compile-errors` / `no-main` / `eval-error`) or
//! `"status":"error"` (`internal` / `deadline` / `overloaded` /
//! `bad-request`). Responses stream in **completion order**; match
//! them to requests by `id`.
//!
//! `{"cmd":"check"}` is the static-analysis product surface: the full
//! pipeline runs *without evaluating `main`* — parse, class env,
//! coherence (overlap / orphan / cycle, `L0008`–`L0010`), elaboration,
//! lint, and (with `check_laws`) the class-law harness (`L0011`) —
//! and the response carries every diagnostic as a structured object
//! (`code`, `severity`, `message`, byte span) plus an overall
//! `"ok"` verdict. Deadlines, shedding, and degradation apply exactly
//! as for `run`; the law harness reuses the request's warm resolve
//! cache, so `check_laws` costs one cheap extra elaboration, not a
//! cold resolution sweep.
//!
//! `{"cmd":"stats"}` answers with the fleet metrics snapshot: every
//! worker keeps a private [`MetricsRegistry`] (no contention on the
//! hot path beyond one mutex lock per request) and the snapshot merges
//! them all. The response also carries `uptime_ms`, per-worker request
//! counts (`workers`), and a `latency` object with p50/p90/p99 per
//! outcome class (`ok` / `internal` / `deadline` / `overloaded`),
//! interpolated from the log2-bucketed latency histograms.
//!
//! `{"cmd":"dump"}` is a barrier: admission waits for every in-flight
//! request to finish, then answers with the retained traces
//! (`traces`, sorted by `trace_id`) and clears the store. Because the
//! barrier drains the pipeline first, a dump after a deterministic
//! fault run always sees the same retained set.
//!
//! # Transports and the telemetry plane
//!
//! The same protocol runs over two transports sharing one admission
//! queue and worker pool:
//!
//! - **stdin** ([`serve`]): newline-delimited JSON in, completion-order
//!   responses out; the session ends at EOF.
//! - **socket** ([`serve_socket`]): a std-only [`std::net::TcpListener`]
//!   accepting many concurrent clients. Each connection gets a reader
//!   thread (admission) and a writer thread (responses routed back by
//!   connection — ids never cross connections), so a slow client never
//!   blocks another. Frames are lines; a frame split across TCP reads
//!   is reassembled by the buffered reader.
//!
//! Three telemetry surfaces ride on top:
//!
//! - `{"cmd":"health"}` — a cheap readiness/liveness probe: queue
//!   depth vs capacity, worker liveness, shed rate over the last
//!   [`SHED_WINDOW_SECS`] seconds, and the retained-trace backlog. It
//!   bypasses admission entirely (no queue push, no gate), so it
//!   answers in O(1) even when the queue is saturated. Available on
//!   both transports.
//! - `{"cmd":"watch","interval_ms":N}` — a streaming subscription
//!   (socket only): after an ack, the server pushes one tick line per
//!   interval carrying the fleet-snapshot *delta* since the previous
//!   tick ([`tc_trace::MetricsSnapshot::delta`] — counters as
//!   differences, histograms via differenced buckets) plus
//!   server-computed qps and p50/p99 per outcome class, queue
//!   occupancy, cache hit rate, and shed/fault counts. The first tick
//!   deltas from zero, so a consumer summing every tick holds the
//!   absolute fleet snapshot. The subscription ends when the client
//!   disconnects; the server reaps the ticker without wedging.
//! - **Access log** ([`ServeConfig::access_log`]): one JSONL record
//!   per request on the completion path — id, seq, outcome class,
//!   latency, trace-retention decision, worker — so every request
//!   leaves a greppable trail even when its flight-recorder trace is
//!   not retained. Shed and bad-request lines are logged too (with a
//!   null worker).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::panic))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

use tc_driver::resilience::{self, FaultPlan};
use tc_driver::{
    check_source, lint_source, run_checked, Check, Options, Outcome, RunResult, CANCELLED_CODE,
};
use tc_eval::EvalError;
use tc_syntax::Severity;
use tc_trace::events::{
    outcome_name, OUTCOME_BAD_REQUEST, OUTCOME_DEADLINE, OUTCOME_INTERNAL, OUTCOME_OK,
    OUTCOME_OVERLOADED,
};
use tc_trace::{
    json, CancelToken, CounterId, Event, EventKind, EventLog, HistogramId, JsonWriter,
    MetricsRegistry, MetricsSnapshot,
};

pub mod socket;

pub use socket::{serve_socket, SocketHandle};

/// Memo-table cap applied under heavy load (≥75% queue occupancy).
const DEGRADED_CACHE_CAPACITY: usize = 256;

/// Length of the health probe's sliding shed-rate window, seconds.
pub const SHED_WINDOW_SECS: u64 = 10;

/// A shared line-oriented sink for the per-request access log. Cloned
/// into every worker and admission thread; records are whole lines
/// written under one lock so they never interleave. Sink errors are
/// swallowed — observability must never take down serving.
#[derive(Clone)]
pub struct AccessLog {
    sink: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AccessLog(..)")
    }
}

impl AccessLog {
    /// Log to any line sink (a file, a Vec in tests, ...).
    pub fn to_writer(w: Box<dyn Write + Send>) -> AccessLog {
        AccessLog {
            sink: Arc::new(Mutex::new(w)),
        }
    }

    /// Open the conventional CLI spelling: a file path, or `-` for
    /// stderr (stdout carries responses).
    pub fn create(path: &str) -> std::io::Result<AccessLog> {
        if path == "-" {
            return Ok(AccessLog::to_writer(Box::new(std::io::stderr())));
        }
        Ok(AccessLog::to_writer(Box::new(std::fs::File::create(path)?)))
    }

    fn record(&self, line: &str) {
        let mut sink = lock_unpoisoned(&self.sink);
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
}

/// One JSONL access-log record: the completion-path summary of a
/// request. `worker` is `None` for requests that never reached the
/// pool (shed, bad-request); `retained` is the tail-sampler's reason
/// when the trace was kept.
fn access_line(
    id: &ReqId,
    seq: u64,
    t_ms: u64,
    outcome: u64,
    latency_us: u64,
    retained: Option<&'static str>,
    worker: Option<usize>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    write_id(&mut w, id);
    w.field_u64("seq", seq);
    w.field_u64("t_ms", t_ms);
    w.field_str("outcome", outcome_name(outcome));
    w.field_u64("latency_us", latency_us);
    match retained {
        Some(reason) => w.field_str("retained", reason),
        None => w.field_null("retained"),
    }
    match worker {
        Some(i) => w.field_u64("worker", i as u64),
        None => w.field_null("worker"),
    }
    w.end_object();
    w.finish()
}

/// A fixed ring of one-second buckets backing the health probe's
/// shed-rate-over-the-last-window report. Recording and reading are
/// O([`SHED_WINDOW_SECS`]) with one short lock — safe to touch from
/// every admission thread and from `health` even under overload.
struct ShedWindow {
    slots: Mutex<[ShedSlot; SHED_WINDOW_SECS as usize]>,
}

#[derive(Clone, Copy, Default)]
struct ShedSlot {
    /// Which second this slot currently holds counts for.
    epoch_sec: u64,
    admitted: u64,
    shed: u64,
}

impl ShedWindow {
    fn new() -> ShedWindow {
        ShedWindow {
            slots: Mutex::new([ShedSlot::default(); SHED_WINDOW_SECS as usize]),
        }
    }

    /// Count one admission decision in the current second's bucket.
    fn record(&self, now_sec: u64, shed: bool) {
        let mut slots = lock_unpoisoned(&self.slots);
        let slot = &mut slots[(now_sec % SHED_WINDOW_SECS) as usize];
        if slot.epoch_sec != now_sec {
            *slot = ShedSlot {
                epoch_sec: now_sec,
                admitted: 0,
                shed: 0,
            };
        }
        if shed {
            slot.shed += 1;
        } else {
            slot.admitted += 1;
        }
    }

    /// `(admitted, shed)` over the last [`SHED_WINDOW_SECS`] seconds.
    fn totals(&self, now_sec: u64) -> (u64, u64) {
        let slots = lock_unpoisoned(&self.slots);
        let floor = now_sec.saturating_sub(SHED_WINDOW_SECS - 1);
        slots
            .iter()
            .filter(|s| s.epoch_sec >= floor && s.epoch_sec <= now_sec)
            .fold((0, 0), |(a, s), slot| (a + slot.admitted, s + slot.shed))
    }
}

/// Flight-recorder configuration: off by default (the recorder is
/// zero-cost when off — every record site pays one branch and no
/// allocation, asserted by tests).
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Record pipeline events and tail-sample anomalous requests.
    pub enabled: bool,
    /// Per-worker event ring capacity (events, min 1). The ring is
    /// allocated once at startup and never grows.
    pub capacity: usize,
    /// Retain any request slower than this, microseconds
    /// (`u64::MAX` = never retain on latency alone).
    pub latency_threshold_us: u64,
    /// Head sampling: retain every Nth request regardless of outcome
    /// (0 = none). Keyed on the deterministic sequence number.
    pub sample_every: u64,
    /// Retained-trace store cap; beyond it new traces are counted as
    /// dropped instead of growing memory.
    pub max_retained: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            enabled: false,
            capacity: 4096,
            latency_threshold_us: u64::MAX,
            sample_every: 0,
            max_retained: 256,
        }
    }
}

/// The adaptive `retry_after_ms` hint for a shed response: scale the
/// configured base by the backlog each worker must clear first, so a
/// barely-full queue hints a short backoff and a deep one hints
/// proportionally longer. Pure — tested directly.
pub fn retry_after_hint(base_ms: u64, queue_depth: usize, workers: usize) -> u64 {
    let per_worker = (queue_depth as u64).div_ceil(workers.max(1) as u64);
    base_ms.saturating_mul(per_worker.max(1))
}

/// One tail-sampled request: the outcome that made it worth keeping
/// plus every event its trace recorded.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The request sequence number (`trace_id` in every event).
    pub trace_id: u64,
    /// Outcome-class code ([`outcome_name`]).
    pub outcome: u64,
    /// Why the tail sampler kept it: the error class, `"fault"`,
    /// `"slow"`, or `"sampled"`.
    pub reason: &'static str,
    pub latency_us: u64,
    pub events: Vec<Event>,
}

impl RetainedTrace {
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("trace_id", self.trace_id);
        w.field_str("outcome", outcome_name(self.outcome));
        w.field_str("reason", self.reason);
        w.field_u64("latency_us", self.latency_us);
        w.begin_array_field("events");
        for e in &self.events {
            e.write_json(w);
        }
        w.end_array();
        w.end_object();
    }
}

/// The bounded retained-trace store shared by admission and workers.
#[derive(Debug)]
struct RetainedStore {
    traces: Vec<RetainedTrace>,
    dropped: u64,
    max: usize,
}

/// Push a trace into the store; `false` means the store was full and
/// the trace was counted as dropped instead.
fn retain(store: &Mutex<RetainedStore>, t: RetainedTrace) -> bool {
    let mut st = lock_unpoisoned(store);
    if st.traces.len() < st.max {
        st.traces.push(t);
        true
    } else {
        st.dropped += 1;
        false
    }
}

/// The tail-sampling decision: keep this request's trace? Checked
/// *after* the outcome is known. Returns the retention reason, or
/// `None` to let the ring overwrite the events.
fn retention_reason(
    rec: &RecorderConfig,
    seq: u64,
    outcome: u64,
    latency_us: u64,
    events: &[Event],
) -> Option<&'static str> {
    if !rec.enabled {
        return None;
    }
    if outcome != OUTCOME_OK {
        return Some(outcome_name(outcome));
    }
    if events.iter().any(|e| e.kind == EventKind::FaultInjected) {
        return Some("fault");
    }
    if latency_us >= rec.latency_threshold_us {
        return Some("slow");
    }
    if rec.sample_every > 0 && seq.is_multiple_of(rec.sample_every) {
        return Some("sampled");
    }
    None
}

/// The per-class latency histogram for an outcome code (`None` for
/// classes without one, e.g. bad requests that never ran).
fn latency_class(code: u64) -> Option<HistogramId> {
    match code {
        OUTCOME_OK => Some(HistogramId::ServeLatencyOkUs),
        OUTCOME_INTERNAL => Some(HistogramId::ServeLatencyInternalUs),
        OUTCOME_DEADLINE => Some(HistogramId::ServeLatencyDeadlineUs),
        OUTCOME_OVERLOADED => Some(HistogramId::ServeLatencyOverloadedUs),
        _ => None,
    }
}

/// Server configuration. [`ServeConfig::default`] is a sensible
/// interactive setup: a small pool, a 64-deep queue, no deadline, no
/// faults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (min 1).
    pub workers: usize,
    /// Admission queue capacity; a full queue sheds (min 1).
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// The `retry_after_ms` hint sent with shed responses.
    pub retry_after_ms: u64,
    /// Deterministic fault injection plan (chaos testing).
    pub faults: Option<FaultPlan>,
    /// Flight-recorder / tail-sampling configuration.
    pub recorder: RecorderConfig,
    /// Per-request JSONL access log written on the completion path
    /// (`None` = no access logging).
    pub access_log: Option<AccessLog>,
    /// Base pipeline options; per-request fields override a copy.
    pub options: Options,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            queue_capacity: 64,
            default_deadline_ms: None,
            retry_after_ms: 50,
            faults: None,
            recorder: RecorderConfig::default(),
            access_log: None,
            options: Options::default(),
        }
    }
}

/// What one [`serve`] session did, for callers and tests. The
/// reconciliation invariant — every input line got exactly one
/// response — is `lines == responses + write_errors`.
#[derive(Debug, Default)]
pub struct ServeSummary {
    /// Non-empty input lines seen.
    pub lines: u64,
    /// Requests admitted to the worker queue.
    pub admitted: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Lines that failed to parse as requests.
    pub bad_requests: u64,
    /// `stats` commands answered.
    pub stats_requests: u64,
    /// `dump` commands answered.
    pub dump_requests: u64,
    /// `health` probes answered (they bypass admission and are not
    /// counted in `serve.requests`).
    pub health_requests: u64,
    /// `watch` subscriptions accepted (socket transport).
    pub watch_requests: u64,
    /// Responses successfully written.
    pub responses: u64,
    /// Responses dropped because the output sink failed (e.g. a
    /// broken pipe); the server keeps draining instead of panicking.
    pub write_errors: u64,
    /// Merged fleet metrics (admission + every worker).
    pub fleet: MetricsRegistry,
    /// Tail-sampled traces still in the store at shutdown (whatever
    /// `dump` commands did not already drain), sorted by `trace_id`.
    pub retained: Vec<RetainedTrace>,
}

impl ServeSummary {
    /// Requests that completed `status:"ok"` (from the fleet metrics).
    pub fn ok(&self) -> u64 {
        self.fleet.counter(CounterId::ServeOk)
    }
    /// Requests answered `error:"internal"` (isolated panics).
    pub fn internal(&self) -> u64 {
        self.fleet.counter(CounterId::ServeErrInternal)
    }
    /// Requests answered `error:"deadline"`.
    pub fn deadline(&self) -> u64 {
        self.fleet.counter(CounterId::ServeErrDeadline)
    }
    /// Traces the tail sampler kept (including ones later drained by
    /// `dump`).
    pub fn traces_retained(&self) -> u64 {
        self.fleet.counter(CounterId::ServeTracesRetained)
    }
    /// Traces lost to the retained-store cap.
    pub fn traces_dropped(&self) -> u64 {
        self.fleet.counter(CounterId::ServeTracesDropped)
    }
}

/// A request id, echoed verbatim on the response. Requests without
/// one get their input line number.
#[derive(Debug, Clone)]
enum ReqId {
    Num(u64),
    Str(String),
    Seq(u64),
}

fn write_id(w: &mut JsonWriter, id: &ReqId) {
    match id {
        ReqId::Num(n) | ReqId::Seq(n) => w.field_u64("id", *n),
        ReqId::Str(s) => w.field_str("id", s),
    }
}

/// One admitted compilation job.
struct Job {
    id: ReqId,
    seq: u64,
    program: String,
    /// `cmd:"check"`: run the static passes only and answer with
    /// structured diagnostics instead of evaluating `main`.
    check: bool,
    lint: bool,
    explain: bool,
    want_stats: bool,
    deadline_ms: Option<u64>,
    opts: Options,
    token: Option<CancelToken>,
    degrade_traces: bool,
    degrade_cache: bool,
    admitted_at: Instant,
}

enum Parsed {
    Run(Box<Job>),
    Stats,
    Dump,
    Health,
    Watch { interval_ms: u64 },
}

/// Floor for `watch` tick periods: faster than this and the snapshot
/// merges themselves would become the load.
const MIN_WATCH_INTERVAL_MS: u64 = 10;

/// Lock a mutex, riding through poisoning: workers isolate panics
/// with `catch_unwind`, so a poisoned registry still holds coherent
/// counts.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn bool_field(v: &json::Value, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(json::Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("field `{key}` must be a boolean")),
    }
}

fn u64_field(v: &json::Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

/// Parse one request line. The id comes back even on failure so the
/// error response can still be correlated.
fn parse_request(line: &str, seq: u64, base: &Options) -> (ReqId, Result<Parsed, String>) {
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return (ReqId::Seq(seq), Err(format!("malformed JSON: {e}"))),
    };
    let id = match v.get("id") {
        Some(json::Value::Str(s)) => ReqId::Str(s.clone()),
        Some(other) => match other.as_u64() {
            Some(n) => ReqId::Num(n),
            None => ReqId::Seq(seq),
        },
        None => ReqId::Seq(seq),
    };
    if v.as_object().is_none() {
        return (id, Err("request must be a JSON object".to_string()));
    }
    let cmd = match v.get("cmd") {
        None => "run",
        Some(json::Value::Str(s)) => s.as_str(),
        Some(_) => return (id, Err("field `cmd` must be a string".to_string())),
    };
    match cmd {
        "stats" => (id, Ok(Parsed::Stats)),
        "dump" => (id, Ok(Parsed::Dump)),
        "health" => (id, Ok(Parsed::Health)),
        "watch" => match u64_field(&v, "interval_ms") {
            Ok(ms) => (
                id,
                Ok(Parsed::Watch {
                    interval_ms: ms.unwrap_or(1000).max(MIN_WATCH_INTERVAL_MS),
                }),
            ),
            Err(e) => (id, Err(e)),
        },
        "run" | "check" => {
            let check = cmd == "check";
            let spec = (|| {
                let program = match v.get("program") {
                    Some(json::Value::Str(s)) => s.clone(),
                    Some(_) => return Err("field `program` must be a string".to_string()),
                    None => return Err("missing `program`".to_string()),
                };
                let mut opts = base.clone();
                if let Some(b) = bool_field(&v, "prelude")? {
                    opts.use_prelude = b;
                }
                if let Some(b) = bool_field(&v, "memoize")? {
                    opts.memoize_resolution = b;
                }
                if let Some(b) = bool_field(&v, "share")? {
                    opts.share_dictionaries = b;
                }
                if let Some(b) = bool_field(&v, "check_laws")? {
                    opts.check_laws = b;
                }
                let explain = bool_field(&v, "explain")?.unwrap_or(false);
                if explain {
                    opts.trace_resolution = true;
                }
                if let Some(n) = u64_field(&v, "fuel")? {
                    opts.budget.fuel = n;
                }
                if let Some(n) = u64_field(&v, "max_depth")? {
                    opts.budget.max_depth = n as usize;
                }
                if let Some(n) = u64_field(&v, "max_allocs")? {
                    opts.budget.max_allocs = n;
                }
                Ok(Job {
                    id: id.clone(),
                    seq,
                    program,
                    check,
                    // `check` is the static-analysis surface, so the
                    // lint pass defaults on there.
                    lint: bool_field(&v, "lint")?.unwrap_or(check),
                    explain,
                    want_stats: bool_field(&v, "stats")?.unwrap_or(false),
                    deadline_ms: u64_field(&v, "deadline_ms")?,
                    opts,
                    token: None,
                    degrade_traces: false,
                    degrade_cache: false,
                    admitted_at: Instant::now(),
                })
            })();
            match spec {
                Ok(job) => (id, Ok(Parsed::Run(Box::new(job)))),
                Err(e) => (id, Err(e)),
            }
        }
        other => (id, Err(format!("unknown command `{other}`"))),
    }
}

fn error_response(id: &ReqId, class: &str, detail: &str, retry_after_ms: Option<u64>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    write_id(&mut w, id);
    w.field_str("status", "error");
    w.field_str("error", class);
    w.field_str("detail", detail);
    if let Some(ms) = retry_after_ms {
        w.field_u64("retry_after_ms", ms);
    }
    w.end_object();
    w.finish()
}

/// Build the `status:"ok"` response for a finished run.
fn ok_response(job: &Job, r: &RunResult, latency_us: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    write_id(&mut w, &job.id);
    w.field_str("status", "ok");
    match &r.outcome {
        Outcome::Value(v) => {
            w.field_str("outcome", "value");
            w.field_str("value", v);
            w.field_null("detail");
        }
        Outcome::CompileErrors => {
            w.field_str("outcome", "compile-errors");
            w.field_null("value");
            w.field_str("detail", &r.check.render_diagnostics());
        }
        Outcome::NoMain => {
            w.field_str("outcome", "no-main");
            w.field_null("value");
            w.field_null("detail");
        }
        Outcome::Eval(e) => {
            w.field_str("outcome", "eval-error");
            w.field_null("value");
            w.field_str("detail", &e.to_string());
            w.field_str("code", e.code());
            if let Some(b) = e.budget() {
                w.begin_object_field("budget");
                match &b.binding {
                    Some(name) => w.field_str("binding", name),
                    None => w.field_null("binding"),
                }
                w.field_u64("fuel_left", b.fuel_left);
                w.field_u64("allocs_left", b.allocs_left);
                w.field_u64("depth", b.depth as u64);
                w.end_object();
            }
        }
    }
    if job.explain && !job.degrade_traces {
        match r.check.render_explain() {
            Some(t) => w.field_str("explain", &t),
            None => w.field_null("explain"),
        }
    }
    if job.want_stats {
        w.begin_object_field("stats");
        r.check.stats.write_json(&mut w);
        w.end_object();
    }
    if job.degrade_traces || job.degrade_cache {
        w.begin_array_field("degraded");
        if job.degrade_traces {
            w.elem_str("traces");
        }
        if job.degrade_cache {
            w.elem_str("cache");
        }
        w.end_array();
    }
    w.field_u64("latency_us", latency_us);
    w.end_object();
    w.finish()
}

/// Build the `status:"ok"` response for a `cmd:"check"` job: the
/// overall verdict plus every diagnostic as a structured object, so
/// machine consumers never have to parse rendered text.
fn check_response(job: &Job, c: &Check, latency_us: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    write_id(&mut w, &job.id);
    w.field_str("status", "ok");
    w.field_str("cmd", "check");
    w.field_bool("ok", c.ok());
    w.begin_array_field("diagnostics");
    for d in c.diags.iter() {
        w.begin_object();
        w.field_str("code", d.code);
        w.field_str(
            "severity",
            match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
        );
        w.field_str("message", &d.message);
        w.field_u64("start", u64::from(d.span.start));
        w.field_u64("end", u64::from(d.span.end));
        w.end_object();
    }
    w.end_array();
    if job.want_stats {
        w.begin_object_field("stats");
        c.stats.write_json(&mut w);
        w.end_object();
    }
    if job.degrade_traces || job.degrade_cache {
        w.begin_array_field("degraded");
        if job.degrade_traces {
            w.elem_str("traces");
        }
        if job.degrade_cache {
            w.elem_str("cache");
        }
        w.end_array();
    }
    w.field_u64("latency_us", latency_us);
    w.end_object();
    w.finish()
}

/// Did compilation get cut short by its deadline? Either the driver
/// stopped the pipeline at a stage boundary (`E0430`) or the
/// resolver's in-flight poll tripped (`E0423`).
fn compile_cancelled(c: &Check) -> bool {
    c.diags
        .iter()
        .any(|d| d.code == CANCELLED_CODE || d.code == "E0423")
}

/// Did this run die of its deadline (rather than finishing or hitting
/// an ordinary error)? Either compilation was cut short, or the
/// evaluator's fuel-loop poll tripped.
fn deadline_hit(r: &RunResult) -> bool {
    matches!(r.outcome, Outcome::Eval(EvalError::Cancelled(_))) || compile_cancelled(&r.check)
}

/// A finished job, either flavor.
enum Done {
    Run(RunResult),
    Check(Check),
}

/// Classify a finished job's outcome and build its response line.
fn classify(job: &Job, outcome: Result<Done, String>, latency_us: u64) -> (u64, String) {
    match outcome {
        Err(panic_msg) => (
            OUTCOME_INTERNAL,
            error_response(&job.id, "internal", &panic_msg, None),
        ),
        Ok(Done::Run(r)) if deadline_hit(&r) => (
            OUTCOME_DEADLINE,
            error_response(&job.id, "deadline", "deadline exceeded", None),
        ),
        Ok(Done::Check(c)) if compile_cancelled(&c) => (
            OUTCOME_DEADLINE,
            error_response(&job.id, "deadline", "deadline exceeded", None),
        ),
        Ok(Done::Run(r)) => (OUTCOME_OK, ok_response(job, &r, latency_us)),
        Ok(Done::Check(c)) => (OUTCOME_OK, check_response(job, &c, latency_us)),
    }
}

/// Per-session tallies, shared by every admission thread (stdin has
/// one; the socket transport has one per connection).
#[derive(Debug, Default)]
struct Tally {
    lines: u64,
    admitted: u64,
    shed: u64,
    bad_requests: u64,
    stats_requests: u64,
    dump_requests: u64,
    health_requests: u64,
    watch_requests: u64,
}

/// What admission did with one request line. Everything except a
/// `watch` subscription is fully handled — response routed or job
/// queued — by the time [`Core::handle_line`] returns; `watch` is
/// handed back because only the transport knows whether it can
/// stream (socket spawns a ticker, stdin rejects).
enum Admitted {
    Done,
    Watch { id: ReqId, interval_ms: u64 },
}

/// The per-outcome-class watch rate rows: response counter, latency
/// histogram, and class label, in protocol order.
const WATCH_CLASSES: [(CounterId, HistogramId, &str); 4] = [
    (CounterId::ServeOk, HistogramId::ServeLatencyOkUs, "ok"),
    (
        CounterId::ServeErrInternal,
        HistogramId::ServeLatencyInternalUs,
        "internal",
    ),
    (
        CounterId::ServeErrDeadline,
        HistogramId::ServeLatencyDeadlineUs,
        "deadline",
    ),
    (
        CounterId::ServeErrOverloaded,
        HistogramId::ServeLatencyOverloadedUs,
        "overloaded",
    ),
];

/// The transport-independent server: admission queue, worker pool
/// state, fleet metrics, flight recorder, and the telemetry plane's
/// shared counters. Both the stdin session ([`serve`]) and the socket
/// listener ([`serve_socket`]) drive one of these; the socket
/// transport wraps it in an [`Arc`] so reader, writer, worker, and
/// ticker threads all see the same server.
struct Core {
    cfg: ServeConfig,
    workers: usize,
    cap: usize,
    queue: Queue,
    gate: Gate,
    worker_regs: Vec<Mutex<MetricsRegistry>>,
    worker_logs: Vec<EventLog>,
    admission_reg: Mutex<MetricsRegistry>,
    admission_log: EventLog,
    store: Mutex<RetainedStore>,
    tally: Mutex<Tally>,
    shed_window: ShedWindow,
    started: Instant,
    /// Global arrival-order sequence numbers. A single sequential
    /// client therefore sees the same seqs over the socket as over
    /// stdin — which is what makes seeded fault runs replay
    /// identically across transports.
    seq: AtomicU64,
    responses: AtomicU64,
    write_errors: AtomicU64,
    active_connections: AtomicU64,
    workers_alive: AtomicU64,
    transport: &'static str,
}

impl Core {
    fn new(cfg: &ServeConfig, transport: &'static str) -> Core {
        let workers = cfg.workers.max(1);
        let event_log = |enabled: bool| {
            if enabled {
                EventLog::with_capacity(cfg.recorder.capacity)
            } else {
                EventLog::off()
            }
        };
        Core {
            workers,
            cap: cfg.queue_capacity.max(1),
            queue: Queue::new(),
            gate: Gate::new(),
            worker_regs: (0..workers)
                .map(|_| Mutex::new(MetricsRegistry::new()))
                .collect(),
            // One event ring per worker (a worker records one request
            // at a time, so rings never mix concurrent traces) plus
            // one for admission-side synthesized traces.
            worker_logs: (0..workers)
                .map(|_| event_log(cfg.recorder.enabled))
                .collect(),
            admission_reg: Mutex::new(MetricsRegistry::new()),
            admission_log: event_log(cfg.recorder.enabled),
            store: Mutex::new(RetainedStore {
                traces: Vec::new(),
                dropped: 0,
                max: cfg.recorder.max_retained.max(1),
            }),
            tally: Mutex::new(Tally::default()),
            shed_window: ShedWindow::new(),
            started: Instant::now(),
            seq: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            workers_alive: AtomicU64::new(workers as u64),
            cfg: cfg.clone(),
            transport,
        }
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn now_sec(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Merged fleet registry: admission plus every worker.
    fn fleet(&self) -> MetricsRegistry {
        let mut fleet = MetricsRegistry::new();
        fleet.merge(&lock_unpoisoned(&self.admission_reg));
        for reg in &self.worker_regs {
            fleet.merge(&lock_unpoisoned(reg));
        }
        fleet
    }

    /// The worker thread body: pop, process, route the response back
    /// to the admitting connection's channel.
    ///
    /// `workers_alive` starts at the configured pool size (so a
    /// health probe racing worker startup still reads full liveness)
    /// and is decremented by a drop guard — a worker dying any way at
    /// all, including an unexpected unwinding panic, is counted out.
    fn worker_loop(&self, idx: usize) {
        struct Alive<'a>(&'a AtomicU64);
        impl Drop for Alive<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _alive = Alive(&self.workers_alive);
        while let Some((job, reply)) = self.queue.pop() {
            let resp = self.process(job, idx);
            // A send only fails when the connection (and its writer)
            // is already gone; the response has nowhere to go.
            let _ = reply.send(resp);
            self.gate.exit();
        }
    }

    /// The stdin writer body: drain the response channel into the
    /// sink, riding through a broken pipe by counting instead of
    /// blocking workers.
    fn writer_loop<W: Write>(&self, mut out: W, rx: mpsc::Receiver<String>) {
        let mut sink_broken = false;
        for line in rx {
            if sink_broken {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match writeln!(out, "{line}") {
                Ok(()) => {
                    self.responses.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    sink_broken = true;
                    self.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let _ = out.flush();
    }

    /// Write one access-log record, if an access log is configured.
    fn access(
        &self,
        id: &ReqId,
        seq: u64,
        outcome: u64,
        latency_us: u64,
        retained: Option<&'static str>,
        worker: Option<usize>,
    ) {
        if let Some(log) = &self.cfg.access_log {
            log.record(&access_line(
                id,
                seq,
                self.uptime_ms(),
                outcome,
                latency_us,
                retained,
                worker,
            ));
        }
    }

    /// Admit one request line: parse, classify, and either answer it
    /// directly on `reply` (errors, stats, dump, health), queue it
    /// for the pool (run/check), or hand a `watch` subscription back
    /// to the transport.
    fn handle_line(&self, trimmed: &str, reply: &mpsc::Sender<String>) -> Admitted {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        lock_unpoisoned(&self.tally).lines += 1;
        let (id, parsed) = parse_request(trimmed, seq, &self.cfg.options);
        // Health is a probe, not a request: it bypasses admission and
        // stays out of `serve.requests` so probing a saturated server
        // does not disturb its counters.
        if !matches!(parsed, Ok(Parsed::Health)) {
            lock_unpoisoned(&self.admission_reg).incr(CounterId::ServeRequests);
        }
        match parsed {
            Err(msg) => {
                lock_unpoisoned(&self.tally).bad_requests += 1;
                lock_unpoisoned(&self.admission_reg).incr(CounterId::ServeErrBadRequest);
                let kept = self.synth_trace(seq, OUTCOME_BAD_REQUEST, None);
                self.access(&id, seq, OUTCOME_BAD_REQUEST, 0, kept, None);
                let _ = reply.send(error_response(&id, "bad-request", &msg, None));
                Admitted::Done
            }
            Ok(Parsed::Stats) => {
                lock_unpoisoned(&self.tally).stats_requests += 1;
                let _ = reply.send(self.stats_response(&id));
                Admitted::Done
            }
            Ok(Parsed::Dump) => {
                lock_unpoisoned(&self.tally).dump_requests += 1;
                // Barrier: wait out every in-flight request so the
                // drained set is complete and (under a fault seed)
                // deterministic.
                self.gate.wait_idle();
                let _ = reply.send(self.dump_response(&id));
                Admitted::Done
            }
            Ok(Parsed::Health) => {
                lock_unpoisoned(&self.tally).health_requests += 1;
                let _ = reply.send(self.health_response(&id));
                Admitted::Done
            }
            Ok(Parsed::Watch { interval_ms }) => Admitted::Watch { id, interval_ms },
            Ok(Parsed::Run(mut job)) => {
                let depth = self.queue.depth();
                let mut reg = lock_unpoisoned(&self.admission_reg);
                reg.observe(HistogramId::ServeQueueDepth, depth as u64);
                if depth >= self.cap {
                    reg.incr(CounterId::ServeErrOverloaded);
                    reg.observe(HistogramId::ServeLatencyOverloadedUs, 0);
                    drop(reg);
                    lock_unpoisoned(&self.tally).shed += 1;
                    self.shed_window.record(self.now_sec(), true);
                    let hint = retry_after_hint(self.cfg.retry_after_ms, depth, self.workers);
                    let kept = self.synth_trace(
                        seq,
                        OUTCOME_OVERLOADED,
                        Some((EventKind::Shed, depth as u64, hint)),
                    );
                    self.access(&id, seq, OUTCOME_OVERLOADED, 0, kept, None);
                    let _ = reply.send(error_response(
                        &id,
                        "overloaded",
                        "admission queue is full",
                        Some(hint),
                    ));
                    return Admitted::Done;
                }
                drop(reg);
                self.shed_window.record(self.now_sec(), false);
                // Degrade *before* shedding: at half occupancy the
                // pool is behind, so optional observability goes
                // first; at three quarters, cap the memo table too.
                job.degrade_traces = depth * 2 >= self.cap;
                job.degrade_cache = depth * 4 >= self.cap * 3;
                job.admitted_at = Instant::now();
                job.token = job
                    .deadline_ms
                    .or(self.cfg.default_deadline_ms)
                    .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
                lock_unpoisoned(&self.tally).admitted += 1;
                self.gate.enter();
                self.queue.push(*job, reply.clone());
                Admitted::Done
            }
        }
    }

    /// The `stats` response: uptime, transport, per-worker counts,
    /// per-class latency quantiles, and the full fleet snapshot.
    fn stats_response(&self, id: &ReqId) -> String {
        let fleet = self.fleet();
        let mut w = JsonWriter::new();
        w.begin_object();
        write_id(&mut w, id);
        w.field_str("status", "ok");
        w.field_str("cmd", "stats");
        w.field_u64("uptime_ms", self.uptime_ms());
        w.field_str("transport", self.transport);
        w.field_u64(
            "active_connections",
            self.active_connections.load(Ordering::SeqCst),
        );
        w.begin_array_field("workers");
        for reg in &self.worker_regs {
            w.elem_u64(lock_unpoisoned(reg).counter(CounterId::ServeProcessed));
        }
        w.end_array();
        w.begin_object_field("latency");
        for (hid, class) in HistogramId::LATENCY_CLASSES {
            w.begin_object_field(class);
            let h = fleet.histogram(hid);
            w.field_u64("count", h.map_or(0, |h| h.count));
            for (key, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                match h.and_then(|h| h.quantile(q)) {
                    Some(v) => w.field_f64(key, v, 1),
                    None => w.field_null(key),
                }
            }
            w.end_object();
        }
        w.end_object();
        w.begin_object_field("fleet");
        fleet.write_json(&mut w);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// The `dump` response: drain and clear the retained-trace store.
    /// Call [`Gate::wait_idle`] first — the barrier is what makes the
    /// drained set complete.
    fn dump_response(&self, id: &ReqId) -> String {
        let (mut traces, dropped) = {
            let mut st = lock_unpoisoned(&self.store);
            (std::mem::take(&mut st.traces), st.dropped)
        };
        traces.sort_by_key(|t| t.trace_id);
        let mut w = JsonWriter::new();
        w.begin_object();
        write_id(&mut w, id);
        w.field_str("status", "ok");
        w.field_str("cmd", "dump");
        w.field_u64("retained", traces.len() as u64);
        w.field_u64("dropped", dropped);
        w.begin_array_field("traces");
        for t in &traces {
            t.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The `health` response. Deliberately O(1): a queue-depth read,
    /// a few atomics, the shed window, and the store length — no
    /// admission, no gate, no fleet merge — so it answers promptly
    /// even when the admission queue is saturated.
    fn health_response(&self, id: &ReqId) -> String {
        let depth = self.queue.depth();
        let alive = self.workers_alive.load(Ordering::SeqCst);
        let (admitted, shed) = self.shed_window.totals(self.now_sec());
        let (backlog, trace_cap, dropped) = {
            let st = lock_unpoisoned(&self.store);
            (st.traces.len() as u64, st.max as u64, st.dropped)
        };
        let accepting = depth < self.cap;
        let mut w = JsonWriter::new();
        w.begin_object();
        write_id(&mut w, id);
        w.field_str("status", "ok");
        w.field_str("cmd", "health");
        w.field_bool("healthy", alive > 0 && accepting);
        w.field_str("transport", self.transport);
        w.field_u64("uptime_ms", self.uptime_ms());
        w.begin_object_field("queue");
        w.field_u64("depth", depth as u64);
        w.field_u64("capacity", self.cap as u64);
        w.field_bool("accepting", accepting);
        w.end_object();
        w.begin_object_field("workers");
        w.field_u64("configured", self.workers as u64);
        w.field_u64("alive", alive);
        w.end_object();
        w.begin_object_field("shed_window");
        w.field_u64("seconds", SHED_WINDOW_SECS);
        w.field_u64("admitted", admitted);
        w.field_u64("shed", shed);
        let decisions = admitted + shed;
        w.field_f64(
            "shed_rate_pct",
            if decisions == 0 {
                0.0
            } else {
                shed as f64 * 100.0 / decisions as f64
            },
            1,
        );
        w.end_object();
        w.begin_object_field("traces");
        w.field_u64("retained_backlog", backlog);
        w.field_u64("capacity", trace_cap);
        w.field_u64("dropped", dropped);
        w.end_object();
        w.field_u64(
            "active_connections",
            self.active_connections.load(Ordering::SeqCst),
        );
        w.end_object();
        w.finish()
    }

    /// The ack line confirming a `watch` subscription.
    fn watch_ack(&self, id: &ReqId, interval_ms: u64) -> String {
        lock_unpoisoned(&self.tally).watch_requests += 1;
        let mut w = JsonWriter::new();
        w.begin_object();
        write_id(&mut w, id);
        w.field_str("status", "ok");
        w.field_str("cmd", "watch");
        w.field_u64("interval_ms", interval_ms);
        w.field_bool("streaming", true);
        w.end_object();
        w.finish()
    }

    /// One `watch` tick: the fleet-snapshot delta since `prev` plus
    /// server-computed rates over the window. Returns the tick line
    /// and the new absolute snapshot to difference against next time.
    /// The first tick differences against the zero snapshot, so the
    /// sum of every tick's delta *is* the absolute fleet snapshot —
    /// the reconciliation invariant the acceptance tests check.
    fn watch_tick(
        &self,
        id: &ReqId,
        tick: u64,
        window_ms: u64,
        prev: &MetricsSnapshot,
    ) -> (String, MetricsSnapshot) {
        let now = self.fleet().snapshot();
        let delta = now.delta(prev);
        let window_s = window_ms.max(1) as f64 / 1000.0;
        let mut w = JsonWriter::new();
        w.begin_object();
        write_id(&mut w, id);
        w.field_str("cmd", "watch");
        w.field_u64("tick", tick);
        w.field_u64("window_ms", window_ms);
        w.field_u64("uptime_ms", self.uptime_ms());
        w.begin_object_field("queue");
        w.field_u64("depth", self.queue.depth() as u64);
        w.field_u64("capacity", self.cap as u64);
        w.end_object();
        w.field_u64(
            "active_connections",
            self.active_connections.load(Ordering::SeqCst),
        );
        w.field_f64(
            "qps",
            delta.counter(CounterId::ServeRequests) as f64 / window_s,
            2,
        );
        w.begin_object_field("classes");
        for (cid, hid, class) in WATCH_CLASSES {
            w.begin_object_field(class);
            let n = delta.counter(cid);
            w.field_u64("count", n);
            w.field_f64("rps", n as f64 / window_s, 2);
            for (key, q) in [("p50", 0.5), ("p99", 0.99)] {
                match delta.histogram(hid).quantile(q) {
                    Some(v) => w.field_f64(key, v, 1),
                    None => w.field_null(key),
                }
            }
            w.end_object();
        }
        w.end_object();
        let hits = delta.counter(CounterId::ResolveCacheHits);
        let misses = delta.counter(CounterId::ResolveCacheMisses);
        w.begin_object_field("cache");
        w.field_u64("hits", hits);
        w.field_u64("misses", misses);
        let lookups = hits + misses;
        w.field_f64(
            "hit_rate_pct",
            if lookups == 0 {
                0.0
            } else {
                hits as f64 * 100.0 / lookups as f64
            },
            1,
        );
        w.end_object();
        w.field_u64("shed", delta.counter(CounterId::ServeErrOverloaded));
        w.field_u64("faults", delta.counter(CounterId::ServeFaultsInjected));
        w.begin_object_field("delta");
        delta.write_json(&mut w);
        w.end_object();
        w.end_object();
        (w.finish(), now)
    }

    /// Synthesize and retain a minimal trace for a request that never
    /// reached a worker (shed at admission, or unparseable), so
    /// *every* anomalous request has a retained trace, not just the
    /// ones that ran. Returns the retention reason if the store kept
    /// it.
    fn synth_trace(
        &self,
        seq: u64,
        outcome: u64,
        cause: Option<(EventKind, u64, u64)>,
    ) -> Option<&'static str> {
        if !self.cfg.recorder.enabled {
            return None;
        }
        let scope = self.admission_log.scope(seq);
        scope.record(EventKind::RequestStart, seq, 0);
        if let Some((kind, a0, a1)) = cause {
            scope.record(kind, a0, a1);
        }
        scope.record(EventKind::RequestEnd, outcome, 0);
        let reason = outcome_name(outcome);
        let kept = retain(
            &self.store,
            RetainedTrace {
                trace_id: seq,
                outcome,
                reason,
                latency_us: 0,
                events: self.admission_log.extract(seq),
            },
        );
        lock_unpoisoned(&self.admission_reg).incr(if kept {
            CounterId::ServeTracesRetained
        } else {
            CounterId::ServeTracesDropped
        });
        kept.then_some(reason)
    }

    /// Process one admitted job on a worker: apply degradation, arm
    /// faults, run the pipeline under panic isolation (recording its
    /// events under `trace_id = seq`), classify, record metrics and
    /// the access-log record, make the tail-sampling decision, and
    /// return the single response line.
    fn process(&self, mut job: Job, worker_idx: usize) -> String {
        let cfg = &self.cfg;
        let reg = &self.worker_regs[worker_idx];
        let log = &self.worker_logs[worker_idx];
        let scope = log.scope(job.seq);
        scope.record(
            EventKind::RequestStart,
            job.seq,
            job.admitted_at.elapsed().as_micros() as u64,
        );
        {
            let mut m = lock_unpoisoned(reg);
            m.incr(CounterId::ServeProcessed);
            if job.degrade_traces {
                m.incr(CounterId::ServeDegradedTraces);
            }
            if job.degrade_cache {
                m.incr(CounterId::ServeDegradedCache);
            }
        }
        if job.degrade_traces {
            // Shed optional observability first: correctness of the
            // answer is untouched, only explain/profile detail is
            // lost. The flight recorder stays on — it is the
            // instrument that explains exactly these degraded
            // requests.
            job.opts.trace_resolution = false;
            job.opts.trace_goal_spans = false;
            job.opts.trace_timing = false;
            job.opts.profile_eval = false;
        }
        if job.degrade_cache {
            job.opts.cache_capacity = Some(DEGRADED_CACHE_CAPACITY);
        }
        job.opts.cancel = job.token.clone();
        job.opts.events = scope.clone();
        let faults = cfg
            .faults
            .as_ref()
            .map(|p| p.for_request(job.seq))
            .unwrap_or_default();
        job.opts.faults = faults.clone();

        // A deadline that expired while the job sat in the queue:
        // answer without burning any pipeline work.
        let (code, resp, injected) = if job.token.as_ref().is_some_and(|t| t.is_cancelled()) {
            let resp = error_response(
                &job.id,
                "deadline",
                "deadline expired before compilation started",
                None,
            );
            (OUTCOME_DEADLINE, resp, 0)
        } else {
            let outcome = resilience::isolated(|| {
                let check = if job.lint {
                    lint_source(&job.program, &job.opts)
                } else {
                    check_source(&job.program, &job.opts)
                };
                if job.check {
                    // Static surface: stop after the analysis passes;
                    // `main` (if any) is never evaluated.
                    Done::Check(check)
                } else {
                    Done::Run(run_checked(check, &job.opts))
                }
            });
            let latency_us = job.admitted_at.elapsed().as_micros() as u64;
            let (code, resp) = classify(&job, outcome, latency_us);
            (code, resp, faults.injected())
        };

        let latency_us = job.admitted_at.elapsed().as_micros() as u64;
        scope.record(EventKind::RequestEnd, code, latency_us);

        // Tail sampling: now that the outcome is known, decide
        // whether this request's events are worth keeping.
        let mut kept = None;
        if cfg.recorder.enabled {
            let events = log.extract(job.seq);
            if let Some(reason) =
                retention_reason(&cfg.recorder, job.seq, code, latency_us, &events)
            {
                let stored = retain(
                    &self.store,
                    RetainedTrace {
                        trace_id: job.seq,
                        outcome: code,
                        reason,
                        latency_us,
                        events,
                    },
                );
                kept = Some((reason, stored));
            }
        }

        self.access(
            &job.id,
            job.seq,
            code,
            latency_us,
            kept.and_then(|(reason, stored)| stored.then_some(reason)),
            Some(worker_idx),
        );

        let mut m = lock_unpoisoned(reg);
        m.add(CounterId::ServeFaultsInjected, injected);
        m.observe(HistogramId::ServeLatencyUs, latency_us);
        if let Some(h) = latency_class(code) {
            m.observe(h, latency_us);
        }
        match code {
            OUTCOME_INTERNAL => m.incr(CounterId::ServeErrInternal),
            OUTCOME_DEADLINE => m.incr(CounterId::ServeErrDeadline),
            _ => m.incr(CounterId::ServeOk),
        }
        match kept {
            Some((_, true)) => m.incr(CounterId::ServeTracesRetained),
            Some((_, false)) => m.incr(CounterId::ServeTracesDropped),
            None => {}
        }
        resp
    }

    /// Fold the session into a [`ServeSummary`], draining whatever the
    /// retained store still holds.
    fn summary(&self) -> ServeSummary {
        let t = lock_unpoisoned(&self.tally);
        let mut summary = ServeSummary {
            lines: t.lines,
            admitted: t.admitted,
            shed: t.shed,
            bad_requests: t.bad_requests,
            stats_requests: t.stats_requests,
            dump_requests: t.dump_requests,
            health_requests: t.health_requests,
            watch_requests: t.watch_requests,
            responses: self.responses.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            fleet: self.fleet(),
            retained: Vec::new(),
        };
        drop(t);
        let mut st = lock_unpoisoned(&self.store);
        summary.retained = std::mem::take(&mut st.traces);
        summary.retained.sort_by_key(|t| t.trace_id);
        summary
    }
}

/// In-flight request gate: admission increments before pushing a job,
/// the worker decrements after the response *and* the tail-sampling
/// decision are out. `dump` waits on zero, making it a barrier — the
/// retained set it drains is complete for everything admitted before
/// it.
struct Gate {
    count: Mutex<u64>,
    zero: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn enter(&self) {
        *lock_unpoisoned(&self.count) += 1;
    }

    fn exit(&self) {
        let mut n = lock_unpoisoned(&self.count);
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut n = lock_unpoisoned(&self.count);
        while *n > 0 {
            n = self.zero.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Bounded MPMC job queue: admission pushes (never blocks — the
/// caller sheds on full), workers block on pop until closed + empty.
/// Each job carries the reply channel of the connection (or stdin
/// session) that admitted it, so responses route back to the right
/// client no matter which worker finishes them.
struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<(Job, mpsc::Sender<String>)>,
    closed: bool,
}

impl Queue {
    fn new() -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Current depth (for admission decisions and the depth metric).
    fn depth(&self) -> usize {
        lock_unpoisoned(&self.state).jobs.len()
    }

    fn push(&self, job: Job, reply: mpsc::Sender<String>) {
        lock_unpoisoned(&self.state).jobs.push_back((job, reply));
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<(Job, mpsc::Sender<String>)> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// Keep *injected* panics (recognizable `tc-fault:` payloads) off
/// stderr — the chaos suite fires hundreds — while real panics keep
/// the default hook's full report. Installed once per process.
fn install_fault_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !resilience::is_injected_panic(info.payload()) {
                prev(info);
            }
        }));
    });
}

/// Run the serve loop: read JSONL requests from `input` until EOF,
/// answer every one of them on `output` (completion order), then
/// drain the queue, join the pool, and return the session summary.
///
/// The calling thread does admission; `cfg.workers` scoped threads
/// compile; one scoped thread owns the writer so response lines never
/// interleave.
pub fn serve<R: BufRead, W: Write + Send>(
    mut input: R,
    output: W,
    cfg: &ServeConfig,
) -> ServeSummary {
    install_fault_panic_hook();
    let core = Core::new(cfg, "stdin");
    let (tx, rx) = mpsc::channel::<String>();

    std::thread::scope(|s| {
        let core = &core;
        s.spawn(move || core.writer_loop(output, rx));
        for i in 0..core.workers {
            s.spawn(move || core.worker_loop(i));
        }

        let mut line = String::new();
        loop {
            line.clear();
            match input.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Admitted::Watch { id, .. } = core.handle_line(trimmed, &tx) {
                // Streaming needs a connection to stream to; on the
                // one-shot stdin transport it is a bad request.
                lock_unpoisoned(&core.tally).bad_requests += 1;
                lock_unpoisoned(&core.admission_reg).incr(CounterId::ServeErrBadRequest);
                let _ = tx.send(error_response(
                    &id,
                    "bad-request",
                    "watch streams over the socket transport; connect with --listen / tc top",
                    None,
                ));
            }
        }
        core.queue.close();
        drop(tx);
    });

    core.summary()
}

/// Convenience for tests and the differential harness: serve a batch
/// of request lines from memory and return the response lines.
pub fn serve_lines(lines: &[String], cfg: &ServeConfig) -> (Vec<String>, ServeSummary) {
    let input = lines.join("\n");
    let mut out: Vec<u8> = Vec::new();
    let summary = serve(input.as_bytes(), &mut out, cfg);
    let text = String::from_utf8_lossy(&out);
    (text.lines().map(|l| l.to_string()).collect(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, program: &str) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("id", id);
        w.field_str("program", program);
        w.end_object();
        w.finish()
    }

    fn parse_all(lines: &[String]) -> Vec<json::Value> {
        lines
            .iter()
            .map(|l| json::parse(l).unwrap_or_else(|e| panic!("{e}\n{l}")))
            .collect()
    }

    fn by_id(vals: &[json::Value], id: u64) -> &json::Value {
        vals.iter()
            .find(|v| v.get("id").and_then(|i| i.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn serves_a_small_batch() {
        let lines = vec![
            req(1, "main = member 3 (enumFromTo 1 5);"),
            req(2, "main = eq 1 True;"),
            req(3, "x = 1;"),
        ];
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 3);
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.responses, 3);
        assert_eq!(summary.ok(), 3);
        let vals = parse_all(&out);
        let ok = by_id(&vals, 1);
        assert_eq!(ok.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(ok.get("outcome").and_then(|v| v.as_str()), Some("value"));
        assert_eq!(ok.get("value").and_then(|v| v.as_str()), Some("True"));
        let bad = by_id(&vals, 2);
        assert_eq!(
            bad.get("outcome").and_then(|v| v.as_str()),
            Some("compile-errors")
        );
        assert!(bad
            .get("detail")
            .and_then(|v| v.as_str())
            .is_some_and(|d| d.contains("error")));
        let nomain = by_id(&vals, 3);
        assert_eq!(
            nomain.get("outcome").and_then(|v| v.as_str()),
            Some("no-main")
        );
    }

    #[test]
    fn malformed_lines_get_bad_request_responses() {
        let lines = vec![
            "{not json".to_string(),
            "{\"id\": 9}".to_string(),
            "{\"id\": 10, \"cmd\": \"frobnicate\"}".to_string(),
            "{\"id\": 11, \"program\": \"main = 1;\", \"fuel\": \"lots\"}".to_string(),
        ];
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 4);
        assert_eq!(summary.bad_requests, 4);
        assert_eq!(summary.admitted, 0);
        let vals = parse_all(&out);
        for v in &vals {
            assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("error"));
            assert_eq!(v.get("error").and_then(|s| s.as_str()), Some("bad-request"));
        }
        // The unparseable line still got an id (its line number).
        assert!(vals
            .iter()
            .any(|v| v.get("id").and_then(|i| i.as_u64()) == Some(1)));
    }

    #[test]
    fn eval_errors_carry_code_and_budget() {
        let line = "{\"id\": 1, \"program\": \"from n = cons n (from (add n 1));\\nmain = from 0;\", \"fuel\": 5000}".to_string();
        let (out, _) = serve_lines(&[line], &ServeConfig::default());
        let vals = parse_all(&out);
        let v = by_id(&vals, 1);
        assert_eq!(
            v.get("outcome").and_then(|s| s.as_str()),
            Some("eval-error")
        );
        assert_eq!(
            v.get("code").and_then(|s| s.as_str()),
            Some("fuel-exhausted")
        );
        let budget = v.get("budget").unwrap_or_else(|| panic!("budget: {out:?}"));
        assert_eq!(budget.get("fuel_left").and_then(|n| n.as_u64()), Some(0));
    }

    #[test]
    fn stats_command_reports_fleet_counters() {
        let lines = vec![
            req(1, "main = add 1 2;"),
            "{\"id\": 2, \"cmd\": \"stats\"}".to_string(),
        ];
        // One worker makes the request complete before EOF handling,
        // but stats may still race the in-flight request — so drive
        // sequentially: first the run, then a second session's stats
        // would be empty. Instead assert on the summary fleet, which
        // is always post-drain.
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(summary.stats_requests, 1);
        assert_eq!(summary.fleet.counter(CounterId::ServeRequests), 2);
        assert_eq!(summary.fleet.counter(CounterId::ServeOk), 1);
        let vals = parse_all(&out);
        let stats = by_id(&vals, 2);
        assert_eq!(stats.get("cmd").and_then(|s| s.as_str()), Some("stats"));
        assert!(stats.get("fleet").is_some());
    }

    #[test]
    fn queue_overflow_sheds_with_retry_hint() {
        // One worker, capacity 1, and a batch of slow-ish programs:
        // some must shed. Every line still answers exactly once.
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let lines: Vec<String> = (0..40)
            .map(|i| req(i, "main = length (enumFromTo 1 400);"))
            .collect();
        let (out, summary) = serve_lines(&lines, &cfg);
        assert_eq!(out.len(), 40);
        assert_eq!(summary.admitted + summary.shed, 40);
        assert_eq!(summary.responses, 40);
        if summary.shed > 0 {
            let vals = parse_all(&out);
            let shed = vals
                .iter()
                .find(|v| v.get("error").and_then(|e| e.as_str()) == Some("overloaded"))
                .unwrap_or_else(|| panic!("no overloaded response"));
            assert!(shed
                .get("retry_after_ms")
                .and_then(|n| n.as_u64())
                .is_some());
        }
    }

    #[test]
    fn tight_deadlines_answer_deadline_errors() {
        let cfg = ServeConfig {
            workers: 2,
            default_deadline_ms: Some(0),
            ..ServeConfig::default()
        };
        let lines = vec![req(1, "main = member 3 (enumFromTo 1 5);")];
        let (out, summary) = serve_lines(&lines, &cfg);
        let vals = parse_all(&out);
        let v = by_id(&vals, 1);
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("error"));
        assert_eq!(v.get("error").and_then(|s| s.as_str()), Some("deadline"));
        assert_eq!(summary.deadline(), 1);
    }

    #[test]
    fn injected_panics_become_internal_errors_and_workers_survive() {
        let cfg = ServeConfig {
            workers: 2,
            faults: Some(
                FaultPlan::parse("seed=7;elaborate=panic").unwrap_or_else(|e| panic!("{e}")),
            ),
            ..ServeConfig::default()
        };
        let lines: Vec<String> = (0..10).map(|i| req(i, "main = add 1 2;")).collect();
        let (out, summary) = serve_lines(&lines, &cfg);
        // Every request answers despite every one of them panicking
        // mid-pipeline — the pool of 2 workers survived 10 panics.
        assert_eq!(out.len(), 10);
        assert_eq!(summary.internal(), 10);
        assert!(summary.fleet.counter(CounterId::ServeFaultsInjected) >= 10);
        let vals = parse_all(&out);
        for v in &vals {
            assert_eq!(v.get("error").and_then(|s| s.as_str()), Some("internal"));
            assert!(v
                .get("detail")
                .and_then(|s| s.as_str())
                .is_some_and(|d| d.contains("tc-fault")));
        }
    }

    #[test]
    fn explain_and_stats_fields_ride_along() {
        let line = "{\"id\": 1, \"program\": \"main = eq (cons 1 nil) nil;\", \"explain\": true, \"stats\": true}".to_string();
        let (out, _) = serve_lines(&[line], &ServeConfig::default());
        let vals = parse_all(&out);
        let v = by_id(&vals, 1);
        assert!(v
            .get("explain")
            .and_then(|s| s.as_str())
            .is_some_and(|t| t.contains("Eq")));
        assert!(v.get("stats").and_then(|s| s.get("goals")).is_some());
    }

    fn check_req(id: u64, program: &str, check_laws: bool, prelude: bool) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("id", id);
        w.field_str("cmd", "check");
        w.field_str("program", program);
        w.field_bool("check_laws", check_laws);
        w.field_bool("prelude", prelude);
        w.end_object();
        w.finish()
    }

    #[test]
    fn check_command_reports_structured_diagnostics_without_evaluating() {
        let lines = vec![
            // A prelude duplicate: coherence reports L0009, deny by
            // default, so the verdict is not-ok.
            check_req(
                1,
                "instance Eq Int where { eq = primEqInt; neq = \\x y -> False; };",
                false,
                true,
            ),
            // An infinite main: check must answer instantly because it
            // never evaluates.
            check_req(2, "loop x = loop x;\nmain = loop 1;", false, true),
        ];
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(summary.ok(), 2);
        let vals = parse_all(&out);
        let dup = by_id(&vals, 1);
        assert_eq!(dup.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(dup.get("cmd").and_then(|s| s.as_str()), Some("check"));
        assert_eq!(dup.get("ok").and_then(|b| b.as_bool()), Some(false));
        let diags = dup
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .unwrap_or_else(|| panic!("diagnostics array: {out:?}"));
        let orphan = diags
            .iter()
            .find(|d| d.get("code").and_then(|c| c.as_str()) == Some("L0009"))
            .unwrap_or_else(|| panic!("no L0009 in {diags:?}"));
        assert_eq!(
            orphan.get("severity").and_then(|s| s.as_str()),
            Some("error")
        );
        assert!(orphan.get("start").and_then(|n| n.as_u64()).is_some());
        let looping = by_id(&vals, 2);
        assert_eq!(looping.get("ok").and_then(|b| b.as_bool()), Some(true));
        assert!(looping.get("value").is_none(), "check must not evaluate");
    }

    #[test]
    fn check_command_runs_the_law_harness_on_request() {
        let bad_eq = "class Eq a where { eq :: a -> a -> Bool; };\n\
                      instance Eq Int where { eq = primLeInt; };";
        let lines = vec![
            check_req(1, bad_eq, true, false),
            check_req(2, bad_eq, false, false),
        ];
        let (out, _) = serve_lines(&lines, &ServeConfig::default());
        let vals = parse_all(&out);
        let with_laws = by_id(&vals, 1);
        let diags = with_laws
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .unwrap_or_else(|| panic!("diagnostics array: {out:?}"));
        let violation = diags
            .iter()
            .find(|d| d.get("code").and_then(|c| c.as_str()) == Some("L0011"))
            .unwrap_or_else(|| panic!("no L0011 in {diags:?}"));
        assert!(violation
            .get("message")
            .and_then(|m| m.as_str())
            .is_some_and(|m| m.contains("symmetry")));
        // Laws default to warn, so the verdict stays ok.
        assert_eq!(with_laws.get("ok").and_then(|b| b.as_bool()), Some(true));
        // Without check_laws the harness never runs.
        let without = by_id(&vals, 2);
        let diags = without
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .unwrap_or_else(|| panic!("diagnostics array: {out:?}"));
        assert!(diags
            .iter()
            .all(|d| d.get("code").and_then(|c| c.as_str()) != Some("L0011")));
    }

    #[test]
    fn string_ids_echo_verbatim() {
        let line = "{\"id\": \"req-a\", \"program\": \"main = 1;\"}".to_string();
        let (out, _) = serve_lines(&[line], &ServeConfig::default());
        let vals = parse_all(&out);
        assert_eq!(vals[0].get("id").and_then(|s| s.as_str()), Some("req-a"));
    }

    #[test]
    fn retry_after_hint_grows_with_queue_occupancy() {
        // Empty-ish queues hint the base; deeper backlogs per worker
        // hint proportionally longer.
        assert_eq!(retry_after_hint(50, 0, 4), 50);
        assert_eq!(retry_after_hint(50, 2, 4), 50);
        assert_eq!(retry_after_hint(50, 8, 4), 100);
        assert_eq!(retry_after_hint(50, 40, 4), 500);
        let mut last = 0;
        for depth in [1usize, 4, 16, 64, 256] {
            let hint = retry_after_hint(50, depth, 4);
            assert!(hint >= last, "hint must be monotone in occupancy");
            last = hint;
        }
        assert!(
            retry_after_hint(50, 256, 4) > retry_after_hint(50, 4, 4),
            "a fuller queue must yield a strictly larger hint"
        );
        // Degenerate worker counts never divide by zero.
        assert_eq!(retry_after_hint(50, 10, 0), 500);
    }

    fn recorder_cfg(faults: Option<&str>) -> ServeConfig {
        ServeConfig {
            workers: 2,
            faults: faults.map(|f| FaultPlan::parse(f).unwrap_or_else(|e| panic!("{e}"))),
            recorder: RecorderConfig {
                enabled: true,
                ..RecorderConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn recorder_off_retains_nothing_and_allocates_nothing() {
        let lines: Vec<String> = (0..4).map(|i| req(i, "main = add 1 2;")).collect();
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 4);
        assert!(summary.retained.is_empty());
        assert_eq!(summary.traces_retained(), 0);
        assert_eq!(summary.traces_dropped(), 0);
        // The off recorder is literally no heap: the same handle shape
        // every request pays one branch on.
        assert!(EventLog::off().allocates_nothing());
    }

    #[test]
    fn fault_runs_retain_deterministic_traces_naming_the_failing_stage() {
        let run = || {
            let cfg = recorder_cfg(Some("seed=7;elaborate=panic"));
            let lines: Vec<String> = (0..10).map(|i| req(i, "main = add 1 2;")).collect();
            let (_, summary) = serve_lines(&lines, &cfg);
            summary
        };
        let a = run();
        assert_eq!(a.internal(), 10);
        assert_eq!(a.traces_retained(), 10, "every errored request is kept");
        assert_eq!(a.retained.len(), 10);
        for t in &a.retained {
            assert_eq!(t.outcome, tc_trace::events::OUTCOME_INTERNAL);
            assert_eq!(t.reason, "internal");
            let fault = t
                .events
                .iter()
                .find(|e| e.kind == EventKind::FaultInjected)
                .unwrap_or_else(|| panic!("no fault event in trace {}", t.trace_id));
            assert_eq!(
                fault.arg0,
                tc_trace::Stage::Elaborate as u64,
                "the retained trace must name the failing stage"
            );
            assert!(
                t.events.iter().any(|e| {
                    e.kind == EventKind::StageStart && e.arg0 == tc_trace::Stage::Elaborate as u64
                }),
                "the failing stage started but never ended"
            );
        }
        // Identical seeded runs retain the identical trace set.
        let b = run();
        let shape = |s: &ServeSummary| {
            s.retained
                .iter()
                .map(|t| {
                    let kinds: Vec<&str> = t.events.iter().map(|e| e.kind.name()).collect();
                    (t.trace_id, t.outcome, t.reason, kinds)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b), "retained set must be deterministic");
    }

    #[test]
    fn dump_command_drains_retained_traces_as_one_valid_json_line() {
        let cfg = recorder_cfg(Some("seed=3;elaborate=panic"));
        let mut lines: Vec<String> = (1..=3).map(|i| req(i, "main = add 1 2;")).collect();
        lines.push("{\"id\": 99, \"cmd\": \"dump\"}".to_string());
        let (out, summary) = serve_lines(&lines, &cfg);
        assert_eq!(out.len(), 4);
        assert_eq!(summary.dump_requests, 1);
        assert!(
            summary.retained.is_empty(),
            "dump drains the retained store"
        );
        let vals = parse_all(&out); // parse_all validates every line
        let dump = by_id(&vals, 99);
        assert_eq!(dump.get("cmd").and_then(|s| s.as_str()), Some("dump"));
        // The dump is a barrier, so all three panicked requests are
        // already retained when it answers.
        assert_eq!(dump.get("retained").and_then(|n| n.as_u64()), Some(3));
        let traces = dump
            .get("traces")
            .and_then(|t| t.as_array())
            .unwrap_or_else(|| panic!("traces array: {out:?}"));
        assert_eq!(traces.len(), 3);
        for t in traces {
            assert_eq!(t.get("outcome").and_then(|s| s.as_str()), Some("internal"));
            let events = t
                .get("events")
                .and_then(|e| e.as_array())
                .unwrap_or_else(|| panic!("events array"));
            assert!(events.iter().any(|e| {
                e.get("kind").and_then(|k| k.as_str()) == Some("fault-injected")
                    && e.get("stage").and_then(|s| s.as_str()) == Some("elaborate")
            }));
        }
    }

    #[test]
    fn shed_requests_get_synthesized_traces_and_adaptive_hints() {
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 8,
            recorder: RecorderConfig {
                enabled: true,
                ..RecorderConfig::default()
            },
            ..ServeConfig::default()
        };
        let lines: Vec<String> = (0..60)
            .map(|i| req(i, "main = length (enumFromTo 1 400);"))
            .collect();
        let (out, summary) = serve_lines(&lines, &cfg);
        assert_eq!(out.len(), 60);
        if summary.shed == 0 {
            return; // machine drained too fast to overload; nothing to check
        }
        let vals = parse_all(&out);
        let shed = vals
            .iter()
            .find(|v| v.get("error").and_then(|e| e.as_str()) == Some("overloaded"))
            .unwrap_or_else(|| panic!("no overloaded response"));
        // Shedding only happens at full occupancy, so the adaptive
        // hint is the base scaled by the whole backlog.
        assert_eq!(
            shed.get("retry_after_ms").and_then(|n| n.as_u64()),
            Some(retry_after_hint(cfg.retry_after_ms, 8, 1))
        );
        let overloaded: Vec<_> = summary
            .retained
            .iter()
            .filter(|t| t.outcome == tc_trace::events::OUTCOME_OVERLOADED)
            .collect();
        assert_eq!(overloaded.len() as u64, summary.shed);
        for t in overloaded {
            assert!(
                t.events.iter().any(|e| e.kind == EventKind::Shed),
                "synthesized shed trace must carry the shed event"
            );
        }
    }

    #[test]
    fn stats_reports_uptime_worker_counts_and_latency_quantiles() {
        let cfg = recorder_cfg(None);
        let lines = vec![
            req(1, "main = add 1 2;"),
            req(2, "main = member 3 (enumFromTo 1 5);"),
            "{\"id\": 90, \"cmd\": \"dump\"}".to_string(), // barrier
            "{\"id\": 91, \"cmd\": \"stats\"}".to_string(),
        ];
        let (out, _) = serve_lines(&lines, &cfg);
        let vals = parse_all(&out);
        let stats = by_id(&vals, 91);
        assert!(stats.get("uptime_ms").and_then(|n| n.as_u64()).is_some());
        let workers = stats
            .get("workers")
            .and_then(|w| w.as_array())
            .unwrap_or_else(|| panic!("workers array: {out:?}"));
        assert_eq!(workers.len(), cfg.workers);
        let total: u64 = workers.iter().filter_map(|w| w.as_u64()).sum();
        // The dump barrier ran first, so both requests are counted.
        assert_eq!(total, 2);
        let ok = stats
            .get("latency")
            .and_then(|l| l.get("ok"))
            .unwrap_or_else(|| panic!("latency.ok: {out:?}"));
        assert_eq!(ok.get("count").and_then(|n| n.as_u64()), Some(2));
        assert!(ok.get("p50").and_then(|v| v.as_f64()).is_some());
        assert!(ok.get("p99").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn head_sampling_and_latency_threshold_retain_ok_traces() {
        let mut cfg = recorder_cfg(None);
        cfg.recorder.sample_every = 2;
        let lines: Vec<String> = (1..=4).map(|i| req(i, "main = add 1 2;")).collect();
        let (_, summary) = serve_lines(&lines, &cfg);
        let ids: Vec<u64> = summary.retained.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 4], "every 2nd request is head-sampled");
        for t in &summary.retained {
            assert_eq!(t.reason, "sampled");
            // A sampled ok trace carries real pipeline events.
            assert!(t.events.iter().any(|e| e.kind == EventKind::StageStart));
            assert!(
                t.events
                    .iter()
                    .any(|e| e.kind == EventKind::RequestEnd
                        && e.arg0 == tc_trace::events::OUTCOME_OK)
            );
        }

        let mut cfg = recorder_cfg(None);
        cfg.recorder.latency_threshold_us = 0; // everything is "slow"
        let lines = vec![req(1, "main = add 1 2;")];
        let (_, summary) = serve_lines(&lines, &cfg);
        assert_eq!(summary.retained.len(), 1);
        assert_eq!(summary.retained[0].reason, "slow");
    }

    #[test]
    fn health_probe_answers_on_stdin_and_stays_out_of_request_counters() {
        let lines = vec![
            req(1, "main = add 1 2;"),
            "{\"id\": 2, \"cmd\": \"health\"}".to_string(),
        ];
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(summary.health_requests, 1);
        // A probe is not a request: only the run counts.
        assert_eq!(summary.fleet.counter(CounterId::ServeRequests), 1);
        let vals = parse_all(&out);
        let h = by_id(&vals, 2);
        assert_eq!(h.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(h.get("cmd").and_then(|s| s.as_str()), Some("health"));
        assert_eq!(h.get("healthy").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(h.get("transport").and_then(|s| s.as_str()), Some("stdin"));
        let queue = h.get("queue").unwrap_or_else(|| panic!("queue: {out:?}"));
        assert_eq!(
            queue.get("capacity").and_then(|n| n.as_u64()),
            Some(ServeConfig::default().queue_capacity as u64)
        );
        assert_eq!(queue.get("accepting").and_then(|b| b.as_bool()), Some(true));
        let workers = h
            .get("workers")
            .unwrap_or_else(|| panic!("workers: {out:?}"));
        assert_eq!(
            workers.get("configured").and_then(|n| n.as_u64()),
            Some(ServeConfig::default().workers as u64)
        );
        let window = h
            .get("shed_window")
            .unwrap_or_else(|| panic!("shed_window: {out:?}"));
        assert_eq!(
            window.get("seconds").and_then(|n| n.as_u64()),
            Some(SHED_WINDOW_SECS)
        );
        // The run was admitted inside the window and nothing shed.
        assert_eq!(window.get("admitted").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(window.get("shed").and_then(|n| n.as_u64()), Some(0));
    }

    #[test]
    fn watch_on_stdin_is_rejected_as_bad_request() {
        let lines = vec!["{\"id\": 1, \"cmd\": \"watch\", \"interval_ms\": 50}".to_string()];
        let (out, summary) = serve_lines(&lines, &ServeConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(summary.watch_requests, 0, "nothing subscribed");
        assert_eq!(summary.bad_requests, 1);
        let vals = parse_all(&out);
        assert_eq!(
            vals[0].get("error").and_then(|s| s.as_str()),
            Some("bad-request")
        );
        assert!(vals[0]
            .get("detail")
            .and_then(|s| s.as_str())
            .is_some_and(|d| d.contains("socket")));
    }

    #[test]
    fn stats_reports_transport_and_active_connections() {
        let lines = vec!["{\"id\": 1, \"cmd\": \"stats\"}".to_string()];
        let (out, _) = serve_lines(&lines, &ServeConfig::default());
        let vals = parse_all(&out);
        let stats = by_id(&vals, 1);
        assert_eq!(
            stats.get("transport").and_then(|s| s.as_str()),
            Some("stdin")
        );
        assert_eq!(
            stats.get("active_connections").and_then(|n| n.as_u64()),
            Some(0)
        );
    }

    /// A `Write` that appends into shared memory, for capturing the
    /// access log inside a test.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock_unpoisoned(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn access_log_records_every_completion_even_unretained_ones() {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let cfg = ServeConfig {
            access_log: Some(AccessLog::to_writer(Box::new(buf.clone()))),
            ..ServeConfig::default()
        };
        let lines = vec![
            req(1, "main = add 1 2;"),
            "{not json".to_string(),
            req(3, "main = mul 2 3;"),
        ];
        let (out, summary) = serve_lines(&lines, &cfg);
        assert_eq!(out.len(), 3);
        // The recorder is off, so no trace was retained — but every
        // request still left an access record.
        assert!(summary.retained.is_empty());
        let text = String::from_utf8_lossy(&lock_unpoisoned(&buf.0)).to_string();
        let records: Vec<json::Value> = text
            .lines()
            .map(|l| json::parse(l).unwrap_or_else(|e| panic!("access line {l:?}: {e}")))
            .collect();
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(r.get("seq").and_then(|n| n.as_u64()).is_some());
            assert!(r.get("outcome").and_then(|s| s.as_str()).is_some());
            assert!(r.get("latency_us").and_then(|n| n.as_u64()).is_some());
        }
        let bad = records
            .iter()
            .find(|r| r.get("outcome").and_then(|s| s.as_str()) == Some("bad-request"))
            .unwrap_or_else(|| panic!("no bad-request access record in {text}"));
        assert!(
            bad.get("worker")
                .is_some_and(|w| matches!(w, json::Value::Null)),
            "a request that never reached the pool has no worker"
        );
        let ok: Vec<_> = records
            .iter()
            .filter(|r| r.get("outcome").and_then(|s| s.as_str()) == Some("ok"))
            .collect();
        assert_eq!(ok.len(), 2);
        for r in ok {
            assert!(r.get("worker").and_then(|n| n.as_u64()).is_some());
        }
    }

    #[test]
    fn watch_ticks_difference_against_the_previous_snapshot_and_reconcile() {
        // Drive the Core directly: admission-side counters are enough
        // to exercise the delta arithmetic without a worker pool.
        let core = Core::new(&ServeConfig::default(), "stdin");
        let id = ReqId::Num(7);
        {
            let mut reg = lock_unpoisoned(&core.admission_reg);
            reg.add(CounterId::ServeRequests, 5);
            reg.observe(HistogramId::ServeLatencyOkUs, 100);
        }
        let zero = MetricsSnapshot::default();
        let (line1, snap1) = core.watch_tick(&id, 1, 1000, &zero);
        let v1 = json::parse(&line1).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(v1.get("cmd").and_then(|s| s.as_str()), Some("watch"));
        assert_eq!(v1.get("tick").and_then(|n| n.as_u64()), Some(1));
        // 5 requests over a 1000 ms window.
        assert_eq!(v1.get("qps").and_then(|n| n.as_f64()), Some(5.0));
        {
            let mut reg = lock_unpoisoned(&core.admission_reg);
            reg.add(CounterId::ServeRequests, 3);
        }
        let (line2, snap2) = core.watch_tick(&id, 2, 1000, &snap1);
        let v2 = json::parse(&line2).unwrap_or_else(|e| panic!("{e}"));
        // Only the increment since the previous tick is reported.
        assert_eq!(v2.get("qps").and_then(|n| n.as_f64()), Some(3.0));
        // Reconciliation: zero + delta1 + delta2 == the absolute
        // snapshot at the last tick.
        let mut summed = MetricsSnapshot::default();
        summed.absorb(&snap1.delta(&zero));
        summed.absorb(&snap2.delta(&snap1));
        assert_eq!(
            summed.counter(CounterId::ServeRequests),
            snap2.counter(CounterId::ServeRequests)
        );
        assert_eq!(summed.counter(CounterId::ServeRequests), 8);
        assert_eq!(
            summed.histogram(HistogramId::ServeLatencyOkUs).count,
            snap2.histogram(HistogramId::ServeLatencyOkUs).count
        );
    }
}
