//! TCP socket transport: the same newline-delimited JSON protocol as
//! the stdin transport, served to many concurrent clients.
//!
//! Layout: one accept thread, one detached reader thread per
//! connection feeding the shared admission queue, one writer thread
//! per connection draining an [`mpsc`] channel so response lines never
//! interleave. Workers route each response back to the admitting
//! connection because the reply sender travels *with* the job through
//! the queue — there is no global response bus to misdeliver on.
//!
//! Framing is byte-oriented: `BufReader::read_line` assembles a frame
//! from however many TCP segments it arrived in, so a request split
//! across writes (or many requests coalesced into one segment) parses
//! identically to the stdin transport.
//!
//! `watch` subscriptions get a dedicated ticker thread per
//! subscription; the connection's `closed` flag (set on reader EOF or
//! writer error) ends the stream within one interval, so a client
//! disconnecting mid-watch leaks nothing.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tc_trace::MetricsSnapshot;

use crate::{install_fault_panic_hook, Admitted, Core, ReqId, ServeConfig, ServeSummary};

/// A running socket server. Dropping the handle leaks the listener
/// threads; call [`SocketHandle::shutdown`] (tests, embedders) or
/// [`SocketHandle::wait`] (the CLI's foreground mode) to finish the
/// session and collect its [`ServeSummary`].
pub struct SocketHandle {
    core: Arc<Core>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Bind the server core to an already-bound listener and start
/// accepting. The listener is taken by value so the caller can bind
/// to port 0 first and read the assigned port from
/// [`SocketHandle::addr`].
pub fn serve_socket(listener: TcpListener, cfg: &ServeConfig) -> io::Result<SocketHandle> {
    install_fault_panic_hook();
    let addr = listener.local_addr()?;
    let core = Arc::new(Core::new(cfg, "socket"));
    let stop = Arc::new(AtomicBool::new(false));
    let workers = (0..core.workers)
        .map(|i| {
            let core = Arc::clone(&core);
            thread::spawn(move || core.worker_loop(i))
        })
        .collect();
    let accept = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        thread::spawn(move || accept_loop(&listener, &core, &stop))
    };
    Ok(SocketHandle {
        core,
        addr,
        stop,
        accept: Some(accept),
        workers,
    })
}

impl SocketHandle {
    /// The bound address (resolves port 0 to the assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the listener stops accepting — the CLI's
    /// foreground mode, which runs until the process is killed.
    pub fn wait(mut self) -> ServeSummary {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.finish()
    }

    /// Stop accepting, drain the admission queue, join the worker
    /// pool, and fold the session into a summary. In-flight requests
    /// finish and their responses are still delivered.
    pub fn shutdown(mut self) -> ServeSummary {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection pokes the
        // loop awake so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.finish()
    }

    fn finish(&mut self) -> ServeSummary {
        self.core.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.core.summary()
    }
}

fn accept_loop(listener: &TcpListener, core: &Arc<Core>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // A failed accept (client gone between SYN and accept) is the
        // client's problem, not the server's.
        let Ok(stream) = stream else { continue };
        let core = Arc::clone(core);
        thread::spawn(move || serve_connection(&core, stream));
    }
}

/// The per-connection reader: admit every line the client sends, and
/// spawn a ticker for each `watch` subscription. Runs until EOF or a
/// read error, then flips the shared `closed` flag so tickers stop.
fn serve_connection(core: &Arc<Core>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    core.active_connections.fetch_add(1, Ordering::SeqCst);
    let closed = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<String>();
    {
        let core = Arc::clone(core);
        let closed = Arc::clone(&closed);
        // The writer exits once every sender is gone: the reader's tx
        // below, the clones queued alongside jobs, and the tickers'.
        thread::spawn(move || connection_writer(&core, write_half, &rx, &closed));
    }

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Admitted::Watch { id, interval_ms } = core.handle_line(trimmed, &tx) {
            let _ = tx.send(core.watch_ack(&id, interval_ms));
            let core = Arc::clone(core);
            let tx = tx.clone();
            let closed = Arc::clone(&closed);
            thread::spawn(move || watch_loop(&core, &tx, &closed, &id, interval_ms));
        }
    }
    closed.store(true, Ordering::SeqCst);
    core.active_connections.fetch_sub(1, Ordering::SeqCst);
}

/// The per-connection writer: one response line per channel message,
/// flushed eagerly so probes and watch ticks reach the client without
/// waiting for buffer pressure. A write error marks the connection
/// closed and keeps draining so workers never block on a dead peer.
fn connection_writer(
    core: &Arc<Core>,
    stream: TcpStream,
    rx: &mpsc::Receiver<String>,
    closed: &Arc<AtomicBool>,
) {
    let mut out = BufWriter::new(stream);
    let mut sink_broken = false;
    for line in rx {
        if sink_broken {
            core.write_errors.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        match writeln!(out, "{line}").and_then(|()| out.flush()) {
            Ok(()) => {
                core.responses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                sink_broken = true;
                closed.store(true, Ordering::SeqCst);
                core.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The per-subscription ticker: one fleet-delta line per interval
/// until the connection closes. The first tick differences against
/// the zero snapshot so summed deltas reconcile with absolute stats.
fn watch_loop(
    core: &Arc<Core>,
    tx: &mpsc::Sender<String>,
    closed: &Arc<AtomicBool>,
    id: &ReqId,
    interval_ms: u64,
) {
    let mut prev = MetricsSnapshot::default();
    let mut tick = 0u64;
    let mut last = Instant::now();
    loop {
        thread::sleep(Duration::from_millis(interval_ms));
        if closed.load(Ordering::SeqCst) {
            break;
        }
        tick += 1;
        // Rates use the *measured* window: sleep jitter must not
        // distort qps.
        let window_ms = (last.elapsed().as_millis() as u64).max(1);
        last = Instant::now();
        let (line, now) = core.watch_tick(id, tick, window_ms, &prev);
        if tx.send(line).is_err() {
            break;
        }
        prev = now;
    }
}
