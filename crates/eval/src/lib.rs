//! `tc-eval`: a lazy (call-by-need) evaluator for the
//! dictionary-passing core, sandboxed behind an explicit [`Budget`].
//!
//! Dictionaries are ordinary tuples at runtime, so nothing here knows
//! about classes: by the time code reaches the evaluator, overloading
//! has been compiled away exactly as in Peterson & Jones.
//!
//! Robustness model — evaluation of *any* core program terminates with
//! a `Result`, never a panic, never an unbounded hang:
//!
//! * **fuel**: every evaluation step costs one unit; exhaustion returns
//!   [`EvalError::FuelExhausted`] deterministically (same program, same
//!   budget, same step of failure);
//! * **depth**: native recursion is capped ([`Budget::max_depth`],
//!   clamped to an internal ceiling) so deep applications return
//!   [`EvalError::DepthExceeded`] instead of overflowing the stack;
//! * **allocations**: thunks, closures, environment frames and cons
//!   cells are counted and capped ([`EvalError::AllocationLimit`]);
//! * **blackholing**: a thunk found under evaluation by its own
//!   evaluation is a dependency cycle, reported as
//!   [`EvalError::BlackHole`] (e.g. `let x = x in x`);
//! * type-shaped runtime errors (`if` on a non-Bool, projecting a
//!   non-tuple, ...) are structured errors — they can only arise from
//!   programs that already carry typecheck diagnostics, but the
//!   evaluator still refuses gracefully rather than trusting upstream.
//!
//! All evaluator-created thunks live in an arena owned by the
//! [`Evaluator`]; dropping it severs every thunk's children first, so
//! dismantling a million-cell lazy list (or a cyclic `letrec`
//! environment) never recurses deeply and never leaks.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use tc_coreir::{CoreExpr, CoreProgram, Literal};
use tc_trace::{CancelToken, EventKind, EventScope, Stage};

/// Resource limits for one evaluation session.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum evaluation steps.
    pub fuel: u64,
    /// Maximum native recursion depth (clamped to [`DEPTH_CEILING`]).
    pub max_depth: usize,
    /// Maximum number of heap objects (thunks, frames, closures).
    pub max_allocs: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            fuel: 1_000_000,
            max_depth: 2_000,
            max_allocs: 1_000_000,
        }
    }
}

impl Budget {
    /// A tiny budget, handy for tests and for probing adversarial
    /// programs quickly.
    pub fn small() -> Self {
        Budget {
            fuel: 10_000,
            max_depth: 200,
            max_allocs: 10_000,
        }
    }
}

/// Hard ceiling on `max_depth`: each level of guest recursion costs a
/// bounded number of native frames, and this keeps worst-case native
/// stack usage a few megabytes regardless of what the caller asks for.
pub const DEPTH_CEILING: usize = 10_000;

/// The cancellation token is polled when `fuel_left & MASK == 0`, i.e.
/// once every 4096 evaluation steps — frequent enough that a deadline
/// stops a runaway program within microseconds, rare enough that the
/// clock read never shows up in profiles.
const CANCEL_POLL_MASK: u64 = 0xFFF;

/// Aggregate resource counters for one evaluation session. Cheap to
/// collect (always on), snapshotted by [`Evaluator::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Evaluation steps consumed.
    pub fuel_used: u64,
    /// Heap objects (thunks, frames, closures) allocated. Nothing is
    /// freed mid-run, so this is also the peak live count.
    pub peak_allocs: u64,
    /// Call-by-need suspensions created (a subset of `peak_allocs`).
    pub thunks_created: u64,
    /// Thunk forces, including re-forces of already-evaluated cells.
    pub forces: u64,
}

/// Per-binding attribution for one top-level binding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingProfile {
    pub name: String,
    /// Times the binding's thunk was forced (first force evaluates;
    /// later forces are cache hits — a high count means a hot shared
    /// value, not repeated work).
    pub forces: u64,
    /// Fuel burned while evaluating this binding's right-hand side
    /// (innermost-binding attribution: work done inside another global
    /// forced from here is charged to that global).
    pub fuel: u64,
    /// Thunks created while evaluating this binding's right-hand side.
    pub thunks: u64,
}

/// The evaluator profile: per-binding counters, hottest (most fuel)
/// first. Built by [`Evaluator::take_profile`] when profiling was
/// enabled with [`Evaluator::enable_profiling`].
#[derive(Debug, Clone, Default)]
pub struct EvalProfile {
    pub bindings: Vec<BindingProfile>,
}

impl EvalProfile {
    pub fn get(&self, name: &str) -> Option<&BindingProfile> {
        self.bindings.iter().find(|b| b.name == name)
    }

    /// Human-readable hot-bindings table, hottest first.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10} {:>8}",
            "binding", "forces", "fuel", "thunks"
        );
        for b in &self.bindings {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>8}",
                b.name, b.forces, b.fuel, b.thunks
            );
        }
        out
    }
}

/// Internal profiling state, boxed behind an `Option` so the
/// profiling-off hot path costs one branch and allocates nothing.
#[derive(Debug, Default)]
struct ProfileState {
    entries: Vec<BindingProfile>,
    index: HashMap<String, usize>,
    /// `Rc` pointer of a global binding's thunk → entry index.
    owner: HashMap<usize, usize>,
    /// Entry indices of bindings whose right-hand side is currently
    /// being evaluated, innermost last. Fuel/thunk ticks are charged
    /// to the top.
    stack: Vec<usize>,
}

impl ProfileState {
    fn entry_index(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.entries.len();
        self.entries.push(BindingProfile {
            name: name.to_string(),
            ..BindingProfile::default()
        });
        self.index.insert(name.to_string(), i);
        i
    }

    fn charge_fuel(&mut self) {
        if let Some(&i) = self.stack.last() {
            if let Some(e) = self.entries.get_mut(i) {
                e.fuel += 1;
            }
        }
    }

    fn charge_thunk(&mut self) {
        if let Some(&i) = self.stack.last() {
            if let Some(e) = self.entries.get_mut(i) {
                e.thunks += 1;
            }
        }
    }
}

/// Where the budget stood when a limit tripped: which top-level
/// binding was being evaluated (innermost attribution, `None` when the
/// failure happened outside any global's right-hand side) and how much
/// of each resource remained. Carried in the payload of the budget
/// [`EvalError`] variants so servers and `--stats` consumers can
/// report exhaustion structurally instead of scraping messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Innermost top-level binding under evaluation, if any.
    pub binding: Option<String>,
    /// Fuel remaining (0 for fuel exhaustion, by construction).
    pub fuel_left: u64,
    /// Heap-object allocations remaining.
    pub allocs_left: u64,
    /// Native nesting depth at the failure point (0 when the failing
    /// site does not track depth, e.g. allocation).
    pub depth: usize,
}

/// Structured evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    FuelExhausted(BudgetSnapshot),
    DepthExceeded(BudgetSnapshot),
    AllocationLimit(BudgetSnapshot),
    /// The session's [`CancelToken`] fired (deadline or explicit
    /// cancellation); the snapshot records how far evaluation got.
    Cancelled(BudgetSnapshot),
    /// A value's evaluation demanded itself (`let x = x in x`).
    BlackHole,
    UnboundVar(String),
    NotAFunction,
    ConditionNotBool,
    NotAnInt,
    NotABool,
    NotAList,
    BadProjection {
        slot: usize,
    },
    EmptyList(&'static str),
    DivideByZero,
    IntOverflow,
    /// A `CoreExpr::Fail` node (elaboration hole) or the `error`
    /// builtin was forced.
    Failure(String),
    /// A `case` expression's scrutinee matched none of the
    /// alternatives at runtime.
    MatchFailure,
}

impl EvalError {
    /// Stable machine-readable error class, for structured reports
    /// (serve responses, `--stats` JSON). Kebab-case, never localized.
    pub fn code(&self) -> &'static str {
        match self {
            EvalError::FuelExhausted(_) => "fuel-exhausted",
            EvalError::DepthExceeded(_) => "depth-exceeded",
            EvalError::AllocationLimit(_) => "allocation-limit",
            EvalError::Cancelled(_) => "cancelled",
            EvalError::BlackHole => "black-hole",
            EvalError::UnboundVar(_) => "unbound-var",
            EvalError::NotAFunction => "not-a-function",
            EvalError::ConditionNotBool => "condition-not-bool",
            EvalError::NotAnInt => "not-an-int",
            EvalError::NotABool => "not-a-bool",
            EvalError::NotAList => "not-a-list",
            EvalError::BadProjection { .. } => "bad-projection",
            EvalError::EmptyList(_) => "empty-list",
            EvalError::DivideByZero => "divide-by-zero",
            EvalError::IntOverflow => "int-overflow",
            EvalError::Failure(_) => "failure",
            EvalError::MatchFailure => "match-failure",
        }
    }

    /// The budget snapshot carried by resource-limit and cancellation
    /// errors (`None` for the type-shaped runtime errors).
    pub fn budget(&self) -> Option<&BudgetSnapshot> {
        match self {
            EvalError::FuelExhausted(s)
            | EvalError::DepthExceeded(s)
            | EvalError::AllocationLimit(s)
            | EvalError::Cancelled(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Budget messages deliberately omit the snapshot payload:
        // remaining-resource numbers differ across resolution modes
        // for the same program, and the differential suite compares
        // rendered output mode-against-mode.
        match self {
            EvalError::FuelExhausted(_) => f.write_str("evaluation fuel exhausted"),
            EvalError::DepthExceeded(_) => f.write_str("evaluation depth limit exceeded"),
            EvalError::AllocationLimit(_) => f.write_str("evaluation allocation limit exceeded"),
            EvalError::Cancelled(_) => f.write_str("evaluation cancelled (deadline)"),
            EvalError::BlackHole => {
                f.write_str("<<loop>>: value depends on itself while being computed")
            }
            EvalError::UnboundVar(n) => write!(f, "unbound variable `{n}` at runtime"),
            EvalError::NotAFunction => f.write_str("applied a non-function value"),
            EvalError::ConditionNotBool => f.write_str("`if` condition was not a Bool"),
            EvalError::NotAnInt => f.write_str("expected an Int"),
            EvalError::NotABool => f.write_str("expected a Bool"),
            EvalError::NotAList => f.write_str("expected a list"),
            EvalError::BadProjection { slot } => {
                write!(f, "dictionary projection #{slot} out of range")
            }
            EvalError::EmptyList(op) => write!(f, "`{op}` of empty list"),
            EvalError::DivideByZero => f.write_str("division by zero"),
            EvalError::IntOverflow => f.write_str("integer overflow"),
            EvalError::Failure(msg) => write!(f, "runtime failure: {msg}"),
            // No payload: the differential suite compares rendered
            // output across resolution modes byte for byte.
            EvalError::MatchFailure => f.write_str("no case alternative matched"),
        }
    }
}

/// Runtime expression: the core IR with shared (`Rc`) subtrees, so
/// closures capture bodies without cloning them.
pub enum RExpr {
    Var(String),
    Lit(Literal),
    App(Rc<RExpr>, Rc<RExpr>),
    Lam(String, Rc<RExpr>),
    LetRec(Vec<(String, Rc<RExpr>)>, Rc<RExpr>),
    If(Rc<RExpr>, Rc<RExpr>, Rc<RExpr>),
    Tuple(Vec<Rc<RExpr>>),
    Proj(usize, Rc<RExpr>),
    /// A data constructor: a curried function of `arity` arguments
    /// that builds a [`Value::Data`].
    Con {
        name: Rc<str>,
        tag: u32,
        arity: usize,
    },
    Case(Rc<RExpr>, Vec<RArm>),
    Fail(String),
}

/// One runtime case alternative. `con: None` is the default arm, whose
/// single binder (if not `_`) binds the whole scrutinee.
pub struct RArm {
    pub con: Option<(Rc<str>, u32)>,
    pub binders: Vec<String>,
    pub body: Rc<RExpr>,
}

/// One-time translation; recursion depth is bounded by the elaborator's
/// output shape (parser depth budget plus constant wrappers).
fn lower(e: &CoreExpr) -> Rc<RExpr> {
    Rc::new(match e {
        CoreExpr::Var(n) => RExpr::Var(n.clone()),
        CoreExpr::Lit(l) => RExpr::Lit(*l),
        CoreExpr::App(f, x) => RExpr::App(lower(f), lower(x)),
        CoreExpr::Lam(p, b) => RExpr::Lam(p.clone(), lower(b)),
        CoreExpr::LetRec(bs, b) => RExpr::LetRec(
            bs.iter().map(|(n, v)| (n.clone(), lower(v))).collect(),
            lower(b),
        ),
        CoreExpr::If(c, t, f) => RExpr::If(lower(c), lower(t), lower(f)),
        CoreExpr::Tuple(xs) => RExpr::Tuple(xs.iter().map(lower).collect()),
        CoreExpr::Proj(i, b) => RExpr::Proj(*i, lower(b)),
        CoreExpr::Con { name, tag, arity } => RExpr::Con {
            name: Rc::from(name.as_str()),
            tag: *tag,
            arity: *arity,
        },
        CoreExpr::Case(scrut, arms) => RExpr::Case(
            lower(scrut),
            arms.iter()
                .map(|a| RArm {
                    con: a.con.as_ref().map(|(n, t)| (Rc::from(n.as_str()), *t)),
                    binders: a.binders.clone(),
                    body: lower(&a.body),
                })
                .collect(),
        ),
        // A placeholder surviving to runtime is an elaborator invariant
        // violation; degrade to a structured failure.
        CoreExpr::Placeholder(id) => RExpr::Fail(format!("unresolved placeholder #{id}")),
        CoreExpr::Fail(m) => RExpr::Fail(m.clone()),
    })
}

/// Shared, mutable reference to a thunk.
pub type ThunkRef = Rc<RefCell<Thunk>>;

/// A call-by-need cell: unevaluated suspension, in-progress marker
/// (blackhole), or final value.
pub enum Thunk {
    Unevaluated(Rc<RExpr>, Env),
    /// Under evaluation (blackhole), and also the tombstone state used
    /// when the evaluator's arena severs object graphs on drop.
    Evaluating,
    Evaluated(Value),
}

pub struct Frame {
    name: String,
    thunk: ThunkRef,
    next: Env,
}

pub type Env = Option<Rc<Frame>>;

fn env_lookup(env: &Env, name: &str) -> Option<ThunkRef> {
    let mut cur = env;
    while let Some(frame) = cur {
        if frame.name == name {
            return Some(frame.thunk.clone());
        }
        cur = &frame.next;
    }
    None
}

/// Weak-head-normal-form values.
#[derive(Clone)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Closure {
        param: String,
        body: Rc<RExpr>,
        env: Env,
    },
    /// Partially applied builtin.
    Prim {
        name: &'static str,
        applied: Vec<ThunkRef>,
    },
    /// A dictionary.
    Tuple(Vec<ThunkRef>),
    Nil,
    Cons(ThunkRef, ThunkRef),
    /// A user-defined data constructor, possibly partially applied
    /// (`fields.len() < arity`); saturated once `fields.len() == arity`.
    Data {
        name: Rc<str>,
        tag: u32,
        arity: usize,
        fields: Vec<ThunkRef>,
    },
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "Int({n})"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Closure { param, .. } => write!(f, "Closure(\\{param} -> ...)"),
            Value::Prim { name, applied } => write!(f, "Prim({name}/{})", applied.len()),
            Value::Tuple(xs) => write!(f, "Tuple(#{})", xs.len()),
            Value::Nil => f.write_str("Nil"),
            Value::Cons(_, _) => f.write_str("Cons(..)"),
            Value::Data { name, fields, .. } => write!(f, "Data({name}/{})", fields.len()),
        }
    }
}

/// Builtin dispatch: interned name and arity. Arity-0 builtins are
/// values (or immediate failures).
fn prim(name: &str) -> Option<(&'static str, usize)> {
    Some(match name {
        "primAddInt" => ("primAddInt", 2),
        "primSubInt" => ("primSubInt", 2),
        "primMulInt" => ("primMulInt", 2),
        "primDivInt" => ("primDivInt", 2),
        "primModInt" => ("primModInt", 2),
        "primNegInt" => ("primNegInt", 1),
        "primEqInt" => ("primEqInt", 2),
        "primLtInt" => ("primLtInt", 2),
        "primLeInt" => ("primLeInt", 2),
        "primEqBool" => ("primEqBool", 2),
        "cons" => ("cons", 2),
        "null" => ("null", 1),
        "head" => ("head", 1),
        "tail" => ("tail", 1),
        "nil" => ("nil", 0),
        "error" => ("error", 0),
        _ => return None,
    })
}

/// The evaluation session. Owns the budget state and the thunk arena.
pub struct Evaluator {
    globals: HashMap<String, Rc<RExpr>>,
    global_cache: HashMap<String, ThunkRef>,
    budget: Budget,
    fuel_left: u64,
    allocs_left: u64,
    max_depth: usize,
    thunks_created: u64,
    forces: u64,
    /// Per-binding profiler; `None` (the default) keeps the hot path
    /// at one branch per tick and allocates nothing.
    profile: Option<Box<ProfileState>>,
    /// Cooperative cancellation, polled every [`CANCEL_POLL_MASK`]+1
    /// fuel ticks so a deadline stops a runaway evaluation promptly
    /// without paying a clock read per step.
    cancel: Option<CancelToken>,
    /// Flight-recorder scope: a budget checkpoint event is recorded at
    /// the cancellation-poll cadence, and a `cancelled` event when the
    /// fuel loop observes a tripped token. Off (one branch) by default.
    events: EventScope,
    /// `Rc` pointer of a global binding's thunk → binding name, kept
    /// regardless of profiling so budget errors can name the binding
    /// that was being evaluated.
    global_names: HashMap<usize, Rc<str>>,
    /// Global bindings whose right-hand side is currently being
    /// evaluated, innermost last (the always-on counterpart of
    /// [`ProfileState::stack`]).
    binding_stack: Vec<Rc<str>>,
    /// Every thunk ever created. On drop, each is overwritten with a
    /// childless tombstone, severing all links (including `letrec`
    /// cycles) so deep structures are dismantled iteratively.
    arena: Vec<ThunkRef>,
}

impl Drop for Evaluator {
    fn drop(&mut self) {
        for t in &self.arena {
            if let Ok(mut b) = t.try_borrow_mut() {
                *b = Thunk::Evaluating;
            }
        }
    }
}

/// A core program's globals, lowered once. Lowering is linear in
/// program size, so callers that evaluate many entry points of the
/// same program (the class-law harness, bench loops) should lower once
/// and build each [`Evaluator`] from the shared result — the lowered
/// bodies are `Rc`-shared, so the per-evaluator cost is one map clone.
#[derive(Clone)]
pub struct LoweredProgram {
    globals: HashMap<String, Rc<RExpr>>,
}

impl LoweredProgram {
    pub fn new(prog: &CoreProgram) -> Self {
        LoweredProgram {
            globals: prog
                .binds
                .iter()
                .map(|(n, e)| (n.clone(), lower(e)))
                .collect(),
        }
    }
}

impl Evaluator {
    pub fn new(prog: &CoreProgram, budget: Budget) -> Self {
        Self::from_lowered(&LoweredProgram::new(prog), budget)
    }

    /// A fresh evaluator (own budget, cache, and arena) over an
    /// already-lowered program.
    pub fn from_lowered(prog: &LoweredProgram, budget: Budget) -> Self {
        Evaluator {
            globals: prog.globals.clone(),
            global_cache: HashMap::new(),
            budget,
            fuel_left: budget.fuel,
            allocs_left: budget.max_allocs,
            max_depth: budget.max_depth.min(DEPTH_CEILING),
            thunks_created: 0,
            forces: 0,
            profile: None,
            cancel: None,
            events: EventScope::off(),
            global_names: HashMap::new(),
            binding_stack: Vec::new(),
            arena: Vec::new(),
        }
    }

    /// Install a cancellation token; evaluation returns
    /// [`EvalError::Cancelled`] shortly after it fires.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Install a flight-recorder scope; budget checkpoints and
    /// cancellations record events into it.
    pub fn set_events(&mut self, events: EventScope) {
        self.events = events;
    }

    /// Where the budget stands right now, for error payloads.
    fn snapshot(&self, depth: usize) -> BudgetSnapshot {
        BudgetSnapshot {
            binding: self.binding_stack.last().map(|n| n.to_string()),
            fuel_left: self.fuel_left,
            allocs_left: self.allocs_left,
            depth,
        }
    }

    /// Fuel spent so far (for reporting).
    pub fn fuel_used(&self) -> u64 {
        self.budget.fuel - self.fuel_left
    }

    /// Snapshot the session's aggregate counters.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            fuel_used: self.fuel_used(),
            peak_allocs: self.budget.max_allocs - self.allocs_left,
            thunks_created: self.thunks_created,
            forces: self.forces,
        }
    }

    /// Turn on per-binding profiling (idempotent). Enable before the
    /// first [`Evaluator::eval_entry`] call for complete attribution.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// Detach the profile accumulated so far, hottest binding (most
    /// fuel) first. `None` when profiling was never enabled.
    pub fn take_profile(&mut self) -> Option<EvalProfile> {
        let state = self.profile.take()?;
        let mut bindings = state.entries;
        bindings.sort_by(|a, b| b.fuel.cmp(&a.fuel).then_with(|| a.name.cmp(&b.name)));
        Some(EvalProfile { bindings })
    }

    fn tick(&mut self, depth: usize) -> Result<(), EvalError> {
        if self.fuel_left == 0 {
            return Err(EvalError::FuelExhausted(self.snapshot(depth)));
        }
        self.fuel_left -= 1;
        if self.fuel_left & CANCEL_POLL_MASK == 0 {
            self.events.record(
                EventKind::EvalCheckpoint,
                self.budget.fuel - self.fuel_left,
                depth as u64,
            );
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    self.events.cancelled(Stage::Eval);
                    return Err(EvalError::Cancelled(self.snapshot(depth)));
                }
            }
        }
        if let Some(p) = self.profile.as_mut() {
            p.charge_fuel();
        }
        Ok(())
    }

    fn check_depth(&self, depth: usize) -> Result<(), EvalError> {
        if depth > self.max_depth {
            return Err(EvalError::DepthExceeded(self.snapshot(depth)));
        }
        Ok(())
    }

    fn alloc(&mut self) -> Result<(), EvalError> {
        if self.allocs_left == 0 {
            return Err(EvalError::AllocationLimit(self.snapshot(0)));
        }
        self.allocs_left -= 1;
        Ok(())
    }

    fn thunk(&mut self, e: Rc<RExpr>, env: Env) -> Result<ThunkRef, EvalError> {
        self.alloc()?;
        self.thunks_created += 1;
        if let Some(p) = self.profile.as_mut() {
            p.charge_thunk();
        }
        let t = Rc::new(RefCell::new(Thunk::Unevaluated(e, env)));
        self.arena.push(t.clone());
        Ok(t)
    }

    fn frame(&mut self, name: String, thunk: ThunkRef, next: Env) -> Result<Env, EvalError> {
        self.alloc()?;
        Ok(Some(Rc::new(Frame { name, thunk, next })))
    }

    fn global_thunk(&mut self, name: &str) -> Option<ThunkRef> {
        if let Some(t) = self.global_cache.get(name) {
            return Some(t.clone());
        }
        let e = self.globals.get(name)?.clone();
        let t = self.thunk(e, None).ok()?;
        self.global_cache.insert(name.to_string(), t.clone());
        self.global_names
            .insert(Rc::as_ptr(&t) as usize, Rc::from(name));
        if let Some(p) = self.profile.as_mut() {
            let idx = p.entry_index(name);
            p.owner.insert(Rc::as_ptr(&t) as usize, idx);
        }
        Some(t)
    }

    /// Evaluate a top-level binding to weak head normal form.
    pub fn eval_entry(&mut self, name: &str) -> Result<Value, EvalError> {
        match self.global_thunk(name) {
            Some(t) => self.force(&t, 0),
            None => Err(EvalError::UnboundVar(name.to_string())),
        }
    }

    fn force(&mut self, t: &ThunkRef, depth: usize) -> Result<Value, EvalError> {
        self.tick(depth)?;
        self.check_depth(depth)?;
        self.forces += 1;
        let key = Rc::as_ptr(t) as usize;
        // Which top-level binding (if any) does this thunk belong to?
        let owner = match self.profile.as_mut() {
            Some(p) => {
                let idx = p.owner.get(&key).copied();
                if let Some(i) = idx {
                    if let Some(e) = p.entries.get_mut(i) {
                        e.forces += 1;
                    }
                }
                idx
            }
            None => None,
        };
        let state = std::mem::replace(&mut *t.borrow_mut(), Thunk::Evaluating);
        match state {
            Thunk::Evaluated(v) => {
                *t.borrow_mut() = Thunk::Evaluated(v.clone());
                Ok(v)
            }
            Thunk::Evaluating => Err(EvalError::BlackHole),
            Thunk::Unevaluated(e, env) => {
                // Attribute the binding's right-hand-side work to it:
                // always on the name stack (budget-error payloads),
                // and on the profiler stack when profiling.
                let global = self.global_names.get(&key).cloned();
                if let Some(n) = &global {
                    self.binding_stack.push(n.clone());
                }
                if let (Some(p), Some(i)) = (self.profile.as_mut(), owner) {
                    p.stack.push(i);
                }
                let v = self.eval(&e, &env, depth + 1);
                if let (Some(p), Some(_)) = (self.profile.as_mut(), owner) {
                    p.stack.pop();
                }
                if global.is_some() {
                    self.binding_stack.pop();
                }
                let v = v?;
                *t.borrow_mut() = Thunk::Evaluated(v.clone());
                Ok(v)
            }
        }
    }

    fn eval(&mut self, e: &RExpr, env: &Env, depth: usize) -> Result<Value, EvalError> {
        self.tick(depth)?;
        self.check_depth(depth)?;
        match e {
            RExpr::Var(n) => {
                if let Some(t) = env_lookup(env, n) {
                    return self.force(&t, depth + 1);
                }
                if let Some(t) = self.global_thunk(n) {
                    return self.force(&t, depth + 1);
                }
                match prim(n) {
                    Some(("nil", _)) => Ok(Value::Nil),
                    Some(("error", _)) => Err(EvalError::Failure("`error` evaluated".into())),
                    Some((name, _)) => Ok(Value::Prim {
                        name,
                        applied: Vec::new(),
                    }),
                    None => Err(EvalError::UnboundVar(n.clone())),
                }
            }
            RExpr::Lit(Literal::Int(n)) => Ok(Value::Int(*n)),
            RExpr::Lit(Literal::Bool(b)) => Ok(Value::Bool(*b)),
            RExpr::App(f, x) => {
                let fv = self.eval(f, env, depth + 1)?;
                let arg = self.thunk(x.clone(), env.clone())?;
                self.apply(fv, arg, depth)
            }
            RExpr::Lam(p, b) => {
                self.alloc()?;
                Ok(Value::Closure {
                    param: p.clone(),
                    body: b.clone(),
                    env: env.clone(),
                })
            }
            RExpr::LetRec(binds, body) => {
                // Tie the knot: thunks are created with an empty
                // environment, then patched to see the full one.
                let mut thunks = Vec::with_capacity(binds.len());
                for (_, rhs) in binds {
                    thunks.push(self.thunk(rhs.clone(), None)?);
                }
                let mut new_env = env.clone();
                for ((name, _), t) in binds.iter().zip(&thunks) {
                    new_env = self.frame(name.clone(), t.clone(), new_env)?;
                }
                for t in &thunks {
                    if let Thunk::Unevaluated(_, slot) = &mut *t.borrow_mut() {
                        *slot = new_env.clone();
                    }
                }
                self.eval(body, &new_env, depth + 1)
            }
            RExpr::If(c, t, f) => match self.eval(c, env, depth + 1)? {
                Value::Bool(true) => self.eval(t, env, depth + 1),
                Value::Bool(false) => self.eval(f, env, depth + 1),
                _ => Err(EvalError::ConditionNotBool),
            },
            RExpr::Tuple(xs) => {
                let mut ts = Vec::with_capacity(xs.len());
                for x in xs {
                    ts.push(self.thunk(x.clone(), env.clone())?);
                }
                Ok(Value::Tuple(ts))
            }
            RExpr::Proj(i, b) => match self.eval(b, env, depth + 1)? {
                Value::Tuple(xs) => match xs.get(*i) {
                    Some(t) => {
                        let t = t.clone();
                        self.force(&t, depth + 1)
                    }
                    None => Err(EvalError::BadProjection { slot: *i }),
                },
                _ => Err(EvalError::BadProjection { slot: *i }),
            },
            RExpr::Con { name, tag, arity } => {
                self.alloc()?;
                Ok(Value::Data {
                    name: name.clone(),
                    tag: *tag,
                    arity: *arity,
                    fields: Vec::new(),
                })
            }
            RExpr::Case(scrut, arms) => {
                let sv = self.eval(scrut, env, depth + 1)?;
                self.eval_case(&sv, arms, env, depth)
            }
            RExpr::Fail(msg) => Err(EvalError::Failure(msg.clone())),
        }
    }

    /// Wrap an already-evaluated value as a thunk (used to bind a case
    /// scrutinee in a default arm). Counts as an allocation.
    fn value_thunk(&mut self, v: Value) -> Result<ThunkRef, EvalError> {
        self.alloc()?;
        self.thunks_created += 1;
        let t = Rc::new(RefCell::new(Thunk::Evaluated(v)));
        self.arena.push(t.clone());
        Ok(t)
    }

    /// Select and evaluate the first matching case alternative.
    ///
    /// Constructor arms match [`Value::Data`] by constructor name, and
    /// the builtin shapes (`Bool`, `Nil`/`Cons`) by their canonical
    /// constructor names, so derived instances work uniformly over
    /// user-defined and builtin data. A default arm always matches and
    /// binds the scrutinee. An exhausted arm list is a structured
    /// [`EvalError::MatchFailure`], never a panic.
    fn eval_case(
        &mut self,
        scrut: &Value,
        arms: &[RArm],
        env: &Env,
        depth: usize,
    ) -> Result<Value, EvalError> {
        for arm in arms {
            let (con, tag) = match &arm.con {
                None => {
                    let mut new_env = env.clone();
                    if let Some(b) = arm.binders.first() {
                        if b != "_" {
                            let t = self.value_thunk(scrut.clone())?;
                            new_env = self.frame(b.clone(), t, new_env)?;
                        }
                    }
                    return self.eval(&arm.body, &new_env, depth + 1);
                }
                Some((c, t)) => (c.as_ref(), *t),
            };
            let fields: Option<Vec<ThunkRef>> = match scrut {
                Value::Data {
                    name,
                    arity,
                    fields,
                    ..
                } => {
                    if name.as_ref() == con && fields.len() == *arity {
                        Some(fields.clone())
                    } else {
                        None
                    }
                }
                Value::Bool(b) => {
                    let want = if *b { "True" } else { "False" };
                    (con == want).then(Vec::new)
                }
                Value::Nil => (con == "Nil").then(Vec::new),
                Value::Cons(h, t) => (con == "Cons").then(|| vec![h.clone(), t.clone()]),
                // A non-data scrutinee (function, tuple, int) can only
                // reach a con arm from an already-diagnosed program;
                // skip to the default arm or report a match failure.
                _ => None,
            };
            let _ = tag; // tags are denormalized; names decide matches
            if let Some(fields) = fields {
                let mut new_env = env.clone();
                for (b, f) in arm.binders.iter().zip(fields) {
                    if b != "_" {
                        new_env = self.frame(b.clone(), f, new_env)?;
                    }
                }
                return self.eval(&arm.body, &new_env, depth + 1);
            }
        }
        Err(EvalError::MatchFailure)
    }

    fn apply(&mut self, f: Value, arg: ThunkRef, depth: usize) -> Result<Value, EvalError> {
        self.tick(depth)?;
        match f {
            Value::Closure { param, body, env } => {
                let new_env = self.frame(param, arg, env)?;
                self.eval(&body, &new_env, depth + 1)
            }
            Value::Prim { name, mut applied } => {
                applied.push(arg);
                let arity = prim(name).map(|(_, a)| a).unwrap_or(0);
                if applied.len() >= arity {
                    self.run_prim(name, applied, depth)
                } else {
                    Ok(Value::Prim { name, applied })
                }
            }
            Value::Data {
                name,
                tag,
                arity,
                mut fields,
            } if fields.len() < arity => {
                self.alloc()?;
                fields.push(arg);
                Ok(Value::Data {
                    name,
                    tag,
                    arity,
                    fields,
                })
            }
            _ => Err(EvalError::NotAFunction),
        }
    }

    fn int_arg(&mut self, t: &ThunkRef, depth: usize) -> Result<i64, EvalError> {
        match self.force(t, depth + 1)? {
            Value::Int(n) => Ok(n),
            _ => Err(EvalError::NotAnInt),
        }
    }

    fn bool_arg(&mut self, t: &ThunkRef, depth: usize) -> Result<bool, EvalError> {
        match self.force(t, depth + 1)? {
            Value::Bool(b) => Ok(b),
            _ => Err(EvalError::NotABool),
        }
    }

    fn run_prim(
        &mut self,
        name: &'static str,
        args: Vec<ThunkRef>,
        depth: usize,
    ) -> Result<Value, EvalError> {
        let arith = |r: Option<i64>| r.map(Value::Int).ok_or(EvalError::IntOverflow);
        match (name, args.as_slice()) {
            ("primAddInt", [a, b]) => {
                arith(self.int_arg(a, depth)?.checked_add(self.int_arg(b, depth)?))
            }
            ("primSubInt", [a, b]) => {
                arith(self.int_arg(a, depth)?.checked_sub(self.int_arg(b, depth)?))
            }
            ("primMulInt", [a, b]) => {
                arith(self.int_arg(a, depth)?.checked_mul(self.int_arg(b, depth)?))
            }
            ("primDivInt", [a, b]) => {
                let (x, y) = (self.int_arg(a, depth)?, self.int_arg(b, depth)?);
                if y == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    arith(x.checked_div(y))
                }
            }
            ("primModInt", [a, b]) => {
                let (x, y) = (self.int_arg(a, depth)?, self.int_arg(b, depth)?);
                if y == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    arith(x.checked_rem(y))
                }
            }
            ("primNegInt", [a]) => arith(self.int_arg(a, depth)?.checked_neg()),
            ("primEqInt", [a, b]) => Ok(Value::Bool(
                self.int_arg(a, depth)? == self.int_arg(b, depth)?,
            )),
            ("primLtInt", [a, b]) => Ok(Value::Bool(
                self.int_arg(a, depth)? < self.int_arg(b, depth)?,
            )),
            ("primLeInt", [a, b]) => Ok(Value::Bool(
                self.int_arg(a, depth)? <= self.int_arg(b, depth)?,
            )),
            ("primEqBool", [a, b]) => Ok(Value::Bool(
                self.bool_arg(a, depth)? == self.bool_arg(b, depth)?,
            )),
            // cons is lazy in both arguments.
            ("cons", [h, t]) => Ok(Value::Cons(h.clone(), t.clone())),
            ("null", [l]) => match self.force(l, depth + 1)? {
                Value::Nil => Ok(Value::Bool(true)),
                Value::Cons(_, _) => Ok(Value::Bool(false)),
                _ => Err(EvalError::NotAList),
            },
            ("head", [l]) => match self.force(l, depth + 1)? {
                Value::Cons(h, _) => self.force(&h, depth + 1),
                Value::Nil => Err(EvalError::EmptyList("head")),
                _ => Err(EvalError::NotAList),
            },
            ("tail", [l]) => match self.force(l, depth + 1)? {
                Value::Cons(_, t) => self.force(&t, depth + 1),
                Value::Nil => Err(EvalError::EmptyList("tail")),
                _ => Err(EvalError::NotAList),
            },
            _ => Err(EvalError::NotAFunction),
        }
    }

    /// Deep-print a value, forcing as much structure as the remaining
    /// fuel allows. Lists render as `[1, 2, 3]`; functions and
    /// dictionaries render opaquely.
    pub fn show(&mut self, v: &Value) -> Result<String, EvalError> {
        let mut out = String::new();
        self.show_rec(v, &mut out, 0)?;
        Ok(out)
    }

    fn show_rec(&mut self, v: &Value, out: &mut String, depth: usize) -> Result<(), EvalError> {
        use std::fmt::Write as _;
        self.tick(depth)?;
        self.check_depth(depth)?;
        match v {
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Bool(true) => out.push_str("True"),
            Value::Bool(false) => out.push_str("False"),
            Value::Closure { .. } | Value::Prim { .. } => out.push_str("<function>"),
            Value::Tuple(_) => out.push_str("<dictionary>"),
            Value::Nil => out.push_str("[]"),
            Value::Cons(h0, t0) => {
                out.push('[');
                let mut head = h0.clone();
                let mut tail = t0.clone();
                loop {
                    self.tick(depth)?;
                    let hv = self.force(&head, depth + 1)?;
                    self.show_rec(&hv, out, depth + 1)?;
                    match self.force(&tail, depth + 1)? {
                        Value::Nil => break,
                        Value::Cons(h, t) => {
                            out.push_str(", ");
                            head = h;
                            tail = t;
                        }
                        _ => return Err(EvalError::NotAList),
                    }
                }
                out.push(']');
            }
            Value::Data {
                name,
                arity,
                fields,
                ..
            } => {
                if fields.len() < *arity {
                    // Partially applied constructor: a function value.
                    out.push_str("<function>");
                } else if fields.is_empty() {
                    out.push_str(name);
                } else {
                    out.push('(');
                    out.push_str(name);
                    for f in fields.clone() {
                        out.push(' ');
                        let fv = self.force(&f, depth + 1)?;
                        self.show_rec(&fv, out, depth + 1)?;
                    }
                    out.push(')');
                }
            }
        }
        Ok(())
    }
}

/// One instrumented evaluation: the printed result (or error), the
/// session's aggregate counters, and — when requested — the
/// per-binding profile.
#[derive(Debug)]
pub struct EvalRun {
    pub result: Result<String, EvalError>,
    pub stats: EvalStats,
    pub profile: Option<EvalProfile>,
}

/// Everything configurable about one evaluation session.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    pub budget: Budget,
    /// Attribute work to top-level bindings ([`EvalRun::profile`]).
    pub profile: bool,
    /// Cooperative cancellation; checked before evaluation starts and
    /// polled inside the fuel loop.
    pub cancel: Option<CancelToken>,
    /// Flight-recorder scope for this session (budget checkpoints,
    /// cancellation). Off and branch-cheap by default.
    pub events: EventScope,
}

/// Evaluate `entry` in `prog` under the given options, deep-print the
/// result, and report resource counters. Stats are meaningful on
/// error too (they describe the work done up to the failure).
pub fn run_entry_with(prog: &CoreProgram, entry: &str, opts: &EvalOptions) -> EvalRun {
    run_lowered_with(&LoweredProgram::new(prog), entry, opts)
}

/// [`run_entry_with`] over a pre-lowered program; use when evaluating
/// many entries of the same program.
pub fn run_lowered_with(prog: &LoweredProgram, entry: &str, opts: &EvalOptions) -> EvalRun {
    let mut ev = Evaluator::from_lowered(prog, opts.budget);
    if opts.profile {
        ev.enable_profiling();
    }
    if let Some(c) = &opts.cancel {
        ev.set_cancel(c.clone());
    }
    if opts.events.is_enabled() {
        ev.set_events(opts.events.clone());
    }
    let already_cancelled = opts.cancel.as_ref().is_some_and(|c| c.is_cancelled());
    let result = if already_cancelled {
        Err(EvalError::Cancelled(ev.snapshot(0)))
    } else {
        ev.eval_entry(entry).and_then(|v| ev.show(&v))
    };
    EvalRun {
        result,
        stats: ev.stats(),
        profile: ev.take_profile(),
    }
}

/// Evaluate `entry` in `prog`, deep-print the result, and report
/// resource counters; with `profile` set, also attribute work to
/// top-level bindings.
pub fn run_entry_instrumented(
    prog: &CoreProgram,
    entry: &str,
    budget: Budget,
    profile: bool,
) -> EvalRun {
    run_entry_with(
        prog,
        entry,
        &EvalOptions {
            budget,
            profile,
            cancel: None,
            events: EventScope::off(),
        },
    )
}

/// Evaluate `entry` in `prog` and deep-print the result.
pub fn run_entry(prog: &CoreProgram, entry: &str, budget: Budget) -> Result<String, EvalError> {
    run_entry_instrumented(prog, entry, budget, false).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_coreir::CoreExpr as C;

    fn var(n: &str) -> C {
        C::Var(n.into())
    }
    fn int(n: i64) -> C {
        C::Lit(Literal::Int(n))
    }
    fn prog(binds: Vec<(&str, C)>) -> CoreProgram {
        CoreProgram {
            binds: binds.into_iter().map(|(n, e)| (n.into(), e)).collect(),
            main: Some("main".into()),
        }
    }

    #[test]
    fn arithmetic() {
        let p = prog(vec![(
            "main",
            C::apps(var("primAddInt"), vec![int(40), int(2)]),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "42");
    }

    #[test]
    fn laziness_infinite_list() {
        // ones = cons 1 ones; main = head (tail ones)
        let p = prog(vec![
            ("ones", C::apps(var("cons"), vec![int(1), var("ones")])),
            (
                "main",
                C::app(var("head"), C::app(var("tail"), var("ones"))),
            ),
        ]);
        assert_eq!(run_entry(&p, "main", Budget::small()).unwrap(), "1");
    }

    #[test]
    fn showing_infinite_list_exhausts_fuel_not_time() {
        let p = prog(vec![(
            "main",
            C::LetRec(
                vec![(
                    "ones".into(),
                    C::apps(var("cons"), vec![int(1), var("ones")]),
                )],
                Box::new(var("ones")),
            ),
        )]);
        let err = run_entry(&p, "main", Budget::small()).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::FuelExhausted(_) | EvalError::AllocationLimit(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn self_dependency_is_blackhole() {
        // main = let x = x in x
        let p = prog(vec![(
            "main",
            C::LetRec(vec![("x".into(), var("x"))], Box::new(var("x"))),
        )]);
        assert_eq!(
            run_entry(&p, "main", Budget::default()).unwrap_err(),
            EvalError::BlackHole
        );
    }

    #[test]
    fn nonterminating_loop_exhausts_fuel_deterministically() {
        // loop = \x -> x x; main = loop loop
        let p = prog(vec![
            (
                "loop",
                C::Lam("x".into(), Box::new(C::app(var("x"), var("x")))),
            ),
            ("main", C::app(var("loop"), var("loop"))),
        ]);
        let e1 = run_entry(&p, "main", Budget::small()).unwrap_err();
        let e2 = run_entry(&p, "main", Budget::small()).unwrap_err();
        assert_eq!(e1, e2);
        assert!(
            matches!(
                e1,
                EvalError::FuelExhausted(_) | EvalError::DepthExceeded(_)
            ),
            "{e1:?}"
        );
    }

    #[test]
    fn deep_guest_recursion_is_depth_error_not_stack_overflow() {
        // sum n = if n == 0 then 0 else 1 + sum (n - 1): non-tail
        // recursion whose forcing nests natively with guest depth.
        let body = C::If(
            Box::new(C::apps(var("primEqInt"), vec![var("n"), int(0)])),
            Box::new(int(0)),
            Box::new(C::apps(
                var("primAddInt"),
                vec![
                    int(1),
                    C::app(
                        var("sum"),
                        C::apps(var("primSubInt"), vec![var("n"), int(1)]),
                    ),
                ],
            )),
        );
        let p = prog(vec![
            ("sum", C::Lam("n".into(), Box::new(body))),
            ("main", C::app(var("sum"), int(1_000_000))),
        ]);
        let err = run_entry(&p, "main", Budget::default()).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::DepthExceeded(_) | EvalError::FuelExhausted(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn division_by_zero() {
        let p = prog(vec![(
            "main",
            C::apps(var("primDivInt"), vec![int(1), int(0)]),
        )]);
        assert_eq!(
            run_entry(&p, "main", Budget::default()).unwrap_err(),
            EvalError::DivideByZero
        );
    }

    #[test]
    fn overflow_is_error() {
        let p = prog(vec![(
            "main",
            C::apps(var("primAddInt"), vec![int(i64::MAX), int(1)]),
        )]);
        assert_eq!(
            run_entry(&p, "main", Budget::default()).unwrap_err(),
            EvalError::IntOverflow
        );
    }

    #[test]
    fn fail_node_is_structured_failure() {
        let p = prog(vec![("main", C::Fail("hole".into()))]);
        assert!(matches!(
            run_entry(&p, "main", Budget::default()).unwrap_err(),
            EvalError::Failure(_)
        ));
    }

    #[test]
    fn dictionary_projection() {
        // dict = (1, 2); main = #1 dict
        let p = prog(vec![
            ("dict", C::Tuple(vec![int(1), int(2)])),
            ("main", C::Proj(1, Box::new(var("dict")))),
        ]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "2");
    }

    #[test]
    fn list_rendering() {
        let p = prog(vec![(
            "main",
            C::apps(
                var("cons"),
                vec![int(1), C::apps(var("cons"), vec![int(2), var("nil")])],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "[1, 2]");
    }

    #[test]
    fn long_list_dropped_without_stack_overflow() {
        // upto n = if n == 0 then nil else cons n (upto (n - 1)):
        // builds a 100k-cell lazy list whose spine we force cell by
        // cell (shallow each time), then drop the evaluator: the arena
        // must dismantle the chain iteratively.
        let body = C::If(
            Box::new(C::apps(var("primEqInt"), vec![var("n"), int(0)])),
            Box::new(var("nil")),
            Box::new(C::apps(
                var("cons"),
                vec![
                    var("n"),
                    C::app(
                        var("upto"),
                        C::apps(var("primSubInt"), vec![var("n"), int(1)]),
                    ),
                ],
            )),
        );
        let p = prog(vec![
            ("upto", C::Lam("n".into(), Box::new(body))),
            ("main", C::app(var("upto"), int(100_000))),
        ]);
        let budget = Budget {
            fuel: 100_000_000,
            max_depth: 2_000,
            max_allocs: 10_000_000,
        };
        let mut ev = Evaluator::new(&p, budget);
        let v = ev.eval_entry("main").unwrap();
        // Walk the spine, forcing each cell at depth 0.
        let mut cur = v;
        let mut n = 0u32;
        while let Value::Cons(_, t) = cur {
            cur = ev.force(&t, 0).unwrap();
            n += 1;
        }
        assert_eq!(n, 100_000);
        drop(ev); // must not overflow the stack
    }

    #[test]
    fn stats_report_fuel_and_allocations() {
        let p = prog(vec![(
            "main",
            C::apps(var("primAddInt"), vec![int(40), int(2)]),
        )]);
        let run = run_entry_instrumented(&p, "main", Budget::default(), false);
        assert_eq!(run.result.as_deref(), Ok("42"));
        assert!(run.stats.fuel_used > 0, "{:?}", run.stats);
        assert!(run.stats.peak_allocs > 0, "{:?}", run.stats);
        assert!(run.stats.thunks_created > 0, "{:?}", run.stats);
        assert!(run.stats.forces > 0, "{:?}", run.stats);
        assert!(run.profile.is_none(), "profiling was not requested");
    }

    #[test]
    fn stats_survive_errors() {
        let p = prog(vec![("main", C::Fail("hole".into()))]);
        let run = run_entry_instrumented(&p, "main", Budget::default(), false);
        assert!(run.result.is_err());
        assert!(run.stats.fuel_used > 0);
    }

    #[test]
    fn profiler_force_counts_are_analytic() {
        // x = 5
        // y = x + x      -- forces x twice (2nd is a cache hit)
        // main = y + y   -- forces y twice (2nd is a cache hit)
        let p = prog(vec![
            ("x", int(5)),
            ("y", C::apps(var("primAddInt"), vec![var("x"), var("x")])),
            ("main", C::apps(var("primAddInt"), vec![var("y"), var("y")])),
        ]);
        let run = run_entry_instrumented(&p, "main", Budget::default(), true);
        assert_eq!(run.result.as_deref(), Ok("20"));
        let profile = run.profile.expect("profiling requested");
        let get = |n: &str| profile.get(n).expect("missing profile entry");
        assert_eq!(get("main").forces, 1, "{profile:?}");
        assert_eq!(get("y").forces, 2, "{profile:?}");
        assert_eq!(get("x").forces, 2, "{profile:?}");
        // Fuel charged to y covers its rhs work; main's table lists it.
        assert!(get("y").fuel > 0, "{profile:?}");
        let table = profile.render_table();
        assert!(table.contains("binding"), "{table}");
        assert!(table.contains("main"), "{table}");
        // Profiled and unprofiled runs agree on results and counters.
        let plain = run_entry_instrumented(&p, "main", Budget::default(), false);
        assert_eq!(plain.result.as_deref(), Ok("20"));
        assert_eq!(plain.stats, run.stats);
    }

    #[test]
    fn profiling_off_allocates_no_profile_state() {
        let p = prog(vec![("main", int(1))]);
        let mut ev = Evaluator::new(&p, Budget::default());
        assert!(ev.profile.is_none());
        ev.eval_entry("main").unwrap();
        assert!(ev.profile.is_none());
        assert!(ev.take_profile().is_none());
    }

    #[test]
    fn unbound_entry_is_error() {
        let p = prog(vec![("main", int(1))]);
        assert_eq!(
            run_entry(&p, "nope", Budget::default()).unwrap_err(),
            EvalError::UnboundVar("nope".into())
        );
    }

    #[test]
    fn budget_errors_carry_binding_and_remaining_budget() {
        // loop = \x -> x x; main = loop loop — fails inside main's rhs.
        let p = prog(vec![
            (
                "loop",
                C::Lam("x".into(), Box::new(C::app(var("x"), var("x")))),
            ),
            ("main", C::app(var("loop"), var("loop"))),
        ]);
        let err = run_entry(&p, "main", Budget::small()).unwrap_err();
        let snap = err.budget().expect("budget error carries a snapshot");
        assert_eq!(snap.binding.as_deref(), Some("main"), "{snap:?}");
        match &err {
            EvalError::FuelExhausted(s) => assert_eq!(s.fuel_left, 0, "{s:?}"),
            EvalError::DepthExceeded(s) => assert!(s.depth > 0, "{s:?}"),
            other => unreachable!("unexpected error {other:?}"),
        }
        assert!(matches!(err.code(), "fuel-exhausted" | "depth-exceeded"));
        // Type-shaped errors carry no snapshot.
        let bad = prog(vec![("main", C::app(int(1), int(2)))]);
        let e = run_entry(&bad, "main", Budget::default()).unwrap_err();
        assert!(e.budget().is_none(), "{e:?}");
    }

    fn con(name: &str, tag: u32, arity: usize) -> C {
        C::Con {
            name: name.into(),
            tag,
            arity,
        }
    }

    fn arm(con: Option<(&str, u32)>, binders: &[&str], body: C) -> tc_coreir::CoreArm {
        tc_coreir::CoreArm {
            con: con.map(|(n, t)| (n.to_string(), t)),
            binders: binders.iter().map(|b| b.to_string()).collect(),
            body,
        }
    }

    #[test]
    fn constructor_values_build_and_match() {
        // data Pair = MkPair Int Int; main = case MkPair 1 2 of
        //   { MkPair a b -> a + b }
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(C::apps(con("MkPair", 0, 2), vec![int(1), int(2)])),
                vec![arm(
                    Some(("MkPair", 0)),
                    &["a", "b"],
                    C::apps(var("primAddInt"), vec![var("a"), var("b")]),
                )],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "3");
    }

    #[test]
    fn nullary_constructors_select_arms_by_name() {
        // case Green of { Red -> 1; Green -> 2; Blue -> 3 }
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(con("Green", 1, 0)),
                vec![
                    arm(Some(("Red", 0)), &[], int(1)),
                    arm(Some(("Green", 1)), &[], int(2)),
                    arm(Some(("Blue", 2)), &[], int(3)),
                ],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "2");
    }

    #[test]
    fn default_arm_binds_scrutinee() {
        // case MkBox 7 of { Other -> 0; x -> case x of { MkBox n -> n } }
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(C::app(con("MkBox", 0, 1), int(7))),
                vec![
                    arm(Some(("Other", 9)), &[], int(0)),
                    arm(
                        None,
                        &["x"],
                        C::Case(
                            Box::new(var("x")),
                            vec![arm(Some(("MkBox", 0)), &["n"], var("n"))],
                        ),
                    ),
                ],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "7");
    }

    #[test]
    fn bool_and_list_values_match_builtin_constructor_names() {
        // case True of { False -> 0; True -> case Cons 1 Nil of
        //   { Nil -> 2; Cons h t -> h } }
        let inner = C::Case(
            Box::new(C::apps(var("cons"), vec![int(1), var("nil")])),
            vec![
                arm(Some(("Nil", 0)), &[], int(2)),
                arm(Some(("Cons", 1)), &["h", "_"], var("h")),
            ],
        );
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(C::Lit(Literal::Bool(true))),
                vec![
                    arm(Some(("False", 1)), &[], int(0)),
                    arm(Some(("True", 0)), &[], inner),
                ],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "1");
    }

    #[test]
    fn exhausted_alternatives_are_match_failure() {
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(con("Green", 1, 0)),
                vec![arm(Some(("Red", 0)), &[], int(1))],
            ),
        )]);
        let err = run_entry(&p, "main", Budget::default()).unwrap_err();
        assert_eq!(err, EvalError::MatchFailure);
        assert_eq!(err.code(), "match-failure");
        assert_eq!(err.to_string(), "no case alternative matched");
    }

    #[test]
    fn partial_constructor_application_is_a_function_value() {
        // half = MkPair 1; main = case half 2 of { MkPair a b -> b }
        let p = prog(vec![
            ("half", C::app(con("MkPair", 0, 2), int(1))),
            (
                "main",
                C::Case(
                    Box::new(C::app(var("half"), int(2))),
                    vec![arm(Some(("MkPair", 0)), &["_", "b"], var("b"))],
                ),
            ),
        ]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "2");
        // Showing the unsaturated constructor renders opaquely.
        let p2 = prog(vec![("main", C::app(con("MkPair", 0, 2), int(1)))]);
        assert_eq!(
            run_entry(&p2, "main", Budget::default()).unwrap(),
            "<function>"
        );
    }

    #[test]
    fn saturated_constructors_render_with_fields() {
        // main = Cons (MkPair 1 Leaf) Nil   -- rendered inside a list
        let pair = C::apps(con("MkPair", 0, 2), vec![int(1), con("Leaf", 0, 0)]);
        let p = prog(vec![("main", C::apps(var("cons"), vec![pair, var("nil")]))]);
        assert_eq!(
            run_entry(&p, "main", Budget::default()).unwrap(),
            "[(MkPair 1 Leaf)]"
        );
    }

    #[test]
    fn constructor_fields_are_lazy() {
        // case MkBox (error) of { MkBox _ -> 42 } — field never forced
        let p = prog(vec![(
            "main",
            C::Case(
                Box::new(C::app(con("MkBox", 0, 1), var("error"))),
                vec![arm(Some(("MkBox", 0)), &["_"], int(42))],
            ),
        )]);
        assert_eq!(run_entry(&p, "main", Budget::default()).unwrap(), "42");
    }

    #[test]
    fn applying_saturated_constructor_is_not_a_function() {
        let p = prog(vec![("main", C::app(con("Leaf", 0, 0), int(1)))]);
        assert_eq!(
            run_entry(&p, "main", Budget::default()).unwrap_err(),
            EvalError::NotAFunction
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_evaluation() {
        let p = prog(vec![("main", int(1))]);
        let token = CancelToken::new();
        token.cancel();
        let run = run_entry_with(
            &p,
            "main",
            &EvalOptions {
                cancel: Some(token),
                ..EvalOptions::default()
            },
        );
        assert!(
            matches!(run.result, Err(EvalError::Cancelled(_))),
            "{:?}",
            run.result
        );
        assert_eq!(run.stats.fuel_used, 0, "{:?}", run.stats);
    }

    #[test]
    fn cancellation_is_polled_inside_the_fuel_loop() {
        // Printing a cyclic list burns fuel forever at constant depth
        // with no allocations, so under a huge budget only the expired
        // deadline can stop it — via the poll inside the fuel loop.
        let p = prog(vec![
            ("ones", C::apps(var("cons"), vec![int(1), var("ones")])),
            ("main", var("ones")),
        ]);
        let budget = Budget {
            fuel: 100_000_000,
            max_depth: 2_000,
            max_allocs: 100_000_000,
        };
        let mut ev = Evaluator::new(&p, budget);
        ev.set_cancel(CancelToken::at(std::time::Instant::now()));
        let err = ev.eval_entry("main").and_then(|v| ev.show(&v)).unwrap_err();
        assert!(
            matches!(err, EvalError::Cancelled(_)),
            "deadline must interrupt the fuel loop: {err:?}"
        );
        assert_eq!(err.code(), "cancelled");
        // Far more fuel must remain than the poll interval consumed.
        let snap = err.budget().unwrap();
        assert!(snap.fuel_left > 99_000_000, "{snap:?}");
    }
}
