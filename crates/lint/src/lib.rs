//! `tc-lint`: a whole-program static-analysis pass.
//!
//! The pipeline's correctness checks (overlap, superclass cycles, type
//! errors) reject programs that are *wrong*; this crate's lints flag
//! programs that are *suspicious* — instance worlds whose resolution
//! only terminates because of the runtime budget, contexts that carry
//! dead weight, bindings that are never read, branches that can never
//! run, and dictionaries rebuilt redundantly (the paper's key missed
//! optimization). The pass runs between checking and evaluation on
//! three views of the program at once:
//!
//! * the **surface AST** ([`tc_syntax::Program`]) — binding hygiene;
//! * the **class environment** ([`tc_classes::ClassEnv`]) — instance
//!   termination and context redundancy;
//! * the **typed core** ([`tc_coreir::CoreProgram`]) — unreachable
//!   arms and repeated dictionary construction, which only become
//!   visible after dictionary conversion.
//!
//! Every rule is a separate module reporting through the shared
//! [`tc_syntax::Diagnostics`] machinery with a stable `L`-prefixed
//! code, and every rule's level is configurable per run
//! ([`LintConfig`]): `allow` silences it, `warn` (the default) reports
//! a warning, `deny` escalates to an error that fails compilation.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

mod ambiguous;
mod bindings;
mod hoist;
mod matches;
mod redundant;
mod termination;
mod unreachable;

use std::collections::HashMap;
use tc_classes::ClassEnv;
use tc_coreir::CoreProgram;
use tc_syntax::{Diagnostic, Diagnostics, LintLevel, Program, Severity, Span, Stage};

pub use tc_syntax::LintLevel as Level;

/// The lint rules, one per analysis module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `L0001` — instance contexts must shrink structurally
    /// (Paterson-style), or resolution may diverge without the runtime
    /// cycle/budget guards.
    InstanceTermination,
    /// `L0002` — a constraint duplicated in, or implied (via a
    /// superclass) by, the same context.
    RedundantConstraint,
    /// `L0003` — a context constraint mentioning a type variable that
    /// never occurs in the constrained type; every use is ambiguous.
    AmbiguousTypeVar,
    /// `L0004` — a lambda parameter or local `let` binding that is
    /// never used.
    UnusedBinding,
    /// `L0005` — a binding that shadows an enclosing local or a
    /// top-level definition.
    ShadowedBinding,
    /// `L0006` — an `if` or `case` arm that can never run: constant
    /// condition, a condition already decided by an enclosing test, or
    /// a pattern a preceding arm already covers.
    UnreachableArm,
    /// `L0007` — an identical instance-dictionary application built
    /// more than once in one binding; hoistable into a shared binding.
    RepeatedDictionary,
    /// `L0012` — a `case` with no default arm that does not cover
    /// every constructor of the scrutinee's data type; the uncovered
    /// values fail at runtime with `match-failure`.
    NonExhaustiveMatch,
}

impl Rule {
    pub const ALL: [Rule; 8] = [
        Rule::InstanceTermination,
        Rule::RedundantConstraint,
        Rule::AmbiguousTypeVar,
        Rule::UnusedBinding,
        Rule::ShadowedBinding,
        Rule::UnreachableArm,
        Rule::RepeatedDictionary,
        Rule::NonExhaustiveMatch,
    ];

    /// Stable machine-readable code, in the `L` namespace so lint
    /// findings are visually distinct from pipeline `E` errors.
    pub fn code(self) -> &'static str {
        match self {
            Rule::InstanceTermination => "L0001",
            Rule::RedundantConstraint => "L0002",
            Rule::AmbiguousTypeVar => "L0003",
            Rule::UnusedBinding => "L0004",
            Rule::ShadowedBinding => "L0005",
            Rule::UnreachableArm => "L0006",
            Rule::RepeatedDictionary => "L0007",
            Rule::NonExhaustiveMatch => "L0012",
        }
    }

    /// Kebab-case rule name, used by CLI `--lint-level` overrides.
    pub fn name(self) -> &'static str {
        match self {
            Rule::InstanceTermination => "instance-termination",
            Rule::RedundantConstraint => "redundant-constraint",
            Rule::AmbiguousTypeVar => "ambiguous-type-variable",
            Rule::UnusedBinding => "unused-binding",
            Rule::ShadowedBinding => "shadowed-binding",
            Rule::UnreachableArm => "unreachable-arm",
            Rule::RepeatedDictionary => "repeated-dictionary",
            Rule::NonExhaustiveMatch => "non-exhaustive-match",
        }
    }

    /// One-line explanation, surfaced by the runner's `--explain`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::InstanceTermination => {
                "an instance context is not structurally smaller than its head \
                 (Paterson condition); resolution may diverge without the \
                 runtime cycle/budget guards"
            }
            Rule::RedundantConstraint => {
                "a constraint is duplicated in, or implied via a superclass \
                 by, the same context"
            }
            Rule::AmbiguousTypeVar => {
                "a context constraint mentions a type variable that never \
                 occurs in the constrained type; every use is ambiguous"
            }
            Rule::UnusedBinding => "a lambda parameter or local binding is never used",
            Rule::ShadowedBinding => {
                "a binding shadows an enclosing local or a top-level definition"
            }
            Rule::UnreachableArm => {
                "an `if` or `case` arm can never run: constant condition, a \
                 condition already decided by an enclosing test, or a pattern \
                 a preceding arm already covers"
            }
            Rule::RepeatedDictionary => {
                "an identical instance dictionary is built more than once in \
                 one binding; hoistable into a shared binding"
            }
            Rule::NonExhaustiveMatch => {
                "a `case` with no default arm does not cover every constructor \
                 of the scrutinee's data type; uncovered values fail at \
                 runtime with `match-failure`"
            }
        }
    }

    /// Every rule warns by default; nothing is deny-by-default so a
    /// lint can never reject a program unless the caller opts in.
    pub fn default_level(self) -> LintLevel {
        LintLevel::Warn
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// Per-rule level configuration. Unset rules fall back to
/// [`Rule::default_level`].
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<Rule, LintLevel>,
}

impl LintConfig {
    pub fn new() -> Self {
        Self::default()
    }

    /// A configuration with every rule forced to `level` — `deny` for
    /// lint-clean CI gates, `allow` to switch the pass off wholesale.
    pub fn all(level: LintLevel) -> Self {
        let mut cfg = Self::default();
        for r in Rule::ALL {
            cfg.set(r, level);
        }
        cfg
    }

    /// The effective level of `rule`.
    pub fn level(&self, rule: Rule) -> LintLevel {
        self.overrides
            .get(&rule)
            .copied()
            .unwrap_or_else(|| rule.default_level())
    }

    pub fn set(&mut self, rule: Rule, level: LintLevel) -> &mut Self {
        self.overrides.insert(rule, level);
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, rule: Rule, level: LintLevel) -> Self {
        self.set(rule, level);
        self
    }

    /// Apply a CLI-style `rule-name=level` override. Returns `false`
    /// (and changes nothing) when the rule name or level is unknown.
    pub fn set_by_name(&mut self, rule: &str, level: &str) -> bool {
        match (Rule::from_name(rule), LintLevel::parse(level)) {
            (Some(r), Some(l)) => {
                self.set(r, l);
                true
            }
            _ => false,
        }
    }
}

/// Everything one lint run looks at: the three program views are
/// borrowed from the driver's compilation record.
pub struct LintInput<'a> {
    /// Surface AST of the whole compiled buffer (prelude + user code).
    pub program: &'a Program,
    /// Validated class/instance environment.
    pub cenv: &'a ClassEnv,
    /// Dictionary-converted core program.
    pub core: &'a CoreProgram,
    /// Byte offset where user code begins in the compiled buffer
    /// (the prelude length, or `0` when no prelude was spliced).
    /// Findings whose primary span lies before this offset point at
    /// code the user cannot change and are suppressed — e.g. a user
    /// top-level `f` would otherwise make every prelude parameter
    /// named `f` a "shadowed binding".
    pub user_start: usize,
}

/// Run every configured rule and collect the findings.
pub fn run_lints(input: &LintInput<'_>, config: &LintConfig) -> Diagnostics {
    let mut em = Emitter {
        config,
        user_start: input.user_start,
        diags: Diagnostics::new(),
    };
    termination::check(input, &mut em);
    redundant::check(input, &mut em);
    ambiguous::check(input, &mut em);
    bindings::check(input, &mut em);
    unreachable::check(input, &mut em);
    matches::check(input, &mut em);
    hoist::check(input, &mut em);
    em.diags
}

/// Shared reporting surface handed to each rule module: maps a rule's
/// configured level onto a severity and tags every finding with the
/// rule name so users know what to silence.
pub(crate) struct Emitter<'a> {
    config: &'a LintConfig,
    user_start: usize,
    pub(crate) diags: Diagnostics,
}

impl Emitter<'_> {
    /// Is the rule worth computing at all?
    pub(crate) fn enabled(&self, rule: Rule) -> bool {
        self.config.level(rule) != LintLevel::Allow
    }

    pub(crate) fn report(&mut self, rule: Rule, span: Span, message: String) {
        self.report_with(rule, span, message, Vec::new());
    }

    pub(crate) fn report_with(
        &mut self,
        rule: Rule,
        span: Span,
        message: String,
        notes: Vec<(Option<Span>, String)>,
    ) {
        let Some(severity) = self.config.level(rule).severity() else {
            return;
        };
        // A known span entirely inside the prelude blames code the
        // user cannot edit; drop the finding.
        if span != Span::DUMMY && (span.end as usize) <= self.user_start {
            return;
        }
        let mut d = match severity {
            Severity::Error => Diagnostic::error(Stage::Lint, rule.code(), message, span),
            Severity::Warning => Diagnostic::warning(Stage::Lint, rule.code(), message, span),
        };
        for (nspan, note) in notes {
            d = d.with_note(nspan, note);
        }
        d = d.with_note(None, format!("lint rule `{}`", rule.name()));
        self.diags.push(d);
    }
}

/// Source span of every core binding we can attribute: top-level
/// bindings by name, instance dictionary constructors (`$dictN$C$T`)
/// by their instance declaration. Core expressions carry no spans, so
/// core-level rules blame the enclosing binding.
pub(crate) fn binding_spans(input: &LintInput<'_>) -> HashMap<String, Span> {
    let mut spans = HashMap::new();
    for b in &input.program.bindings {
        spans.insert(b.name.clone(), b.span);
    }
    for inst in input.cenv.all_instances() {
        spans.insert(inst.dict_binding_name(), inst.span);
    }
    spans
}

/// Is `sub`'s class reachable from `sup` through one or more
/// superclass edges? (`Ord` implies `Eq` under `class Eq a => Ord a`.)
/// The superclass graph is validated acyclic at build time, and the
/// visited set makes the walk total regardless.
pub(crate) fn superclass_implies(cenv: &ClassEnv, sup: &str, sub: &str) -> bool {
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut queue: Vec<&str> = match cenv.class(sup) {
        Some(ci) => ci.supers.iter().map(|s| s.as_str()).collect(),
        None => return false,
    };
    while let Some(c) = queue.pop() {
        if !seen.insert(c) {
            continue;
        }
        if c == sub {
            return true;
        }
        if let Some(ci) = cenv.class(c) {
            queue.extend(ci.supers.iter().map(|s| s.as_str()));
        }
    }
    false
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use tc_types::VarGen;

    pub(crate) struct Analyzed {
        pub program: Program,
        pub cenv: ClassEnv,
        pub core: CoreProgram,
    }

    /// Front half of the pipeline, lint-ready: lex, parse, class env,
    /// elaborate. Panics (it's a test helper) are fine.
    pub(crate) fn analyze(src: &str) -> Analyzed {
        let (toks, _) = tc_syntax::lex(src);
        let (program, _) = tc_syntax::parse_program(&toks, Default::default());
        let mut gen = VarGen::new();
        let (cenv, _) = tc_classes::build_class_env(&program, &mut gen);
        let (elab, _) = tc_core::elaborate(&program, &cenv, &mut gen, Default::default());
        Analyzed {
            program,
            cenv,
            core: elab.core,
        }
    }

    /// Lint `src` at default levels and return the diagnostics.
    pub(crate) fn lint(src: &str) -> Vec<Diagnostic> {
        lint_with(src, &LintConfig::default())
    }

    pub(crate) fn lint_with(src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
        let a = analyze(src);
        run_lints(
            &LintInput {
                program: &a.program,
                cenv: &a.cenv,
                core: &a.core,
                user_start: 0,
            },
            cfg,
        )
        .into_vec()
    }

    /// The codes of all findings for `src`, at default levels.
    pub(crate) fn codes(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|d| d.code).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::lint_with;

    #[test]
    fn rule_names_and_codes_are_stable_and_unique() {
        let mut codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Rule::ALL.len());
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
            assert!(r.code().starts_with('L'));
            assert_eq!(r.default_level(), LintLevel::Warn);
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn config_levels_and_overrides() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.level(Rule::UnusedBinding), LintLevel::Warn);
        cfg.set(Rule::UnusedBinding, LintLevel::Deny);
        assert_eq!(cfg.level(Rule::UnusedBinding), LintLevel::Deny);
        assert!(cfg.set_by_name("shadowed-binding", "allow"));
        assert_eq!(cfg.level(Rule::ShadowedBinding), LintLevel::Allow);
        assert!(!cfg.set_by_name("nope", "warn"));
        assert!(!cfg.set_by_name("unused-binding", "nope"));
        let deny = LintConfig::all(LintLevel::Deny);
        for r in Rule::ALL {
            assert_eq!(deny.level(r), LintLevel::Deny);
        }
    }

    #[test]
    fn allow_silences_and_deny_escalates() {
        let src = "f = \\x -> 1;"; // unused parameter
        let warn = lint_with(src, &LintConfig::default());
        assert!(warn.iter().any(|d| d.code == "L0004"));
        assert!(warn.iter().all(|d| d.severity == Severity::Warning));

        let allow = lint_with(
            src,
            &LintConfig::default().with(Rule::UnusedBinding, LintLevel::Allow),
        );
        assert!(allow.iter().all(|d| d.code != "L0004"));

        let deny = lint_with(
            src,
            &LintConfig::default().with(Rule::UnusedBinding, LintLevel::Deny),
        );
        assert!(deny
            .iter()
            .any(|d| d.code == "L0004" && d.severity == Severity::Error));
    }

    #[test]
    fn findings_name_their_rule() {
        let d = lint_with("f = \\x -> 1;", &LintConfig::default());
        let unused = d.iter().find(|d| d.code == "L0004").expect("fires");
        assert!(unused
            .notes
            .iter()
            .any(|(_, n)| n.contains("unused-binding")));
        assert_eq!(unused.stage, Stage::Lint);
    }
}
