//! `L0006` — unreachable-arm lint over the typed core.
//!
//! The core has no pattern matching (lists are consumed through
//! `null`/`head`/`tail`), so its "match arms" are `if` branches. An
//! arm is provably dead in two situations:
//!
//! 1. the condition is a boolean *literal* (`if True then a else b` —
//!    the `else` arm never runs);
//! 2. the condition textually repeats a test made by an enclosing
//!    `if` on the same branch path. The language is pure, so
//!    re-evaluating the same expression yields the same value and the
//!    arm contradicting the established polarity is unreachable.
//!
//! Path facts are invalidated conservatively when crossing a binder
//! (`Lam`/`LetRec`) that re-binds a variable the condition mentions —
//! inside the binder the condition refers to a different value.
//!
//! This runs *after* dictionary conversion, so it also sees method
//! bodies inlined into instance dictionaries; core expressions carry
//! no spans, so findings blame the enclosing top-level binding (or
//! the instance declaration, for `$dict` constructors).

use crate::{binding_spans, Emitter, LintInput, Rule};
use tc_coreir::{CoreExpr, Literal};
use tc_syntax::Span;

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::UnreachableArm) {
        return;
    }
    let spans = binding_spans(input);
    for (name, expr) in &input.core.binds {
        let span = spans.get(name).copied().unwrap_or(Span::DUMMY);
        walk(expr, &[], name, span, em);
    }
}

/// One established test on the current path: the condition expression
/// and the branch (`true` = then-arm) we are inside.
type Fact<'a> = (&'a CoreExpr, bool);

fn walk<'a>(e: &'a CoreExpr, facts: &[Fact<'a>], name: &str, span: Span, em: &mut Emitter<'_>) {
    match e {
        CoreExpr::If(c, t, f) => {
            walk(c, facts, name, span, em);
            if let CoreExpr::Lit(Literal::Bool(b)) = &**c {
                let arm = if *b { "`else`" } else { "`then`" };
                em.report(
                    Rule::UnreachableArm,
                    span,
                    format!(
                        "in `{name}`: an `if` condition is always `{b}`, so its {arm} \
                         arm is unreachable"
                    ),
                );
                walk(t, facts, name, span, em);
                walk(f, facts, name, span, em);
            } else if let Some(&(_, pol)) = facts.iter().find(|(fc, _)| *fc == &**c) {
                let arm = if pol { "`else`" } else { "`then`" };
                em.report(
                    Rule::UnreachableArm,
                    span,
                    format!(
                        "in `{name}`: an `if` repeats a condition already known to be \
                         `{pol}` on this path, so its {arm} arm is unreachable"
                    ),
                );
                walk(t, facts, name, span, em);
                walk(f, facts, name, span, em);
            } else {
                let mut then_facts = facts.to_vec();
                then_facts.push((c, true));
                walk(t, &then_facts, name, span, em);
                let mut else_facts = facts.to_vec();
                else_facts.push((c, false));
                walk(f, &else_facts, name, span, em);
            }
        }
        CoreExpr::Lam(p, body) => {
            let kept: Vec<Fact<'a>> = facts
                .iter()
                .filter(|(fc, _)| !mentions(fc, std::slice::from_ref(p)))
                .copied()
                .collect();
            walk(body, &kept, name, span, em);
        }
        CoreExpr::LetRec(binds, body) => {
            let bound: Vec<String> = binds.iter().map(|(n, _)| n.clone()).collect();
            let kept: Vec<Fact<'a>> = facts
                .iter()
                .filter(|(fc, _)| !mentions(fc, &bound))
                .copied()
                .collect();
            for (_, v) in binds {
                walk(v, &kept, name, span, em);
            }
            walk(body, &kept, name, span, em);
        }
        _ => {
            let mut children = Vec::new();
            e.push_children(&mut children);
            for child in children {
                walk(child, facts, name, span, em);
            }
        }
    }
}

/// Does the expression mention any of `names` as a variable at all?
/// Deliberately over-approximate (inner re-bindings are not tracked):
/// dropping a fact too eagerly only suppresses a report, never
/// fabricates one.
fn mentions(e: &CoreExpr, names: &[String]) -> bool {
    let mut stack = vec![e];
    while let Some(x) = stack.pop() {
        if let CoreExpr::Var(n) = x {
            if names.iter().any(|m| m == n) {
                return true;
            }
        }
        x.push_children(&mut stack);
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;

    #[test]
    fn constant_condition_fires() {
        assert!(codes("main = if True then 1 else 2;").contains(&"L0006"));
    }

    #[test]
    fn repeated_condition_fires() {
        let c = codes("f b = if b then 1 else (if b then 2 else 3);");
        assert!(c.contains(&"L0006"), "{c:?}");
    }

    #[test]
    fn repeated_condition_same_polarity_fires() {
        let c = codes("f b = if b then (if b then 1 else 2) else 3;");
        assert!(c.contains(&"L0006"), "{c:?}");
    }

    #[test]
    fn distinct_conditions_are_silent() {
        let c = codes("f a b = if a then (if b then 1 else 2) else 3;");
        assert!(!c.contains(&"L0006"), "{c:?}");
    }

    #[test]
    fn rebinding_invalidates_the_fact() {
        // The inner `b` is a fresh parameter, not the tested one.
        let c = codes("f b = if b then ((\\b -> if b then 1 else 2) False) else 3;");
        assert!(!c.contains(&"L0006"), "{c:?}");
    }

    #[test]
    fn guarded_recursion_is_silent() {
        let c = codes("f n = if primLeInt n 0 then 0 else f (primSubInt n 1);\nmain = f 3;");
        assert!(!c.contains(&"L0006"), "{c:?}");
    }
}
