//! `L0004` / `L0005` — binding-hygiene lints over the surface AST.
//!
//! * **Unused binding** (`L0004`): a lambda parameter or local `let`
//!   binding that is never referenced. Parameters spelled with a
//!   leading underscore (`_acc`) are exempt — that is the conventional
//!   "intentionally unused" marker.
//! * **Shadowed binding** (`L0005`): a lambda parameter or `let`
//!   binding that re-binds a name already in scope — an enclosing
//!   local, a top-level definition, or a class method. Shadowing is
//!   legal (inner-most wins) but a classic source of
//!   wrong-variable bugs in curried code.
//!
//! Scoping here mirrors the elaborator exactly: lambda parameters
//! scope over their body, `let` groups are mutually recursive (every
//! name scopes over all right-hand sides and the body). A `let`
//! binding counts as used if the body or a *sibling* right-hand side
//! references it; a binding referenced only by itself is still dead.

use crate::{Emitter, LintInput, Rule};
use std::collections::HashMap;
use tc_syntax::{Expr, Span};

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::UnusedBinding) && !em.enabled(Rule::ShadowedBinding) {
        return;
    }
    // Top-level names a local binding can shadow: program bindings and
    // class methods. (Shadowing *builtins* is already reported by the
    // elaborator as E0414, so it is not duplicated here.)
    let mut globals: HashMap<&str, Span> = HashMap::new();
    for c in &input.program.classes {
        for m in &c.methods {
            globals.insert(&m.name, m.span);
        }
    }
    for b in &input.program.bindings {
        globals.insert(&b.name, b.span);
    }
    let mut walker = Walker {
        globals,
        scope: Vec::new(),
        em,
    };
    for b in &input.program.bindings {
        walker.walk(&b.expr);
    }
    for inst in &input.program.instances {
        for m in &inst.methods {
            walker.walk(&m.expr);
        }
    }
}

struct Walker<'a, 'e, 'c> {
    globals: HashMap<&'a str, Span>,
    /// Innermost binding last; spans point at the binder.
    scope: Vec<(&'a str, Span)>,
    em: &'e mut Emitter<'c>,
}

impl<'a> Walker<'a, '_, '_> {
    fn walk(&mut self, e: &'a Expr) {
        match e {
            Expr::Var(..) | Expr::Con(..) | Expr::IntLit(..) | Expr::Hole(..) => {}
            Expr::App(f, x, _) => {
                self.walk(f);
                self.walk(x);
            }
            Expr::If(c, t, f, _) => {
                self.walk(c);
                self.walk(t);
                self.walk(f);
            }
            Expr::Lam(p, body, span) => {
                self.check_shadow(p, *span, "parameter");
                if self.em.enabled(Rule::UnusedBinding) && !p.starts_with('_') && !uses(body, p) {
                    self.em.report(
                        Rule::UnusedBinding,
                        *span,
                        format!("parameter `{p}` is never used (rename it `_{p}` if intentional)"),
                    );
                }
                self.scope.push((p, *span));
                self.walk(body);
                self.scope.pop();
            }
            Expr::Let(binds, body, _) => {
                for b in binds {
                    self.check_shadow(&b.name, b.span, "`let` binding");
                }
                for b in binds {
                    self.scope.push((&b.name, b.span));
                }
                for b in binds {
                    self.walk(&b.expr);
                }
                self.walk(body);
                self.scope.truncate(self.scope.len() - binds.len());
                if self.em.enabled(Rule::UnusedBinding) {
                    for (i, b) in binds.iter().enumerate() {
                        if b.name.starts_with('_') {
                            continue;
                        }
                        let used = uses(body, &b.name)
                            || binds
                                .iter()
                                .enumerate()
                                .any(|(j, sib)| j != i && uses(&sib.expr, &b.name));
                        if !used {
                            self.em.report(
                                Rule::UnusedBinding,
                                b.span,
                                format!("local binding `{}` is never used", b.name),
                            );
                        }
                    }
                }
            }
            Expr::Case(scrut, arms, _) => {
                self.walk(scrut);
                for arm in arms {
                    let before = self.scope.len();
                    let binders: Vec<(&'a str, Span)> = match &arm.pattern {
                        tc_syntax::Pattern::Var(n, sp) => vec![(n.as_str(), *sp)],
                        tc_syntax::Pattern::Con { binders, .. } => {
                            binders.iter().map(|(b, sp)| (b.as_str(), *sp)).collect()
                        }
                    };
                    for (b, sp) in &binders {
                        if *b == "_" {
                            continue;
                        }
                        self.check_shadow(b, *sp, "pattern binder");
                        if self.em.enabled(Rule::UnusedBinding)
                            && !b.starts_with('_')
                            && !uses(&arm.body, b)
                        {
                            self.em.report(
                                Rule::UnusedBinding,
                                *sp,
                                format!(
                                    "pattern binder `{b}` is never used \
                                     (rename it `_{b}` if intentional)"
                                ),
                            );
                        }
                        self.scope.push((b, *sp));
                    }
                    self.walk(&arm.body);
                    self.scope.truncate(before);
                }
            }
        }
    }

    fn check_shadow(&mut self, name: &str, span: Span, what: &str) {
        if !self.em.enabled(Rule::ShadowedBinding) {
            return;
        }
        if let Some(&(_, prev)) = self.scope.iter().rev().find(|(n, _)| *n == name) {
            self.em.report_with(
                Rule::ShadowedBinding,
                span,
                format!("{what} `{name}` shadows an enclosing binding of the same name"),
                vec![(Some(prev), "the shadowed binding is introduced here".into())],
            );
        } else if let Some(&prev) = self.globals.get(name) {
            self.em.report_with(
                Rule::ShadowedBinding,
                span,
                format!("{what} `{name}` shadows the top-level definition of the same name"),
                vec![(Some(prev), "the shadowed definition is here".into())],
            );
        }
    }
}

/// Does `e` reference `name` as a free variable? Iterative; descent
/// stops wherever `name` is re-bound.
fn uses(e: &Expr, name: &str) -> bool {
    let mut stack = vec![e];
    while let Some(x) = stack.pop() {
        match x {
            Expr::Var(n, _) => {
                if n == name {
                    return true;
                }
            }
            Expr::Con(..) | Expr::IntLit(..) | Expr::Hole(..) => {}
            Expr::App(f, a, _) => {
                stack.push(f);
                stack.push(a);
            }
            Expr::If(c, t, f, _) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
            Expr::Lam(p, body, _) => {
                if p != name {
                    stack.push(body);
                }
            }
            Expr::Let(binds, body, _) => {
                // A `let` group re-binding `name` shields its whole
                // extent (right-hand sides included — they see the
                // local binding, not the outer one).
                if binds.iter().all(|b| b.name != name) {
                    stack.push(body);
                    for b in binds {
                        stack.push(&b.expr);
                    }
                }
            }
            Expr::Case(scrut, arms, _) => {
                stack.push(scrut);
                for arm in arms {
                    let rebinds = match &arm.pattern {
                        tc_syntax::Pattern::Var(n, _) => n == name,
                        tc_syntax::Pattern::Con { binders, .. } => {
                            binders.iter().any(|(b, _)| b == name)
                        }
                    };
                    if !rebinds {
                        stack.push(&arm.body);
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;

    #[test]
    fn unused_parameter_fires() {
        assert!(codes("f = \\x -> 1;").contains(&"L0004"));
    }

    #[test]
    fn underscore_parameter_is_silent() {
        assert!(!codes("f = \\_x -> 1;").contains(&"L0004"));
    }

    #[test]
    fn used_parameter_is_silent() {
        assert!(!codes("f = \\x -> x;").contains(&"L0004"));
    }

    #[test]
    fn unused_let_binding_fires() {
        assert!(codes("f = let { dead = 1 } in 2;").contains(&"L0004"));
    }

    #[test]
    fn self_recursive_only_let_binding_fires() {
        let c = codes("f = let { spin = \\x -> spin x } in 1;");
        assert!(c.contains(&"L0004"), "{c:?}");
    }

    #[test]
    fn let_binding_used_by_sibling_is_silent() {
        let c = codes("f = let { a = 1; b = \\y -> primAddInt a y } in b 2;");
        assert!(!c.contains(&"L0004"), "{c:?}");
    }

    #[test]
    fn parameter_shadowing_parameter_fires() {
        let c = codes("f x = \\x -> x;");
        assert!(c.contains(&"L0005"), "{c:?}");
    }

    #[test]
    fn parameter_shadowing_top_level_fires() {
        let c = codes("f x = x;\ng = \\f -> f;");
        assert!(c.contains(&"L0005"), "{c:?}");
    }

    #[test]
    fn let_shadowing_parameter_fires() {
        let c = codes("f x = let { x = 1 } in x;");
        assert!(c.contains(&"L0005"), "{c:?}");
    }

    #[test]
    fn method_shadowing_fires() {
        let c = codes("class C a where { m :: a -> a; };\ng = \\m -> m;");
        assert!(c.contains(&"L0005"), "{c:?}");
    }

    #[test]
    fn distinct_names_are_silent() {
        let c = codes("f x = \\y -> x;");
        assert!(!c.contains(&"L0005"), "{c:?}");
    }
}
