//! `L0006` / `L0012` — `case`-analysis lints over the surface AST.
//!
//! * **Unreachable arm** (`L0006`, shared with the core-level `if`
//!   check): a `case` alternative that can never be selected — it
//!   follows an irrefutable (variable or `_`) arm, repeats a
//!   constructor a preceding arm already matches, or follows arms
//!   that together cover every constructor of the scrutinee's type.
//! * **Non-exhaustive match** (`L0012`): a `case` with no irrefutable
//!   arm whose constructor arms do not cover the whole data type. The
//!   evaluator turns the uncovered value into a structured
//!   `match-failure`, so this is the "you will crash at runtime" lint.
//!
//! Constructor coverage comes from the [`tc_classes::DataEnv`], which
//! registers builtins (`Bool`, `List`) alongside user `data`
//! declarations — `case b of { True -> ... }` is reported as missing
//! `False` through exactly the same path as a user enum. Arms whose
//! constructor is unknown (already an `E0404` upstream) disable the
//! exhaustiveness check for that `case`; the lint only reports what it
//! can prove.

use crate::{Emitter, LintInput, Rule};
use tc_syntax::{CaseArm, Expr, Pattern};

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::UnreachableArm) && !em.enabled(Rule::NonExhaustiveMatch) {
        return;
    }
    for b in &input.program.bindings {
        walk(&b.expr, input, em);
    }
    for inst in &input.program.instances {
        for m in &inst.methods {
            walk(&m.expr, input, em);
        }
    }
}

/// Iterative expression walk; every `case` found is analyzed in place.
fn walk(e: &Expr, input: &LintInput<'_>, em: &mut Emitter<'_>) {
    let mut stack = vec![e];
    while let Some(x) = stack.pop() {
        match x {
            Expr::Var(..) | Expr::Con(..) | Expr::IntLit(..) | Expr::Hole(..) => {}
            Expr::App(f, a, _) => {
                stack.push(f);
                stack.push(a);
            }
            Expr::Lam(_, body, _) => stack.push(body),
            Expr::Let(binds, body, _) => {
                stack.push(body);
                for b in binds {
                    stack.push(&b.expr);
                }
            }
            Expr::If(c, t, f, _) => {
                stack.push(c);
                stack.push(t);
                stack.push(f);
            }
            Expr::Case(scrut, arms, span) => {
                stack.push(scrut);
                for arm in arms {
                    stack.push(&arm.body);
                }
                check_case(arms, *span, input, em);
            }
        }
    }
}

fn check_case(
    arms: &[CaseArm],
    span: tc_syntax::Span,
    input: &LintInput<'_>,
    em: &mut Emitter<'_>,
) {
    let datas = &input.cenv.datas;
    // The scrutinee's data type, as witnessed by the first resolvable
    // constructor arm. (The elaborator has already unified every arm
    // against the scrutinee, so the first one is as good as any.)
    let data_name: Option<&str> = arms.iter().find_map(|a| match &a.pattern {
        Pattern::Con { name, .. } => datas.con(name).map(|ci| ci.data_name.as_str()),
        Pattern::Var(..) => None,
    });
    let total = data_name.map(|d| datas.constructors_of(d).len());

    let mut covered: Vec<&str> = Vec::new();
    let mut irrefutable = false;
    let mut unknown_con = false;
    for arm in arms {
        if irrefutable {
            em.report(
                Rule::UnreachableArm,
                arm.span,
                "unreachable `case` arm: a preceding pattern matches every value".to_string(),
            );
            continue;
        }
        match &arm.pattern {
            Pattern::Var(..) => {
                if total.is_some_and(|t| covered.len() >= t) {
                    em.report(
                        Rule::UnreachableArm,
                        arm.span,
                        "unreachable `case` arm: the preceding arms already cover \
                         every constructor"
                            .to_string(),
                    );
                }
                irrefutable = true;
            }
            Pattern::Con { name, .. } => {
                if covered.iter().any(|c| c == name) {
                    em.report(
                        Rule::UnreachableArm,
                        arm.span,
                        format!(
                            "unreachable `case` arm: constructor `{name}` is already \
                             matched by a preceding arm"
                        ),
                    );
                    continue;
                }
                if total.is_some_and(|t| covered.len() >= t) {
                    em.report(
                        Rule::UnreachableArm,
                        arm.span,
                        "unreachable `case` arm: the preceding arms already cover \
                         every constructor"
                            .to_string(),
                    );
                    continue;
                }
                if datas.con(name).is_none() {
                    unknown_con = true;
                }
                covered.push(name);
            }
        }
    }

    if irrefutable || unknown_con || !em.enabled(Rule::NonExhaustiveMatch) {
        return;
    }
    let Some(data_name) = data_name else {
        return;
    };
    let missing: Vec<&str> = datas
        .constructors_of(data_name)
        .into_iter()
        .map(|ci| ci.name.as_str())
        .filter(|c| !covered.contains(c))
        .collect();
    if missing.is_empty() {
        return;
    }
    let list = missing
        .iter()
        .map(|c| format!("`{c}`"))
        .collect::<Vec<_>>()
        .join(", ");
    em.report_with(
        Rule::NonExhaustiveMatch,
        span,
        format!(
            "non-exhaustive `case` on `{data_name}`: constructor{} {list} {} not matched",
            if missing.len() == 1 { "" } else { "s" },
            if missing.len() == 1 { "is" } else { "are" },
        ),
        vec![(
            None,
            "an unmatched value fails at runtime with `match-failure`; add the missing \
             arms or a trailing `_ -> ...` default"
                .to_string(),
        )],
    );
}

#[cfg(test)]
mod tests {
    use crate::testutil::{codes, lint};

    #[test]
    fn exhaustive_case_is_clean() {
        let src = "data T = A | B;\nf x = case x of { A -> 1; B -> 2 };";
        let c = codes(src);
        assert!(!c.contains(&"L0012"), "{c:?}");
        assert!(!c.contains(&"L0006"), "{c:?}");
    }

    #[test]
    fn missing_constructor_fires_l0012() {
        let src = "data T = A | B | C;\nf x = case x of { A -> 1 };";
        let d = lint(src);
        let v = d.iter().find(|d| d.code == "L0012").expect("L0012");
        assert!(v.message.contains("`B`"), "{}", v.message);
        assert!(v.message.contains("`C`"), "{}", v.message);
        assert!(
            v.notes.iter().any(|(_, n)| n.contains("match-failure")),
            "{:?}",
            v.notes
        );
    }

    #[test]
    fn default_arm_makes_case_exhaustive() {
        let src = "data T = A | B | C;\nf x = case x of { A -> 1; _ -> 0 };";
        assert!(!codes(src).contains(&"L0012"));
    }

    #[test]
    fn bool_case_missing_false_fires() {
        let src = "f x = case x of { True -> 1 };";
        let d = lint(src);
        let v = d.iter().find(|d| d.code == "L0012").expect("L0012");
        assert!(v.message.contains("`False`"), "{}", v.message);
    }

    #[test]
    fn list_case_through_builtin_constructors() {
        let clean = "f x = case x of { Nil -> 0; Cons h t -> h };";
        let c = codes(clean);
        assert!(!c.contains(&"L0012"), "{c:?}");
        let partial = "f x = case x of { Nil -> 0 };";
        assert!(codes(partial).contains(&"L0012"));
    }

    #[test]
    fn arm_after_default_is_unreachable() {
        let src = "data T = A | B;\nf x = case x of { _ -> 0; A -> 1 };";
        assert!(codes(src).contains(&"L0006"));
    }

    #[test]
    fn duplicate_constructor_arm_is_unreachable() {
        let src = "data T = A | B;\nf x = case x of { A -> 1; A -> 2; B -> 3 };";
        let d = lint(src);
        let v = d.iter().find(|d| d.code == "L0006").expect("L0006");
        assert!(v.message.contains("`A`"), "{}", v.message);
        // Coverage still counts the first A, so no L0012.
        assert!(d.iter().all(|d| d.code != "L0012"), "{d:?}");
    }

    #[test]
    fn default_after_full_coverage_is_unreachable() {
        let src = "data T = A | B;\nf x = case x of { A -> 1; B -> 2; _ -> 0 };";
        assert!(codes(src).contains(&"L0006"));
    }

    #[test]
    fn unknown_constructor_disables_exhaustiveness() {
        // `Nope` is an E0404 upstream; the lint must not pile on.
        let src = "data T = A | B;\nf x = case x of { Nope -> 1 };";
        assert!(!codes(src).contains(&"L0012"));
    }

    #[test]
    fn nested_cases_are_both_checked() {
        let src = "data T = A | B;\n\
                   f x y = case x of { A -> case y of { A -> 1 }; B -> 2 };";
        let d = lint(src);
        assert_eq!(d.iter().filter(|d| d.code == "L0012").count(), 1, "{d:?}");
    }

    #[test]
    fn derived_instances_do_not_fire_match_lints() {
        // Deriving generates exhaustive cases; deny-level runs stay
        // clean over them.
        let src = "data Color = Red | Green | Blue deriving (Eq, Ord);\n\
                   f c = case c of { Red -> 0; Green -> 1; Blue -> 2 };";
        let c = codes(src);
        assert!(!c.contains(&"L0012"), "{c:?}");
        assert!(!c.contains(&"L0006"), "{c:?}");
    }
}
