//! `L0002` — redundant-constraint lint.
//!
//! A context constraint is redundant when the same context already
//! guarantees it: either a literal duplicate, or a constraint implied
//! through the superclass hierarchy (`Ord a` implies `Eq a` under
//! `class Eq a => Ord a`, because every `Ord` dictionary embeds its
//! `Eq` dictionary). Redundant constraints are harmless to soundness
//! but cost a dictionary parameter per call and widen every signature
//! they appear in, so we flag them in the three places contexts are
//! written: top-level signatures, class-method signatures, and
//! instance declarations.

use crate::{superclass_implies, Emitter, LintInput, Rule};
use tc_classes::{lower::lower_qual_type, ClassEnv, LowerCtx};
use tc_syntax::{Diagnostics, Span};
use tc_types::{Pred, VarGen};

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::RedundantConstraint) {
        return;
    }
    for sig in &input.program.sigs {
        let preds = lowered_sig_context(sig, input.cenv);
        check_context(
            &preds,
            0,
            &format!("the signature of `{}`", sig.name),
            input.cenv,
            em,
        );
    }
    for cname in input.cenv.class_names() {
        let Some(ci) = input.cenv.class(cname) else {
            continue;
        };
        for m in &ci.methods {
            // preds[0] is the implicit class constraint added during
            // environment construction; only user-written constraints
            // (index >= 1) are reportable, but the implicit one still
            // participates as an implier.
            if m.scheme.qual.preds.len() > 1 {
                check_context(
                    &m.scheme.qual.preds,
                    1,
                    &format!("the signature of method `{}`", m.name),
                    input.cenv,
                    em,
                );
            }
        }
    }
    let mut insts: Vec<_> = input.cenv.all_instances().collect();
    insts.sort_by_key(|i| i.id);
    for inst in insts {
        check_context(
            &inst.preds,
            0,
            &format!("the context of this `{}` instance", inst.head.class),
            input.cenv,
            em,
        );
    }
}

/// Re-lower a signature's context with scratch state. The pipeline's
/// own lowering happens deep inside inference; the lint only needs the
/// predicate structure (shared variable scope between constraints), and
/// any lowering diagnostics here are duplicates of ones inference
/// already reported, so they are discarded.
fn lowered_sig_context(sig: &tc_syntax::SigDecl, cenv: &ClassEnv) -> Vec<Pred> {
    let mut ctx = LowerCtx::new();
    let mut gen = VarGen::new();
    let mut scratch = Diagnostics::new();
    lower_qual_type(&sig.qual_ty, &mut ctx, &mut gen, &mut scratch, &cenv.datas).preds
}

/// Report duplicates and superclass-implied constraints within one
/// context. Constraints before `first_reportable` are implicit
/// (machine-added) and only serve as impliers.
fn check_context(
    preds: &[Pred],
    first_reportable: usize,
    what: &str,
    cenv: &ClassEnv,
    em: &mut Emitter<'_>,
) {
    for i in first_reportable..preds.len() {
        let p = &preds[i];
        if let Some(j) = (0..i).find(|&j| preds[j].same_constraint(p)) {
            em.report_with(
                Rule::RedundantConstraint,
                p.span,
                format!("duplicate constraint `{p}` in {what}"),
                vec![note_first(preds[j].span)],
            );
            continue;
        }
        if let Some(j) = (0..preds.len()).find(|&j| {
            j != i && preds[j].ty == p.ty && superclass_implies(cenv, &preds[j].class, &p.class)
        }) {
            em.report_with(
                Rule::RedundantConstraint,
                p.span,
                format!(
                    "constraint `{p}` in {what} is redundant: `{}` already implies it \
                     through the superclass hierarchy (its dictionary embeds a `{}` dictionary)",
                    preds[j], p.class
                ),
                vec![note_first(preds[j].span)],
            );
        }
    }
}

fn note_first(span: Span) -> (Option<Span>, String) {
    (Some(span), "already guaranteed by this constraint".into())
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;

    const HIERARCHY: &str = "\
        class Eq a where { eq :: a -> a -> Bool; };\n\
        class Eq a => Ord a where { lte :: a -> a -> Bool; };\n";

    #[test]
    fn superclass_implied_sig_constraint_fires() {
        let src = format!("{HIERARCHY}f :: (Eq a, Ord a) => a -> a;\nf x = x;");
        assert!(codes(&src).contains(&"L0002"), "{:?}", codes(&src));
    }

    #[test]
    fn duplicate_sig_constraint_fires() {
        let src = format!("{HIERARCHY}f :: (Eq a, Eq a) => a -> a;\nf x = x;");
        assert!(codes(&src).contains(&"L0002"));
    }

    #[test]
    fn duplicate_instance_context_fires() {
        let src = format!(
            "{HIERARCHY}instance (Eq a, Eq a) => Eq (List a) where {{ eq = \\x y -> True; }};"
        );
        assert!(codes(&src).contains(&"L0002"), "{:?}", codes(&src));
    }

    #[test]
    fn method_constraint_implied_by_class_fires() {
        // `cmp`'s `Eq a` is implied by the implicit `Ord a`.
        let src = "\
            class Eq a where { eq :: a -> a -> Bool; };\n\
            class Eq a => Ord a where { cmp :: Eq a => a -> a -> Bool; };\n";
        assert!(codes(src).contains(&"L0002"), "{:?}", codes(src));
    }

    #[test]
    fn independent_constraints_are_silent() {
        let src = format!("{HIERARCHY}f :: (Eq a, Eq b) => a -> b -> a;\nf x y = x;");
        assert!(!codes(&src).contains(&"L0002"), "{:?}", codes(&src));
    }

    #[test]
    fn distinct_types_same_class_are_silent() {
        let src = format!("{HIERARCHY}f :: (Ord a, Eq b) => a -> b -> a;\nf x y = x;");
        assert!(!codes(&src).contains(&"L0002"), "{:?}", codes(&src));
    }
}
