//! `L0003` — ambiguous-type-variable lint.
//!
//! A constraint whose type variable never appears in the constrained
//! type can never be pinned down by unification: at every use site the
//! variable instantiates fresh, the resolver has nothing to match it
//! against, and the use fails with an ambiguity error. The mistake is
//! in the *declaration*, though, so this lint reports it there —
//! before any use site exists. Checked in three places:
//!
//! * top-level signatures: `f :: Eq a => Int -> Int`;
//! * class-method signatures: extra constraints on variables that
//!   appear in neither the method type nor the class head;
//! * instance contexts: `instance Eq b => C Int` — no use of the
//!   instance can ever determine `b`, so the context is unsatisfiable.

use crate::{Emitter, LintInput, Rule};
use tc_classes::{lower::lower_qual_type, LowerCtx};
use tc_syntax::Diagnostics;
use tc_types::VarGen;

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::AmbiguousTypeVar) {
        return;
    }
    for sig in &input.program.sigs {
        let mut ctx = LowerCtx::new();
        let mut gen = VarGen::new();
        let mut scratch = Diagnostics::new();
        let q = lower_qual_type(
            &sig.qual_ty,
            &mut ctx,
            &mut gen,
            &mut scratch,
            &input.cenv.datas,
        );
        let body_vars = q.head.free_vars();
        for (i, p) in q.preds.iter().enumerate() {
            if p.free_vars().is_subset(&body_vars) {
                continue;
            }
            // Prefer the surface spelling (`Eq a`) over internal
            // variables (`Eq t0`); the contexts align index-for-index.
            let shown = match sig.qual_ty.context.get(i) {
                Some(pe) => format!("{} {}", pe.class, pe.ty),
                None => p.to_string(),
            };
            em.report(
                Rule::AmbiguousTypeVar,
                p.span,
                format!(
                    "constraint `{shown}` in the signature of `{}` mentions a type \
                     variable that does not appear in the type `{}`; every use of \
                     `{}` will fail with an ambiguity error",
                    sig.name, sig.qual_ty.ty, sig.name
                ),
            );
        }
    }
    for cname in input.cenv.class_names() {
        let Some(ci) = input.cenv.class(cname) else {
            continue;
        };
        for m in &ci.methods {
            let preds = &m.scheme.qual.preds;
            let Some(class_pred) = preds.first() else {
                continue;
            };
            // The class variable is always determined (it's fixed by
            // dictionary dispatch), so it is allowed alongside the
            // method type's own variables.
            let mut allowed = m.scheme.qual.head.free_vars();
            allowed.extend(class_pred.free_vars());
            for p in &preds[1..] {
                if p.free_vars().is_subset(&allowed) {
                    continue;
                }
                em.report(
                    Rule::AmbiguousTypeVar,
                    p.span,
                    format!(
                        "constraint `{p}` in the signature of method `{}` mentions a \
                         type variable that appears in neither the method type nor the \
                         class head; every use of `{}` will be ambiguous",
                        m.name, m.name
                    ),
                );
            }
        }
    }
    let mut insts: Vec<_> = input.cenv.all_instances().collect();
    insts.sort_by_key(|i| i.id);
    for inst in insts {
        let head_vars = inst.head.ty.free_vars();
        let decl = input.program.instances.get(inst.ast_index);
        for (i, p) in inst.preds.iter().enumerate() {
            if p.free_vars().is_subset(&head_vars) {
                continue;
            }
            let shown = match decl.and_then(|d| d.context.get(i)) {
                Some(pe) => format!("{} {}", pe.class, pe.ty),
                None => p.to_string(),
            };
            let head_text = match decl {
                Some(d) => format!("{} ({})", d.class, d.head),
                None => inst.head.to_string(),
            };
            em.report_with(
                Rule::AmbiguousTypeVar,
                p.span,
                format!(
                    "context constraint `{shown}` mentions a type variable that does \
                     not appear in the instance head `{head_text}`; the constraint can \
                     never be satisfied when the instance is used"
                ),
                vec![(Some(inst.span), "in this instance declaration".into())],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;

    const EQ: &str = "class Eq a where { eq :: a -> a -> Bool; };\n";

    #[test]
    fn sig_constraint_off_the_type_fires() {
        let src = format!("{EQ}g :: Eq a => Int -> Int;\ng x = x;");
        assert!(codes(&src).contains(&"L0003"), "{:?}", codes(&src));
    }

    #[test]
    fn instance_context_off_the_head_fires() {
        let src = format!(
            "{EQ}class C a where {{ m :: a -> a; }};\n\
             instance Eq b => C Int where {{ m = \\x -> x; }};"
        );
        assert!(codes(&src).contains(&"L0003"), "{:?}", codes(&src));
    }

    #[test]
    fn method_constraint_off_both_fires() {
        let src = format!("{EQ}class C a where {{ m :: Eq b => a -> a; }};");
        assert!(codes(&src).contains(&"L0003"), "{:?}", codes(&src));
    }

    #[test]
    fn determined_constraints_are_silent() {
        let src = format!("{EQ}f :: Eq a => a -> Bool;\nf x = eq x x;");
        assert!(!codes(&src).contains(&"L0003"), "{:?}", codes(&src));
    }

    #[test]
    fn instance_context_on_head_variable_is_silent() {
        let src = format!("{EQ}instance Eq a => Eq (List a) where {{ eq = \\x y -> True; }};");
        assert!(!codes(&src).contains(&"L0003"), "{:?}", codes(&src));
    }
}
