//! `L0001` — instance-termination lint (Paterson-style conditions).
//!
//! The resolver discharges a goal `C T` by matching an instance head
//! and recursing on the instantiated context, so resolution terminates
//! for *every* goal iff each context constraint is structurally smaller
//! than its head. We check the two Paterson conditions per constraint:
//!
//! 1. the constraint's type has strictly fewer type constructors and
//!    variables than the head's type, and
//! 2. no type variable occurs more often in the constraint than in the
//!    head.
//!
//! A violation does not make the program wrong — the runtime
//! cycle-detector and [`tc_classes::ReduceBudget`] still guarantee the
//! compiler terminates — but any goal that *needs* the offending
//! instance fails with a cycle/budget error instead of a dictionary,
//! so the instance deserves a warning at its declaration site.

use crate::{Emitter, LintInput, Rule};

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::InstanceTermination) {
        return;
    }
    let mut insts: Vec<_> = input.cenv.all_instances().collect();
    insts.sort_by_key(|i| i.id);
    for inst in insts {
        // Prefer the surface head (`C (List a)`) over the lowered one
        // (`C (List t3)`) when the declaration is available.
        let head_text = match input.program.instances.get(inst.ast_index) {
            Some(decl) => format!("{} ({})", decl.class, decl.head),
            None => inst.head.to_string(),
        };
        for p in &inst.preds {
            let psize = p.ty.size();
            let hsize = inst.head.ty.size();
            if psize >= hsize {
                em.report_with(
                    Rule::InstanceTermination,
                    p.span,
                    format!(
                        "context constraint `{p}` is not structurally smaller than the \
                         instance head `{head_text}` ({psize} vs {hsize} type nodes); \
                         resolving through this instance cannot make progress"
                    ),
                    vec![(Some(inst.span), "in this instance declaration".into())],
                );
                continue;
            }
            if let Some(v) =
                p.ty.free_vars()
                    .into_iter()
                    .find(|v| p.ty.occurrences(*v) > inst.head.ty.occurrences(*v))
            {
                em.report_with(
                    Rule::InstanceTermination,
                    p.span,
                    format!(
                        "a type variable occurs {} time(s) in the context constraint `{p}` \
                         but only {} time(s) in the instance head `{head_text}`; goals can \
                         grow without bound through this instance",
                        p.ty.occurrences(v),
                        inst.head.ty.occurrences(v),
                    ),
                    vec![(Some(inst.span), "in this instance declaration".into())],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::codes;

    const CLASS: &str = "class C a where { m :: a -> a; };\n";

    #[test]
    fn equal_size_context_fires() {
        // `instance C (List a) => C (List a)`: context not smaller.
        let src = format!("{CLASS}instance C (List a) => C (List a) where {{ m = \\x -> x; }};");
        assert!(codes(&src).contains(&"L0001"), "{:?}", codes(&src));
    }

    #[test]
    fn growing_context_fires() {
        let src =
            format!("{CLASS}instance C (List (List a)) => C (List a) where {{ m = \\x -> x; }};");
        assert!(codes(&src).contains(&"L0001"));
    }

    #[test]
    fn variable_multiplicity_fires() {
        // Context smaller by size (3 < 5 nodes) but `a` occurs twice in
        // the constraint and once in the head.
        let src =
            format!("{CLASS}instance C (a -> a) => C (List (List a)) where {{ m = \\x -> x; }};");
        assert!(codes(&src).contains(&"L0001"), "{:?}", codes(&src));
    }

    #[test]
    fn structural_decrease_is_silent() {
        let src = format!("{CLASS}instance C a => C (List a) where {{ m = \\x -> x; }};");
        assert!(!codes(&src).contains(&"L0001"), "{:?}", codes(&src));
    }
}
