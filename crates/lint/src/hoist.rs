//! `L0007` — repeated-dictionary-construction lint over the typed
//! core.
//!
//! After dictionary conversion, a use of an overloaded function at a
//! *compound* type builds its dictionary by applying an instance
//! constructor to sub-dictionaries: `eq` at `List Int` becomes
//! `eq ($dictEqList $dictEqInt) ...`. The converter spells this out at
//! every use site independently, so a binding that compares lists
//! twice constructs the identical `$dictEqList $dictEqInt` tuple
//! twice — the exact re-evaluation cost the paper's Section on
//! dictionary sharing warns about. Such expressions are closed over
//! the binding's dictionary parameters and effect-free, so they can
//! always be hoisted into a single shared `let`.
//!
//! Detection: within one top-level binding, count every *maximal*
//! application spine whose head is a `$dict…` instance constructor
//! with at least one argument (nullary dictionary references are
//! already shared globals — nothing to hoist). Keys are the printed
//! expression; two or more occurrences of a key is a finding. Nested
//! dictionary arguments inside a counted spine are not counted again:
//! hoisting the outermost construction already shares them.
//!
//! Pipeline ordering: the driver runs [`tc_coreir::share_program`] —
//! the optimization this lint used to only *suggest* — between
//! dictionary conversion and lint, so under default options every
//! hoistable duplicate has already been rewritten into a single `$sh`
//! let-binding and this rule is silent. It still fires when the
//! sharing pass is disabled (`Options::share_dictionaries = false`),
//! and on duplicates the pass cannot hoist (constructions whose free
//! variables are bound locally, below the dictionary-lambda prefix).

use crate::{binding_spans, Emitter, LintInput, Rule};
use std::collections::HashMap;
use tc_coreir::CoreExpr;
use tc_syntax::Span;

pub(crate) fn check(input: &LintInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::RepeatedDictionary) {
        return;
    }
    let spans = binding_spans(input);
    for (name, expr) in &input.core.binds {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut stack = vec![expr];
        while let Some(e) = stack.pop() {
            if let Some((head, key)) = applied_dict_key(e) {
                // A recursive instance (e.g. `Eq (List a)`) re-applies
                // *its own* constructor to its own context parameters
                // for the recursive method calls. That knot is the
                // converter's output, not something a user can hoist,
                // so self-references inside the constructor are exempt.
                if head != name {
                    *counts.entry(key).or_insert(0) += 1;
                    continue;
                }
            }
            e.push_children(&mut stack);
        }
        let mut repeated: Vec<(String, usize)> =
            counts.into_iter().filter(|&(_, n)| n >= 2).collect();
        repeated.sort();
        let span = spans.get(name).copied().unwrap_or(Span::DUMMY);
        for (key, n) in repeated {
            em.report(
                Rule::RepeatedDictionary,
                span,
                format!(
                    "in `{name}`: the dictionary `{key}` is constructed {n} times; \
                     hoist it into a single shared binding and reuse it"
                ),
            );
        }
    }
}

/// If `e` is an applied instance-dictionary construction, its head
/// (the constructor name) and identity key (the printed expression);
/// otherwise `None`.
fn applied_dict_key(e: &CoreExpr) -> Option<(&str, String)> {
    let (head, args) = e.spine();
    match head {
        CoreExpr::Var(n) if n.starts_with("$dict") && !args.is_empty() => {
            Some((n.as_str(), tc_coreir::pretty(e)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{codes, lint};

    const EQ: &str = "\
        class Eq a where { eq :: a -> a -> Bool; };\n\
        instance Eq Int where { eq = primEqInt; };\n\
        instance Eq a => Eq (List a) where { eq = \\xs ys -> True; };\n";

    #[test]
    fn two_list_comparisons_fire() {
        let src = format!("{EQ}main = if eq (cons 1 nil) nil then eq (cons 2 nil) nil else True;");
        let c = codes(&src);
        assert!(c.contains(&"L0007"), "{c:?}");
        let d = lint(&src);
        let msg = &d.iter().find(|d| d.code == "L0007").unwrap().message;
        assert!(msg.contains("$dict") && msg.contains("2 times"), "{msg}");
    }

    #[test]
    fn single_construction_is_silent() {
        let src = format!("{EQ}main = eq (cons 1 nil) nil;");
        assert!(!codes(&src).contains(&"L0007"), "{:?}", codes(&src));
    }

    #[test]
    fn recursive_instance_self_knot_is_exempt() {
        // The recursive `eq` on the tails re-applies the instance's own
        // constructor inside the constructor — generated, not hoistable.
        let src = "\
            class Eq a where { eq :: a -> a -> Bool; };\n\
            instance Eq Int where { eq = primEqInt; };\n\
            instance Eq a => Eq (List a) where {\n\
              eq = \\xs ys -> if null xs then null ys\n\
                   else if null ys then False\n\
                   else if eq (head xs) (head ys) then eq (tail xs) (tail ys)\n\
                   else False;\n\
            };\n\
            main = eq (cons 1 nil) nil;";
        assert!(!codes(src).contains(&"L0007"), "{:?}", codes(src));
    }

    #[test]
    fn nullary_dictionaries_are_silent() {
        // `eq` at Int twice: the Int dictionary is a bare global
        // reference, not a construction — nothing to hoist.
        let src = format!("{EQ}main = if eq 1 2 then eq 3 4 else True;");
        assert!(!codes(&src).contains(&"L0007"), "{:?}", codes(&src));
    }
}
