//! `tc-trace`: structured telemetry for the pipeline.
//!
//! Zero-dependency observability primitives shared by every stage of
//! the dictionary-passing pipeline:
//!
//! * [`Telemetry`] — a handle collecting per-stage **spans** (wall-clock
//!   start offset, duration, diagnostics emitted) plus arbitrary named
//!   counters, rendered as a human timing table
//!   ([`Telemetry::render_table`]) or serialized into one JSON object
//!   ([`Telemetry::write_json`]). A disabled handle
//!   ([`Telemetry::off`], the default) records nothing and **allocates
//!   nothing** — timing an opt-out run costs one branch per stage.
//! * [`TraceNode`] — a generic labelled tree, used by the resolver's
//!   explain-traces to render instance derivations as an indented goal
//!   tree ([`TraceNode::render`]). Rendering is iterative, so
//!   adversarially deep derivations cannot overflow the native stack.
//! * [`MetricsRegistry`] — statically-keyed **counters, gauges, and
//!   log2-bucketed histograms** ([`metrics`]), threaded through every
//!   crate with the same zero-cost-when-off discipline as telemetry:
//!   one branch + one add when enabled, no allocation when disabled.
//! * [`CancelToken`] — a cooperative cancellation flag with an
//!   optional deadline ([`cancel`]), polled by the resolver and
//!   evaluator budget loops and at stage boundaries so a server can
//!   bound a request's wall-clock time without killing threads.
//! * [`chrome`] — the Chrome trace-event exporter: stage spans and
//!   per-goal resolution spans ([`SpanEvent`]) as `"ph": "X"` complete
//!   events, loadable in Perfetto.
//! * [`json`] — the shared [`json::JsonWriter`], the [`json::check`]
//!   well-formedness validator, and the [`json::parse`] value parser,
//!   so stats, trace, and bench output cannot drift into invalid JSON
//!   and our own reports can be read back (the bench comparator).
//!
//! The crate deliberately knows nothing about types, classes, or core
//! IR: stages describe themselves through [`Stage`] names, labels, and
//! counters, which keeps `tc-trace` at the bottom of the dependency
//! graph where every other crate can use it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

pub mod cancel;
pub mod chrome;
pub mod events;
pub mod json;
pub mod metrics;

pub use cancel::CancelToken;
pub use chrome::{chrome_trace_json, SpanEvent};
pub use events::{Event, EventKind, EventLog, EventScope};
pub use json::JsonWriter;
pub use metrics::{
    bucket_index, bucket_lo, CounterId, GaugeId, Histogram, HistogramId, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};

use std::fmt;
use std::time::Instant;

/// The pipeline stages a span can describe, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    Lex,
    Parse,
    ClassEnv,
    Coherence,
    Elaborate,
    Share,
    Lint,
    Eval,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Lex,
        Stage::Parse,
        Stage::ClassEnv,
        Stage::Coherence,
        Stage::Elaborate,
        Stage::Share,
        Stage::Lint,
        Stage::Eval,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::ClassEnv => "class-env",
            Stage::Coherence => "coherence",
            Stage::Elaborate => "elaborate",
            Stage::Share => "share",
            Stage::Lint => "lint",
            Stage::Eval => "eval",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed stage: when it started (nanoseconds after the
/// telemetry handle was created), how long it ran, and how many
/// diagnostics it emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    pub stage: Stage,
    pub start_ns: u64,
    pub duration_ns: u64,
    pub diags: u64,
}

impl StageSpan {
    /// Nanosecond offset at which the span ended.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.duration_ns)
    }
}

/// An in-flight stage measurement, handed out by [`Telemetry::start`]
/// and consumed by [`Telemetry::record`]. For a disabled handle it is
/// inert (`None` inside), so instrumentation sites need no `if`s.
#[derive(Debug, Clone, Copy)]
pub struct StageTimer(Option<Instant>);

/// The telemetry handle threaded through one pipeline run.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    /// Creation time; span starts are offsets from this. `None` iff
    /// disabled.
    epoch: Option<Instant>,
    spans: Vec<StageSpan>,
    counters: Vec<(&'static str, u64)>,
}

impl Telemetry {
    /// An enabled handle; spans recorded from now on.
    pub fn new() -> Self {
        Telemetry {
            enabled: true,
            epoch: Some(Instant::now()),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// The disabled handle: records nothing, allocates nothing.
    pub fn off() -> Self {
        Telemetry::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The instant span offsets are measured from (`None` when
    /// disabled). Other span producers — the resolver's per-goal spans
    /// — time against this same epoch so their events nest correctly
    /// inside the stage spans in a Chrome trace.
    pub fn epoch(&self) -> Option<Instant> {
        self.epoch
    }

    /// True iff the handle is disabled *and* holds no heap memory —
    /// the zero-cost-when-off guarantee, asserted by tests.
    pub fn allocates_nothing(&self) -> bool {
        !self.enabled && self.spans.capacity() == 0 && self.counters.capacity() == 0
    }

    /// Begin timing a stage. Cheap and infallible either way; on a
    /// disabled handle the returned timer is inert.
    pub fn start(&self) -> StageTimer {
        StageTimer(if self.enabled {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Close a stage span opened by [`Telemetry::start`], attributing
    /// `diags` diagnostics to it. No-op on a disabled handle.
    pub fn record(&mut self, stage: Stage, timer: StageTimer, diags: u64) {
        let (Some(epoch), Some(t0)) = (self.epoch, timer.0) else {
            return;
        };
        self.spans.push(StageSpan {
            stage,
            start_ns: saturating_ns(t0.duration_since(epoch).as_nanos()),
            duration_ns: saturating_ns(t0.elapsed().as_nanos()),
            diags,
        });
    }

    /// Record a named counter (core node counts, cache sizes, ...).
    /// No-op on a disabled handle.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if self.enabled {
            self.counters.push((name, value));
        }
    }

    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }

    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// Sum of all recorded span durations.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.duration_ns))
    }

    /// Human-readable per-stage timing table.
    ///
    /// ```text
    /// stage         time        %   diags
    /// lex          0.041ms   3.1%       0
    /// ...
    /// total        1.315ms    —        2
    /// ```
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_ns().max(1);
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>7} {:>7}",
            "stage", "time", "%", "diags"
        );
        let mut diags_total = 0u64;
        for s in &self.spans {
            diags_total += s.diags;
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>6.1}% {:>7}",
                s.stage.name(),
                fmt_ns(s.duration_ns),
                s.duration_ns as f64 * 100.0 / total as f64,
                s.diags,
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>7} {:>7}",
            "total",
            fmt_ns(self.total_ns()),
            "",
            diags_total,
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "--");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<24} {value}");
            }
        }
        out
    }

    /// Serialize the spans and counters as two fields (`"spans"`,
    /// `"counters"`) of the writer's current object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array_field("spans");
        for s in &self.spans {
            w.begin_object();
            w.field_str("stage", s.stage.name());
            w.field_u64("start_ns", s.start_ns);
            w.field_u64("duration_ns", s.duration_ns);
            w.field_u64("diags", s.diags);
            w.end_object();
        }
        w.end_array();
        w.begin_object_field("counters");
        for (name, value) in &self.counters {
            w.field_u64(name, *value);
        }
        w.end_object();
    }
}

fn saturating_ns(n: u128) -> u64 {
    n.min(u64::MAX as u128) as u64
}

/// Render nanoseconds as fixed-width milliseconds.
fn fmt_ns(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// A labelled tree node: the building block of resolution
/// explain-traces (and any future hierarchical trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    pub label: String,
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    pub fn leaf(label: impl Into<String>) -> Self {
        TraceNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    pub fn new(label: impl Into<String>, children: Vec<TraceNode>) -> Self {
        TraceNode {
            label: label.into(),
            children,
        }
    }

    /// Total number of nodes in the tree (iterative).
    pub fn size(&self) -> usize {
        let mut n = 0;
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            n += 1;
            stack.extend(node.children.iter());
        }
        n
    }

    /// Render the tree as indented lines, two spaces per level.
    /// Iterative depth-first traversal: derivations as deep as the
    /// resolver's budget allows cannot overflow the native stack.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    pub fn render_into(&self, out: &mut String) {
        let mut stack: Vec<(&TraceNode, usize)> = vec![(self, 0)];
        while let Some((node, depth)) = stack.pop() {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&node.label);
            out.push('\n');
            for child in node.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_allocates_nothing_and_records_nothing() {
        let mut t = Telemetry::off();
        assert!(!t.is_enabled());
        assert!(t.allocates_nothing());
        let timer = t.start();
        t.record(Stage::Lex, timer, 3);
        t.counter("core_nodes", 17);
        assert!(t.spans().is_empty());
        assert!(t.counters().is_empty());
        assert!(t.allocates_nothing(), "record/counter must not allocate");
    }

    #[test]
    fn enabled_handle_records_monotone_spans() {
        let mut t = Telemetry::new();
        for stage in [Stage::Lex, Stage::Parse, Stage::Elaborate] {
            let timer = t.start();
            // A tiny bit of work so durations are nonzero on coarse clocks.
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            std::hint::black_box(x);
            t.record(stage, timer, 1);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        for w in spans.windows(2) {
            assert!(w[1].start_ns >= w[0].start_ns, "{spans:?}");
            assert!(w[1].start_ns >= w[0].end_ns(), "spans overlap: {spans:?}");
        }
        assert!(t.total_ns() > 0);
        let table = t.render_table();
        assert!(table.contains("elaborate"), "{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn telemetry_json_is_well_formed() {
        let mut t = Telemetry::new();
        let timer = t.start();
        t.record(Stage::Eval, timer, 0);
        t.counter("core_nodes", 99);
        let mut w = JsonWriter::new();
        w.begin_object();
        t.write_json(&mut w);
        w.end_object();
        let s = w.finish();
        let res = json::check(&s);
        assert!(res.is_ok(), "{res:?}\n{s}");
        assert!(s.contains("\"stage\": \"eval\""), "{s}");
        assert!(s.contains("\"core_nodes\": 99"), "{s}");
    }

    #[test]
    fn trace_tree_renders_indented() {
        let tree = TraceNode::new(
            "goal A",
            vec![
                TraceNode::new("goal B", vec![TraceNode::leaf("goal C")]),
                TraceNode::leaf("goal D"),
            ],
        );
        assert_eq!(tree.size(), 4);
        assert_eq!(tree.render(), "goal A\n  goal B\n    goal C\n  goal D\n");
    }

    #[test]
    fn deep_trace_tree_renders_iteratively() {
        // Deep enough that a recursive render would overflow the native
        // stack; indentation grows with depth so keep it modest — the
        // rendered size is quadratic in depth.
        const DEPTH: usize = 10_000;
        let mut node = TraceNode::leaf("bottom");
        for i in 0..DEPTH {
            node = TraceNode::new(format!("level {i}"), vec![node]);
        }
        assert_eq!(node.size(), DEPTH + 1);
        let rendered = node.render();
        assert!(rendered.ends_with(&format!("{}bottom\n", "  ".repeat(DEPTH))));
        // Dismantle iteratively too: Drop on a deep Vec chain recurses.
        let mut stack = vec![node];
        while let Some(mut n) = stack.pop() {
            stack.append(&mut n.children);
        }
    }
}
