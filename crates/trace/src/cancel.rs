//! Cooperative cancellation for pipeline runs.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between a
//! controller (the serve front end, a test harness) and the pipeline
//! stages doing the work. The controller either calls
//! [`CancelToken::cancel`] or constructs the token with a deadline;
//! the workers poll [`CancelToken::is_cancelled`] at stage boundaries
//! and inside their budget loops and unwind gracefully with a
//! dedicated error instead of being killed.
//!
//! The design constraints match the rest of `tc-trace`:
//!
//! * **Cheap to poll.** The fast path is one relaxed atomic load.
//!   A deadline is only consulted while the flag is still clear, and
//!   once the deadline trips the flag is latched so later polls are
//!   loads again.
//! * **Optional everywhere.** Pipeline code holds an
//!   `Option<CancelToken>`; `None` costs one branch per poll site.
//! * **No unwinding.** Cancellation is an ordinary error value
//!   propagated through the stage result types, never a panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional wall-clock deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken::at(Instant::now() + timeout)
    }

    /// A token that trips at the given instant.
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Latch the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled (explicitly or by deadline)?
    ///
    /// One relaxed load on the fast path; reads the clock only while
    /// an unexpired deadline is pending, and latches the flag when the
    /// deadline trips so subsequent polls are loads again.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The wall-clock deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_and_latches() {
        let t = CancelToken::at(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched: the flag itself is now set.
        assert!(t.inner.cancelled.load(Ordering::Relaxed));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_trip_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_some_and(|r| r > Duration::ZERO));
        t.cancel();
        assert!(t.is_cancelled());
    }
}
