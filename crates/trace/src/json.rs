//! A small, allocation-light JSON writer, a well-formedness checker,
//! and a value parser.
//!
//! The build environment is offline (no serde), and before this module
//! existed every JSON emitter in the repository — pipeline stats, the
//! bench report — was a hand-rolled format string, one typo away from
//! invalid output. [`JsonWriter`] makes structurally invalid JSON hard
//! to produce (commas and quoting are managed by the writer, strings
//! are escaped, non-finite floats degrade to `null`), and [`check`]
//! is a minimal recursive-descent validator the tests and the bench
//! harness run over every emitted document. [`parse`] builds a
//! [`Value`] tree from a document, for the consumers that read our own
//! reports back (the bench comparator, trace-format tests).

use std::fmt::Write as _;

/// Incremental JSON document builder.
///
/// Containers are explicit: [`JsonWriter::begin_object`] /
/// [`JsonWriter::end_object`] (and the `_field` variants for nested
/// containers inside an object). Field helpers insert commas and quote
/// and escape keys/values, so the output is well-formed by
/// construction as long as begins and ends are balanced — which
/// [`check`] verifies in tests anyway.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once the container has at
    /// least one item (so the next item needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Comma bookkeeping before writing an item into the current
    /// container.
    fn item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.buf.push_str(", ");
            }
            *has_items = true;
        }
    }

    fn push_key(&mut self, key: &str) {
        self.item();
        escape_into(key, &mut self.buf);
        self.buf.push_str(": ");
    }

    /// Open an object as the root value or as an array element.
    pub fn begin_object(&mut self) {
        self.item();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Open an object-valued field of the current object.
    pub fn begin_object_field(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Open an array as the root value or as an array element.
    pub fn begin_array(&mut self) {
        self.item();
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Open an array-valued field of the current object.
    pub fn begin_array_field(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    pub fn field_str(&mut self, key: &str, value: &str) {
        self.push_key(key);
        escape_into(value, &mut self.buf);
    }

    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    pub fn field_i64(&mut self, key: &str, value: i64) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Fixed-precision float field; NaN and infinities (not
    /// representable in JSON) are written as `null`.
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.push_key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
    }

    pub fn field_null(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push_str("null");
    }

    /// String array element.
    pub fn elem_str(&mut self, value: &str) {
        self.item();
        escape_into(value, &mut self.buf);
    }

    /// Integer array element.
    pub fn elem_u64(&mut self, value: u64) {
        self.item();
        let _ = write!(self.buf, "{value}");
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

/// Write `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting accepted by [`check`]: the validator is
/// recursive, and our own documents are a handful of levels deep.
const CHECK_MAX_DEPTH: usize = 128;

/// Minimal JSON well-formedness check (RFC 8259 value grammar, no
/// number-range validation). Returns the byte offset and a message for
/// the first violation. Used by tests and the bench harness to make
/// sure no emitter drifts into invalid output.
pub fn check(src: &str) -> Result<(), String> {
    let mut p = Checker {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the top-level value"));
    }
    Ok(())
}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Checker<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > CHECK_MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut int_digits = 0usize;
        let first = self.peek();
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            int_digits += 1;
        }
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if first == Some(b'0') && int_digits > 1 {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0usize;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0usize;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        Ok(())
    }
}

/// A parsed JSON value. Objects keep insertion order (our documents
/// are small; linear key lookup is fine and keeps ordering stable for
/// reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as an integer, when it is one (no fractional
    /// part, within `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`Value`]. Accepts exactly what
/// [`check`] accepts (same grammar, same depth limit); numbers are
/// read as `f64`, which is exact for every integer our writers emit
/// below 2^53 and a documented approximation beyond.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        chk: Checker {
            bytes: src.as_bytes(),
            pos: 0,
        },
        src,
    };
    p.chk.skip_ws();
    let v = p.value(0)?;
    p.chk.skip_ws();
    if p.chk.pos != p.chk.bytes.len() {
        return Err(p.chk.err("trailing content after the top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    chk: Checker<'a>,
    src: &'a str,
}

impl Parser<'_> {
    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > CHECK_MAX_DEPTH {
            return Err(self.chk.err("nesting too deep"));
        }
        match self.chk.peek() {
            Some(b'{') => {
                self.chk.expect(b'{')?;
                self.chk.skip_ws();
                let mut fields = Vec::new();
                if self.chk.peek() == Some(b'}') {
                    self.chk.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.chk.skip_ws();
                    let key = self.string()?;
                    self.chk.skip_ws();
                    self.chk.expect(b':')?;
                    self.chk.skip_ws();
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.chk.skip_ws();
                    match self.chk.peek() {
                        Some(b',') => self.chk.pos += 1,
                        Some(b'}') => {
                            self.chk.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.chk.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'[') => {
                self.chk.expect(b'[')?;
                self.chk.skip_ws();
                let mut items = Vec::new();
                if self.chk.peek() == Some(b']') {
                    self.chk.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.chk.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.chk.skip_ws();
                    match self.chk.peek() {
                        Some(b',') => self.chk.pos += 1,
                        Some(b']') => {
                            self.chk.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.chk.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.chk.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.chk.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.chk.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.chk.pos;
                self.chk.number()?;
                let text = &self.src[start..self.chk.pos];
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|e| self.chk.err(&format!("unreadable number `{text}`: {e}")))
            }
            Some(_) => Err(self.chk.err("expected a JSON value")),
            None => Err(self.chk.err("unexpected end of input")),
        }
    }

    /// Validate a string with the checker, then unescape the validated
    /// span (escapes already known good, so decoding is infallible).
    fn string(&mut self) -> Result<String, String> {
        let start = self.chk.pos;
        self.chk.string()?;
        let raw = &self.src[start + 1..self.chk.pos - 1];
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars.next().and_then(|h| h.to_digit(16)).unwrap_or(0);
                        code = code * 16 + d;
                    }
                    // Lone surrogates have no char; degrade to U+FFFD
                    // rather than failing a validated document.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "deep \"tower\"\n");
        w.field_u64("goals", 42);
        w.field_f64("hit_rate", 0.9375, 4);
        w.field_f64("bad", f64::NAN, 4);
        w.field_bool("ok", true);
        w.field_null("eval");
        w.begin_array_field("spans");
        for i in 0..2 {
            w.begin_object();
            w.field_u64("start", i);
            w.end_object();
        }
        w.elem_str("tail");
        w.elem_u64(7);
        w.end_array();
        w.begin_object_field("nested");
        w.field_i64("neg", -3);
        w.end_object();
        w.end_object();
        let s = w.finish();
        let res = check(&s);
        assert!(res.is_ok(), "{res:?}\n{s}");
        assert!(s.contains("\"hit_rate\": 0.9375"), "{s}");
        assert!(s.contains("\"bad\": null"), "{s}");
        assert!(s.contains("\\\"tower\\\"\\n"), "{s}");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_array_field("xs");
        w.end_array();
        w.begin_object_field("o");
        w.end_object();
        w.end_object();
        let s = w.finish();
        check(&s).unwrap();
        assert_eq!(s, "{\"xs\": [], \"o\": {}}");
    }

    #[test]
    fn checker_accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\u00e9b\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}",
            "  [ 1 , 2 ]  ",
        ] {
            let res = check(ok);
            assert!(res.is_ok(), "{ok}: {res:?}");
        }
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{} trailing",
            "nul",
        ] {
            assert!(check(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn checker_depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(CHECK_MAX_DEPTH + 2) + &"]".repeat(CHECK_MAX_DEPTH + 2);
        assert!(check(&deep).is_err());
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "deep \"tower\"\n");
        w.field_u64("goals", 42);
        w.field_f64("hit_rate", 0.9375, 4);
        w.field_null("eval");
        w.field_bool("ok", true);
        w.begin_array_field("xs");
        w.elem_u64(1);
        w.elem_str("two");
        w.end_array();
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("deep \"tower\"\n")
        );
        assert_eq!(v.get("goals").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("hit_rate").and_then(Value::as_f64), Some(0.9375));
        assert_eq!(v.get("eval"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_str(), Some("two"));
        // Non-integer and negative numbers refuse as_u64.
        assert_eq!(v.get("hit_rate").and_then(Value::as_u64), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn parser_rejects_what_the_checker_rejects() {
        for bad in ["{", "[1 2]", "{\"a\" 1}", "01", "\"bad \\q\"", "{} x"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
        // Escape decoding, including a \u escape.
        let v = parse("\"a\\u00e9b\\tc\"").unwrap();
        assert_eq!(v.as_str(), Some("a\u{e9}b\tc"));
    }
}
