//! A small, allocation-light JSON writer and a well-formedness
//! checker.
//!
//! The build environment is offline (no serde), and before this module
//! existed every JSON emitter in the repository — pipeline stats, the
//! bench report — was a hand-rolled format string, one typo away from
//! invalid output. [`JsonWriter`] makes structurally invalid JSON hard
//! to produce (commas and quoting are managed by the writer, strings
//! are escaped, non-finite floats degrade to `null`), and [`check`]
//! is a minimal recursive-descent validator the tests and the bench
//! harness run over every emitted document.

use std::fmt::Write as _;

/// Incremental JSON document builder.
///
/// Containers are explicit: [`JsonWriter::begin_object`] /
/// [`JsonWriter::end_object`] (and the `_field` variants for nested
/// containers inside an object). Field helpers insert commas and quote
/// and escape keys/values, so the output is well-formed by
/// construction as long as begins and ends are balanced — which
/// [`check`] verifies in tests anyway.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once the container has at
    /// least one item (so the next item needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Comma bookkeeping before writing an item into the current
    /// container.
    fn item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.buf.push_str(", ");
            }
            *has_items = true;
        }
    }

    fn push_key(&mut self, key: &str) {
        self.item();
        escape_into(key, &mut self.buf);
        self.buf.push_str(": ");
    }

    /// Open an object as the root value or as an array element.
    pub fn begin_object(&mut self) {
        self.item();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Open an object-valued field of the current object.
    pub fn begin_object_field(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push('{');
        self.stack.push(false);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Open an array as the root value or as an array element.
    pub fn begin_array(&mut self) {
        self.item();
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Open an array-valued field of the current object.
    pub fn begin_array_field(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push('[');
        self.stack.push(false);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    pub fn field_str(&mut self, key: &str, value: &str) {
        self.push_key(key);
        escape_into(value, &mut self.buf);
    }

    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    pub fn field_i64(&mut self, key: &str, value: i64) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.push_key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Fixed-precision float field; NaN and infinities (not
    /// representable in JSON) are written as `null`.
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.push_key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
    }

    pub fn field_null(&mut self, key: &str) {
        self.push_key(key);
        self.buf.push_str("null");
    }

    /// String array element.
    pub fn elem_str(&mut self, value: &str) {
        self.item();
        escape_into(value, &mut self.buf);
    }

    /// Integer array element.
    pub fn elem_u64(&mut self, value: u64) {
        self.item();
        let _ = write!(self.buf, "{value}");
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

/// Write `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting accepted by [`check`]: the validator is
/// recursive, and our own documents are a handful of levels deep.
const CHECK_MAX_DEPTH: usize = 128;

/// Minimal JSON well-formedness check (RFC 8259 value grammar, no
/// number-range validation). Returns the byte offset and a message for
/// the first violation. Used by tests and the bench harness to make
/// sure no emitter drifts into invalid output.
pub fn check(src: &str) -> Result<(), String> {
    let mut p = Checker {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the top-level value"));
    }
    Ok(())
}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Checker<'_> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > CHECK_MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut int_digits = 0usize;
        let first = self.peek();
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            int_digits += 1;
        }
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if first == Some(b'0') && int_digits > 1 {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0usize;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0usize;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "deep \"tower\"\n");
        w.field_u64("goals", 42);
        w.field_f64("hit_rate", 0.9375, 4);
        w.field_f64("bad", f64::NAN, 4);
        w.field_bool("ok", true);
        w.field_null("eval");
        w.begin_array_field("spans");
        for i in 0..2 {
            w.begin_object();
            w.field_u64("start", i);
            w.end_object();
        }
        w.elem_str("tail");
        w.elem_u64(7);
        w.end_array();
        w.begin_object_field("nested");
        w.field_i64("neg", -3);
        w.end_object();
        w.end_object();
        let s = w.finish();
        let res = check(&s);
        assert!(res.is_ok(), "{res:?}\n{s}");
        assert!(s.contains("\"hit_rate\": 0.9375"), "{s}");
        assert!(s.contains("\"bad\": null"), "{s}");
        assert!(s.contains("\\\"tower\\\"\\n"), "{s}");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_array_field("xs");
        w.end_array();
        w.begin_object_field("o");
        w.end_object();
        w.end_object();
        let s = w.finish();
        check(&s).unwrap();
        assert_eq!(s, "{\"xs\": [], \"o\": {}}");
    }

    #[test]
    fn checker_accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\u00e9b\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}",
            "  [ 1 , 2 ]  ",
        ] {
            let res = check(ok);
            assert!(res.is_ok(), "{ok}: {res:?}");
        }
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{} trailing",
            "nul",
        ] {
            assert!(check(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn checker_depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(CHECK_MAX_DEPTH + 2) + &"]".repeat(CHECK_MAX_DEPTH + 2);
        assert!(check(&deep).is_err());
    }
}
