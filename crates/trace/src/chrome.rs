//! Chrome trace-event export: stage spans and per-goal resolution
//! spans as a `traceEvents` JSON document loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Every span becomes one *complete* event (`"ph": "X"`) with
//! microsecond `ts`/`dur` offsets from the telemetry epoch. All events
//! share one pid/tid, so the viewer nests them by time containment:
//! per-goal resolution spans recorded against the same epoch render
//! inside the `elaborate` stage span without any explicit parent
//! links. The document is emitted through [`JsonWriter`], so it can
//! never be structurally malformed.

use crate::json::JsonWriter;
use crate::Telemetry;

/// One generic named span, nanoseconds relative to the telemetry
/// epoch. Pipeline stages come from [`Telemetry::spans`]; other
/// producers (the resolver's per-goal spans) build these directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Event name shown in the viewer (e.g. a goal's predicate).
    pub name: String,
    /// Event category (`"stage"`, `"resolve"`, ...), filterable in the
    /// viewer.
    pub cat: &'static str,
    /// Start offset from the telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub duration_ns: u64,
}

/// All emitted events carry this pid/tid: the trace describes one
/// logical pipeline run, and a single track lets the viewer nest spans
/// by time containment.
const TRACE_PID: u64 = 1;
const TRACE_TID: u64 = 1;

fn write_event(w: &mut JsonWriter, name: &str, cat: &str, start_ns: u64, duration_ns: u64) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", cat);
    w.field_str("ph", "X");
    // The trace-event format measures in microseconds; keep the
    // sub-microsecond part as decimals so short spans stay nonzero.
    w.field_f64("ts", start_ns as f64 / 1e3, 3);
    w.field_f64("dur", duration_ns as f64 / 1e3, 3);
    w.field_u64("pid", TRACE_PID);
    w.field_u64("tid", TRACE_TID);
    w.end_object();
}

/// Render telemetry stage spans plus any extra spans (same epoch!) as
/// one Chrome trace-event JSON document. With telemetry disabled and
/// no extra spans the document is valid and empty.
pub fn chrome_trace_json(telemetry: &Telemetry, extra: &[SpanEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.begin_array_field("traceEvents");
    for s in telemetry.spans() {
        write_event(&mut w, s.stage.name(), "stage", s.start_ns, s.duration_ns);
    }
    for e in extra {
        write_event(&mut w, &e.name, e.cat, e.start_ns, e.duration_ns);
    }
    w.end_array();
    w.field_str("displayTimeUnit", "ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Stage};

    #[test]
    fn empty_trace_is_valid_json() {
        let t = Telemetry::off();
        let s = chrome_trace_json(&t, &[]);
        json::check(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\"traceEvents\": []"), "{s}");
    }

    #[test]
    fn stage_and_extra_events_are_complete_events() {
        let mut t = Telemetry::new();
        let timer = t.start();
        std::hint::black_box((0..1000).sum::<u64>());
        t.record(Stage::Elaborate, timer, 0);
        let goal = SpanEvent {
            name: "Eq (List Int)".to_string(),
            cat: "resolve",
            start_ns: 100,
            duration_ns: 50,
        };
        let s = chrome_trace_json(&t, &[goal]);
        json::check(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\"name\": \"elaborate\""), "{s}");
        assert!(s.contains("\"name\": \"Eq (List Int)\""), "{s}");
        assert!(s.contains("\"cat\": \"resolve\""), "{s}");
        assert_eq!(s.matches("\"ph\": \"X\"").count(), 2, "{s}");
        // 100ns = 0.100µs.
        assert!(s.contains("\"ts\": 0.100"), "{s}");
        assert!(s.contains("\"dur\": 0.050"), "{s}");
    }
}
