//! The flight recorder: request-scoped event tracing over fixed-size
//! ring buffers.
//!
//! Where [`crate::Telemetry`] answers "where did the time go" for one
//! pipeline run and [`crate::metrics::MetricsRegistry`] answers "how
//! much work happened" in aggregate, the [`EventLog`] answers "what
//! happened *inside this request*": a monotonic-clock-stamped sequence
//! of statically-keyed events (stage boundaries, resolver goals, cache
//! evictions, evaluator budget checkpoints, cancellations, injected
//! faults) tagged with a per-request `trace_id`. The design constraints
//! mirror the other two instruments:
//!
//! * **Static keys.** Every event is an [`EventKind`] variant with two
//!   `u64` payload slots whose meaning is fixed per kind. No strings on
//!   the hot path; names only appear at serialization time.
//! * **Fixed memory.** An enabled log is one pre-allocated ring of
//!   [`Event`]s (plain `Copy` structs). Recording overwrites the oldest
//!   entry when full, so steady-state recording never allocates after
//!   warm-up — [`EventLog::capacity_is_fixed`] is asserted by tests.
//! * **Zero cost when off.** [`EventLog::off`] holds `None`; every
//!   record call is a branch and nothing else, in the same style as
//!   `MetricsRegistry::allocates_nothing`.
//!
//! Servers hand each request an [`EventScope`] (the log plus the
//! request's `trace_id`) so pipeline stages record without knowing
//! where ids come from; a tail sampler later extracts one request's
//! events with [`EventLog::extract`] when the request turns out to be
//! worth keeping.

use crate::chrome::SpanEvent;
use crate::json::JsonWriter;
use crate::Stage;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Outcome-class codes carried by [`EventKind::RequestEnd`] (`arg0`).
pub const OUTCOME_OK: u64 = 0;
pub const OUTCOME_INTERNAL: u64 = 1;
pub const OUTCOME_DEADLINE: u64 = 2;
pub const OUTCOME_OVERLOADED: u64 = 3;
pub const OUTCOME_BAD_REQUEST: u64 = 4;

/// The class label for a [`EventKind::RequestEnd`] outcome code.
pub fn outcome_name(code: u64) -> &'static str {
    match code {
        OUTCOME_OK => "ok",
        OUTCOME_INTERNAL => "internal",
        OUTCOME_DEADLINE => "deadline",
        OUTCOME_OVERLOADED => "overloaded",
        OUTCOME_BAD_REQUEST => "bad-request",
        _ => "unknown",
    }
}

/// What a recorded event means. The two payload args are interpreted
/// per kind; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request began processing. `arg0` = request sequence number.
    RequestStart,
    /// A request finished. `arg0` = outcome code ([`outcome_name`]),
    /// `arg1` = end-to-end latency in microseconds.
    RequestEnd,
    /// A pipeline stage began. `arg0` = [`Stage`] index in
    /// [`Stage::ALL`].
    StageStart,
    /// A pipeline stage ended. `arg0` = stage index, `arg1` =
    /// diagnostics produced so far.
    StageEnd,
    /// The resolver answered one goal. `arg0` = backward-chaining
    /// depth, `arg1` = 0 memo miss / 1 memo hit / 2 not cacheable.
    Goal,
    /// The resolve cache evicted entries to stay under capacity.
    /// `arg0` = entries evicted by this trim.
    CacheEvict,
    /// The evaluator passed a budget checkpoint (the cancellation-poll
    /// cadence). `arg0` = fuel used so far, `arg1` = current depth.
    EvalCheckpoint,
    /// Cooperative cancellation observed. `arg0` = stage index where
    /// the deadline tripped.
    Cancelled,
    /// The deterministic fault plan fired. `arg0` = stage index,
    /// `arg1` = 0 panic / 1 delay / 2 budget.
    FaultInjected,
    /// The request was shed at admission. `arg0` = queue depth,
    /// `arg1` = the `retry_after_ms` hint returned.
    Shed,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestStart => "request-start",
            EventKind::RequestEnd => "request-end",
            EventKind::StageStart => "stage-start",
            EventKind::StageEnd => "stage-end",
            EventKind::Goal => "goal",
            EventKind::CacheEvict => "cache-evict",
            EventKind::EvalCheckpoint => "eval-checkpoint",
            EventKind::Cancelled => "cancelled",
            EventKind::FaultInjected => "fault-injected",
            EventKind::Shed => "shed",
        }
    }
}

/// The stage name for an event's stage-index payload ("?" when the
/// index is out of range — a malformed event, not a panic).
fn stage_name(index: u64) -> &'static str {
    Stage::ALL.get(index as usize).map_or("?", |s| s.name())
}

/// One recorded event: fixed-size, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The request this event belongs to.
    pub trace_id: u64,
    /// Nanoseconds since the log's epoch (monotonic clock).
    pub ts_ns: u64,
    pub kind: EventKind,
    pub arg0: u64,
    pub arg1: u64,
}

impl Event {
    /// Serialize as one object with kind-specific field names, so
    /// dumps are self-describing without consumers memorizing the
    /// `arg0`/`arg1` conventions.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("ts_ns", self.ts_ns);
        w.field_str("kind", self.kind.name());
        match self.kind {
            EventKind::RequestStart => w.field_u64("seq", self.arg0),
            EventKind::RequestEnd => {
                w.field_str("outcome", outcome_name(self.arg0));
                w.field_u64("latency_us", self.arg1);
            }
            EventKind::StageStart => w.field_str("stage", stage_name(self.arg0)),
            EventKind::StageEnd => {
                w.field_str("stage", stage_name(self.arg0));
                w.field_u64("diags", self.arg1);
            }
            EventKind::Goal => {
                w.field_u64("depth", self.arg0);
                w.field_str(
                    "memo",
                    match self.arg1 {
                        0 => "miss",
                        1 => "hit",
                        _ => "uncached",
                    },
                );
            }
            EventKind::CacheEvict => w.field_u64("evicted", self.arg0),
            EventKind::EvalCheckpoint => {
                w.field_u64("fuel_used", self.arg0);
                w.field_u64("depth", self.arg1);
            }
            EventKind::Cancelled => w.field_str("stage", stage_name(self.arg0)),
            EventKind::FaultInjected => {
                w.field_str("stage", stage_name(self.arg0));
                w.field_str(
                    "action",
                    match self.arg1 {
                        0 => "panic",
                        1 => "delay",
                        _ => "budget",
                    },
                );
            }
            EventKind::Shed => {
                w.field_u64("queue_depth", self.arg0);
                w.field_u64("retry_after_ms", self.arg1);
            }
        }
        w.end_object();
    }
}

/// Fixed-capacity overwrite-oldest ring. `events` is allocated once at
/// construction and never grows.
#[derive(Debug)]
struct Ring {
    events: Vec<Event>,
    capacity: usize,
    /// Next write position.
    head: usize,
    /// Live entries (≤ capacity).
    len: usize,
    /// Total events ever recorded, including overwritten ones.
    recorded: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    ring: Mutex<Ring>,
}

/// Non-poisoning lock: a worker that panicked mid-record leaves at
/// worst one torn `Copy` event, never a torn data structure, so the
/// recorder keeps working after isolation catches the panic.
fn lock_ring(inner: &Inner) -> std::sync::MutexGuard<'_, Ring> {
    inner.ring.lock().unwrap_or_else(|e| e.into_inner())
}

/// The flight-recorder handle. Cloning shares the underlying ring
/// (it is an `Arc`); the disabled log is a single `None`.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<Inner>>,
}

impl EventLog {
    /// The disabled recorder: records nothing, allocates nothing.
    pub fn off() -> Self {
        EventLog::default()
    }

    /// An enabled recorder holding a ring of exactly `capacity`
    /// events (minimum 1), allocated here and never again.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                ring: Mutex::new(Ring {
                    events: Vec::with_capacity(capacity),
                    capacity,
                    head: 0,
                    len: 0,
                    recorded: 0,
                }),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True iff the recorder is disabled and holds no heap memory —
    /// the zero-cost-when-off guarantee, asserted by tests.
    pub fn allocates_nothing(&self) -> bool {
        self.inner.is_none()
    }

    /// True iff the ring's backing storage still has its construction
    /// capacity — recording can never have grown it. Vacuously true
    /// when disabled.
    pub fn capacity_is_fixed(&self) -> bool {
        self.inner.as_ref().is_none_or(|i| {
            let r = lock_ring(i);
            r.events.capacity() == r.capacity && r.len <= r.capacity
        })
    }

    /// Record one event. No-op when disabled; overwrites the oldest
    /// event when the ring is full.
    pub fn record(&self, trace_id: u64, kind: EventKind, arg0: u64, arg1: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let ts_ns = inner.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let ev = Event {
            trace_id,
            ts_ns,
            kind,
            arg0,
            arg1,
        };
        let mut r = lock_ring(inner);
        if r.len < r.capacity {
            r.events.push(ev);
            r.len += 1;
        } else {
            let h = r.head;
            r.events[h] = ev;
        }
        r.head = (r.head + 1) % r.capacity;
        r.recorded = r.recorded.saturating_add(1);
    }

    /// Total events ever recorded (0 when disabled), including those
    /// later overwritten by ring wraparound.
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock_ring(i).recorded)
    }

    /// Copy out one request's surviving events, oldest first. Events
    /// already overwritten by wraparound are gone — the returned
    /// prefix may be truncated for requests larger than the ring.
    pub fn extract(&self, trace_id: u64) -> Vec<Event> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let r = lock_ring(inner);
        let mut out = Vec::new();
        // Oldest entry sits at `head` once the ring has wrapped, at 0
        // before that.
        let start = if r.len < r.capacity { 0 } else { r.head };
        for k in 0..r.len {
            let ev = r.events[(start + k) % r.capacity];
            if ev.trace_id == trace_id {
                out.push(ev);
            }
        }
        out
    }

    /// A recording scope bound to one request's `trace_id`.
    pub fn scope(&self, trace_id: u64) -> EventScope {
        EventScope {
            log: self.clone(),
            trace_id,
        }
    }
}

/// One request's handle into the recorder: the log plus the request's
/// `trace_id`, cloned cheaply into every pipeline layer. The default
/// scope is disabled, so code paths outside a server record nothing
/// and pay one branch.
#[derive(Debug, Clone, Default)]
pub struct EventScope {
    log: EventLog,
    trace_id: u64,
}

impl EventScope {
    /// The disabled scope (the default): every record is one branch.
    pub fn off() -> Self {
        EventScope::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.log.is_enabled()
    }

    /// See [`EventLog::allocates_nothing`].
    pub fn allocates_nothing(&self) -> bool {
        self.log.allocates_nothing()
    }

    pub fn record(&self, kind: EventKind, arg0: u64, arg1: u64) {
        self.log.record(self.trace_id, kind, arg0, arg1);
    }

    pub fn stage_start(&self, stage: Stage) {
        self.record(EventKind::StageStart, stage as u64, 0);
    }

    pub fn stage_end(&self, stage: Stage, diags: u64) {
        self.record(EventKind::StageEnd, stage as u64, diags);
    }

    pub fn cancelled(&self, stage: Stage) {
        self.record(EventKind::Cancelled, stage as u64, 0);
    }
}

/// Pair a trace's events into Chrome spans, rebased so the trace's
/// first event sits at t=0: `StageStart`/`StageEnd` become stage
/// spans, `RequestStart`/`RequestEnd` a whole-request span, and point
/// events (goals, checkpoints, faults, ...) zero-duration markers.
pub fn chrome_spans(events: &[Event]) -> Vec<SpanEvent> {
    let t0 = events.first().map_or(0, |e| e.ts_ns);
    let mut spans = Vec::new();
    let mut open_stages: Vec<(u64, u64)> = Vec::new(); // (stage index, start)
    let mut request_start: Option<u64> = None;
    let last_ts = events.last().map_or(0, |e| e.ts_ns);
    for e in events {
        let ts = e.ts_ns.saturating_sub(t0);
        match e.kind {
            EventKind::RequestStart => request_start = Some(ts),
            EventKind::RequestEnd => {
                let start = request_start.take().unwrap_or(0);
                spans.push(SpanEvent {
                    name: format!("request ({})", outcome_name(e.arg0)),
                    cat: "request",
                    start_ns: start,
                    duration_ns: ts.saturating_sub(start),
                });
            }
            EventKind::StageStart => open_stages.push((e.arg0, ts)),
            EventKind::StageEnd => {
                if let Some(pos) = open_stages.iter().rposition(|&(s, _)| s == e.arg0) {
                    let (s, start) = open_stages.remove(pos);
                    spans.push(SpanEvent {
                        name: stage_name(s).to_string(),
                        cat: "stage",
                        start_ns: start,
                        duration_ns: ts.saturating_sub(start),
                    });
                }
            }
            _ => spans.push(SpanEvent {
                name: e.kind.name().to_string(),
                cat: "event",
                start_ns: ts,
                duration_ns: 0,
            }),
        }
    }
    // A stage that never ended (panic, deadline) still gets a span so
    // the failing stage is visible in the viewer.
    let end = last_ts.saturating_sub(t0);
    for (s, start) in open_stages {
        spans.push(SpanEvent {
            name: format!("{} (unfinished)", stage_name(s)),
            cat: "stage",
            start_ns: start,
            duration_ns: end.saturating_sub(start),
        });
    }
    if let Some(start) = request_start {
        spans.push(SpanEvent {
            name: "request (unfinished)".to_string(),
            cat: "request",
            start_ns: start,
            duration_ns: end.saturating_sub(start),
        });
    }
    spans.sort_by_key(|s| s.start_ns);
    spans
}

/// Render several traces' spans as one Chrome trace-event document,
/// one `pid` per trace so the viewer shows each request on its own
/// track. Used by `report --chrome`.
pub fn traces_chrome_json(traces: &[(u64, Vec<SpanEvent>)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.begin_array_field("traceEvents");
    for (trace_id, spans) in traces {
        for s in spans {
            w.begin_object();
            w.field_str("name", &s.name);
            w.field_str("cat", s.cat);
            w.field_str("ph", "X");
            w.field_f64("ts", s.start_ns as f64 / 1e3, 3);
            w.field_f64("dur", s.duration_ns as f64 / 1e3, 3);
            w.field_u64("pid", *trace_id);
            w.field_u64("tid", 1);
            w.end_object();
        }
    }
    w.end_array();
    w.field_str("displayTimeUnit", "ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn off_log_allocates_nothing_and_records_nothing() {
        let log = EventLog::off();
        assert!(!log.is_enabled());
        assert!(log.allocates_nothing());
        log.record(1, EventKind::Goal, 2, 1);
        assert!(log.allocates_nothing(), "recording must not allocate");
        assert_eq!(log.recorded(), 0);
        assert!(log.extract(1).is_empty());
        let scope = EventScope::off();
        scope.record(EventKind::Goal, 0, 0);
        scope.stage_start(Stage::Parse);
        assert!(scope.allocates_nothing());
    }

    #[test]
    fn ring_overwrites_oldest_and_never_grows() {
        let log = EventLog::with_capacity(4);
        for i in 0..10u64 {
            log.record(7, EventKind::Goal, i, 0);
        }
        assert_eq!(log.recorded(), 10);
        assert!(
            log.capacity_is_fixed(),
            "ring must never grow past construction capacity"
        );
        let events = log.extract(7);
        assert_eq!(events.len(), 4, "only the newest `capacity` survive");
        let depths: Vec<u64> = events.iter().map(|e| e.arg0).collect();
        assert_eq!(depths, vec![6, 7, 8, 9], "oldest-first order");
        // Timestamps are monotone.
        for pair in events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn extract_filters_by_trace_id() {
        let log = EventLog::with_capacity(16);
        let a = log.scope(1);
        let b = log.scope(2);
        a.record(EventKind::RequestStart, 1, 0);
        b.record(EventKind::RequestStart, 2, 0);
        a.stage_start(Stage::Parse);
        a.stage_end(Stage::Parse, 0);
        b.record(EventKind::RequestEnd, OUTCOME_OK, 10);
        a.record(EventKind::RequestEnd, OUTCOME_DEADLINE, 99);
        let ta = log.extract(1);
        let tb = log.extract(2);
        assert_eq!(ta.len(), 4);
        assert_eq!(tb.len(), 2);
        assert!(ta.iter().all(|e| e.trace_id == 1));
        assert_eq!(ta[3].kind, EventKind::RequestEnd);
        assert_eq!(ta[3].arg0, OUTCOME_DEADLINE);
    }

    #[test]
    fn event_json_is_valid_and_self_describing() {
        let log = EventLog::with_capacity(16);
        let s = log.scope(3);
        s.record(EventKind::RequestStart, 3, 0);
        s.stage_start(Stage::Elaborate);
        s.record(EventKind::Goal, 2, 1);
        s.record(EventKind::FaultInjected, 4, 0);
        s.record(EventKind::Shed, 31, 50);
        for e in log.extract(3) {
            let mut w = JsonWriter::new();
            e.write_json(&mut w);
            let out = w.finish();
            json::check(&out).unwrap_or_else(|err| panic!("{err}\n{out}"));
        }
        let goal = log.extract(3)[2];
        let mut w = JsonWriter::new();
        goal.write_json(&mut w);
        let out = w.finish();
        assert!(out.contains("\"kind\": \"goal\""), "{out}");
        assert!(out.contains("\"memo\": \"hit\""), "{out}");
        let fault = log.extract(3)[3];
        let mut w = JsonWriter::new();
        fault.write_json(&mut w);
        let out = w.finish();
        assert!(out.contains("\"stage\": \"elaborate\""), "{out}");
        assert!(out.contains("\"action\": \"panic\""), "{out}");
    }

    #[test]
    fn chrome_spans_pair_stage_boundaries_and_flag_unfinished_work() {
        let log = EventLog::with_capacity(32);
        let s = log.scope(5);
        s.record(EventKind::RequestStart, 5, 0);
        s.stage_start(Stage::Parse);
        s.stage_end(Stage::Parse, 0);
        s.stage_start(Stage::Elaborate);
        s.record(EventKind::FaultInjected, 4, 0); // panic: elaborate never ends
        let spans = chrome_spans(&log.extract(5));
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"parse"), "{names:?}");
        assert!(names.contains(&"fault-injected"), "{names:?}");
        assert!(
            names.contains(&"elaborate (unfinished)"),
            "the failing stage must be visible: {names:?}"
        );
        assert!(names.contains(&"request (unfinished)"), "{names:?}");
        let doc = traces_chrome_json(&[(5, spans)]);
        json::check(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"ph\": \"X\""), "{doc}");
        assert!(doc.contains("\"pid\": 5"), "{doc}");
    }
}
