//! Statically-keyed pipeline metrics: counters, gauges, and
//! log2-bucketed histograms.
//!
//! Telemetry spans answer "where did the time go"; this module answers
//! "how much work happened" — cache hits, interner allocations, parser
//! recoveries, thunks forced. The design constraints mirror
//! [`crate::Telemetry`]:
//!
//! * **Static keys.** Every metric is a variant of [`CounterId`],
//!   [`GaugeId`], or [`HistogramId`], with its name and unit in a
//!   compile-time catalog. No string hashing on the hot path, no way
//!   for two call sites to disagree about a metric's spelling.
//! * **One branch + one add when enabled.** The registry stores dense
//!   fixed-size arrays indexed by the id enums; recording is an array
//!   write behind a single `Option` check.
//! * **Zero allocation when disabled.** [`MetricsRegistry::off`] holds
//!   `None`; every record call is a branch and nothing else.
//!   [`MetricsRegistry::allocates_nothing`] asserts this in tests.
//!
//! Histograms use log2 bucketing: value `v` lands in bucket
//! `bit_length(v)` (0 for `v = 0`), so bucket `i >= 1` covers
//! `[2^(i-1), 2^i - 1]` and 65 buckets span all of `u64`. Counters
//! saturate instead of wrapping, so a pathological run can never make
//! a counter lie small.

use crate::json::JsonWriter;

/// Monotonically increasing event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Resolution goals answered by the memo table in O(1).
    ResolveCacheHits,
    /// Cacheable resolution goals derived from scratch.
    ResolveCacheMisses,
    /// Memo-table entries discarded to stay under a capacity cap.
    ResolveCacheEvictions,
    /// Goals entering the resolver (including subgoals).
    ResolveGoals,
    /// Fresh `FromInstance` derivation nodes built.
    ResolveDictsConstructed,
    /// Type-node interning requests answered by the hash-cons table.
    InternHits,
    /// Type nodes interned fresh (table growth).
    InternFresh,
    /// Parser error-recovery skips (sync to the next declaration).
    ParseRecoveries,
    /// Shared `$sh…` dictionary bindings hoisted by the CSE pass.
    ShareDictsHoisted,
    /// Dictionary construction occurrences rewritten to a shared ref.
    ShareOccurrencesShared,
    /// Call-by-need suspensions created by the evaluator.
    EvalThunksCreated,
    /// Thunk forces, including cache-hit re-forces.
    EvalForces,
    /// Evaluation steps consumed.
    EvalFuelUsed,
    /// Requests admitted to the serve queue.
    ServeRequests,
    /// Serve requests answered with a successful pipeline outcome.
    ServeOk,
    /// Serve requests that panicked and were isolated (`error:internal`).
    ServeErrInternal,
    /// Serve requests cancelled by their deadline (`error:deadline`).
    ServeErrDeadline,
    /// Serve requests shed at admission (`error:overloaded`).
    ServeErrOverloaded,
    /// Serve requests rejected as malformed (`error:bad-request`).
    ServeErrBadRequest,
    /// Requests whose optional traces were shed under queue pressure.
    ServeDegradedTraces,
    /// Requests whose resolve-cache capacity was shrunk under pressure.
    ServeDegradedCache,
    /// Faults injected by the deterministic fault plan.
    ServeFaultsInjected,
    /// Requests fully processed by this worker (per-worker registries
    /// each count their own; the fleet merge sums them).
    ServeProcessed,
    /// Flight-recorder traces retained by the tail sampler.
    ServeTracesRetained,
    /// Retained traces discarded because the retention store was full.
    ServeTracesDropped,
    /// Instances examined by the coherence checker.
    CoherenceInstancesChecked,
    /// Instance-head pairs put through pairwise unification.
    CoherencePairsUnified,
    /// Class-law programs generated and evaluated by the law harness.
    CoherenceLawsRun,
    /// Law programs that evaluated to a counterexample (`False`).
    CoherenceLawsFailed,
}

impl CounterId {
    pub const ALL: [CounterId; 29] = [
        CounterId::ResolveCacheHits,
        CounterId::ResolveCacheMisses,
        CounterId::ResolveCacheEvictions,
        CounterId::ResolveGoals,
        CounterId::ResolveDictsConstructed,
        CounterId::InternHits,
        CounterId::InternFresh,
        CounterId::ParseRecoveries,
        CounterId::ShareDictsHoisted,
        CounterId::ShareOccurrencesShared,
        CounterId::EvalThunksCreated,
        CounterId::EvalForces,
        CounterId::EvalFuelUsed,
        CounterId::ServeRequests,
        CounterId::ServeOk,
        CounterId::ServeErrInternal,
        CounterId::ServeErrDeadline,
        CounterId::ServeErrOverloaded,
        CounterId::ServeErrBadRequest,
        CounterId::ServeDegradedTraces,
        CounterId::ServeDegradedCache,
        CounterId::ServeFaultsInjected,
        CounterId::ServeProcessed,
        CounterId::ServeTracesRetained,
        CounterId::ServeTracesDropped,
        CounterId::CoherenceInstancesChecked,
        CounterId::CoherencePairsUnified,
        CounterId::CoherenceLawsRun,
        CounterId::CoherenceLawsFailed,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CounterId::ResolveCacheHits => "resolve.cache.hits",
            CounterId::ResolveCacheMisses => "resolve.cache.misses",
            CounterId::ResolveCacheEvictions => "resolve.cache.evictions",
            CounterId::ResolveGoals => "resolve.goals",
            CounterId::ResolveDictsConstructed => "resolve.dicts_constructed",
            CounterId::InternHits => "intern.hits",
            CounterId::InternFresh => "intern.fresh",
            CounterId::ParseRecoveries => "parse.recoveries",
            CounterId::ShareDictsHoisted => "share.dicts_hoisted",
            CounterId::ShareOccurrencesShared => "share.occurrences_shared",
            CounterId::EvalThunksCreated => "eval.thunks_created",
            CounterId::EvalForces => "eval.forces",
            CounterId::EvalFuelUsed => "eval.fuel_used",
            CounterId::ServeRequests => "serve.requests",
            CounterId::ServeOk => "serve.ok",
            CounterId::ServeErrInternal => "serve.err.internal",
            CounterId::ServeErrDeadline => "serve.err.deadline",
            CounterId::ServeErrOverloaded => "serve.err.overloaded",
            CounterId::ServeErrBadRequest => "serve.err.bad_request",
            CounterId::ServeDegradedTraces => "serve.degraded.traces",
            CounterId::ServeDegradedCache => "serve.degraded.cache",
            CounterId::ServeFaultsInjected => "serve.faults_injected",
            CounterId::ServeProcessed => "serve.processed",
            CounterId::ServeTracesRetained => "serve.traces.retained",
            CounterId::ServeTracesDropped => "serve.traces.dropped",
            CounterId::CoherenceInstancesChecked => "coherence.instances_checked",
            CounterId::CoherencePairsUnified => "coherence.pairs_unified",
            CounterId::CoherenceLawsRun => "coherence.laws_run",
            CounterId::CoherenceLawsFailed => "coherence.laws_failed",
        }
    }

    pub fn unit(self) -> &'static str {
        match self {
            CounterId::ResolveCacheHits
            | CounterId::ResolveCacheMisses
            | CounterId::ResolveGoals => "goals",
            CounterId::ResolveCacheEvictions => "entries",
            CounterId::ResolveDictsConstructed | CounterId::ShareDictsHoisted => "dicts",
            CounterId::InternHits | CounterId::InternFresh => "nodes",
            CounterId::ParseRecoveries => "events",
            CounterId::ShareOccurrencesShared => "sites",
            CounterId::EvalThunksCreated => "thunks",
            CounterId::EvalForces => "forces",
            CounterId::EvalFuelUsed => "fuel",
            CounterId::ServeRequests
            | CounterId::ServeOk
            | CounterId::ServeErrInternal
            | CounterId::ServeErrDeadline
            | CounterId::ServeErrOverloaded
            | CounterId::ServeErrBadRequest
            | CounterId::ServeDegradedTraces
            | CounterId::ServeDegradedCache
            | CounterId::ServeProcessed => "requests",
            CounterId::ServeFaultsInjected => "faults",
            CounterId::ServeTracesRetained | CounterId::ServeTracesDropped => "traces",
            CounterId::CoherenceInstancesChecked => "instances",
            CounterId::CoherencePairsUnified => "pairs",
            CounterId::CoherenceLawsRun | CounterId::CoherenceLawsFailed => "laws",
        }
    }
}

/// Point-in-time level measurements (last write wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Distinct type nodes in the resolver's hash-cons table.
    InternTableSize,
    /// Derivations currently tabled in the resolution memo table.
    ResolveCacheEntries,
}

impl GaugeId {
    pub const ALL: [GaugeId; 2] = [GaugeId::InternTableSize, GaugeId::ResolveCacheEntries];

    pub fn name(self) -> &'static str {
        match self {
            GaugeId::InternTableSize => "intern.table_size",
            GaugeId::ResolveCacheEntries => "resolve.cache.entries",
        }
    }

    pub fn unit(self) -> &'static str {
        match self {
            GaugeId::InternTableSize => "nodes",
            GaugeId::ResolveCacheEntries => "entries",
        }
    }
}

/// Log2-bucketed value distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramId {
    /// Backward-chaining depth at which each resolution goal ran.
    ResolveGoalDepth,
    /// Shared bindings per hoisted `letrec` introduced by the CSE pass.
    ShareLetSize,
    /// Fuel attributed to each top-level binding by the evaluator.
    EvalBindingFuel,
    /// End-to-end serve request latency, admission to response.
    ServeLatencyUs,
    /// Serve queue occupancy sampled at each admission.
    ServeQueueDepth,
    /// Latency of requests answered `ok` (including compile errors).
    ServeLatencyOkUs,
    /// Latency of requests that panicked (`error:internal`).
    ServeLatencyInternalUs,
    /// Latency of requests killed by their deadline (`error:deadline`).
    ServeLatencyDeadlineUs,
    /// Latency of requests shed at admission (`error:overloaded`).
    ServeLatencyOverloadedUs,
}

impl HistogramId {
    pub const ALL: [HistogramId; 9] = [
        HistogramId::ResolveGoalDepth,
        HistogramId::ShareLetSize,
        HistogramId::EvalBindingFuel,
        HistogramId::ServeLatencyUs,
        HistogramId::ServeQueueDepth,
        HistogramId::ServeLatencyOkUs,
        HistogramId::ServeLatencyInternalUs,
        HistogramId::ServeLatencyDeadlineUs,
        HistogramId::ServeLatencyOverloadedUs,
    ];

    /// The per-outcome-class latency histograms, paired with the class
    /// label used in `stats` output.
    pub const LATENCY_CLASSES: [(HistogramId, &'static str); 4] = [
        (HistogramId::ServeLatencyOkUs, "ok"),
        (HistogramId::ServeLatencyInternalUs, "internal"),
        (HistogramId::ServeLatencyDeadlineUs, "deadline"),
        (HistogramId::ServeLatencyOverloadedUs, "overloaded"),
    ];

    pub fn name(self) -> &'static str {
        match self {
            HistogramId::ResolveGoalDepth => "resolve.goal_depth",
            HistogramId::ShareLetSize => "share.let_size",
            HistogramId::EvalBindingFuel => "eval.binding_fuel",
            HistogramId::ServeLatencyUs => "serve.latency_us",
            HistogramId::ServeQueueDepth => "serve.queue_depth",
            HistogramId::ServeLatencyOkUs => "serve.latency.ok_us",
            HistogramId::ServeLatencyInternalUs => "serve.latency.internal_us",
            HistogramId::ServeLatencyDeadlineUs => "serve.latency.deadline_us",
            HistogramId::ServeLatencyOverloadedUs => "serve.latency.overloaded_us",
        }
    }

    pub fn unit(self) -> &'static str {
        match self {
            HistogramId::ResolveGoalDepth => "depth",
            HistogramId::ShareLetSize => "bindings",
            HistogramId::EvalBindingFuel => "fuel",
            HistogramId::ServeLatencyUs
            | HistogramId::ServeLatencyOkUs
            | HistogramId::ServeLatencyInternalUs
            | HistogramId::ServeLatencyDeadlineUs
            | HistogramId::ServeLatencyOverloadedUs => "us",
            HistogramId::ServeQueueDepth => "requests",
        }
    }
}

/// Number of log2 buckets: bucket 0 for zero, buckets 1..=64 for the
/// 64 possible bit lengths of a nonzero `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0). Bucket
/// `i >= 1` covers `[2^(i-1), 2^i - 1]`; `u64::MAX` lands in bucket 64.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive lower bound of a bucket (0 for bucket 0, else
/// `2^(i-1)`).
pub fn bucket_lo(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// One log2-bucketed distribution: per-bucket counts plus exact count
/// and (saturating) sum, so means stay available after bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let b = bucket_index(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the highest nonempty bucket (`None` when empty).
    pub fn max_bucket_lo(&self) -> Option<u64> {
        self.buckets.iter().rposition(|&c| c > 0).map(bucket_lo)
    }

    /// The change between two readings of the same histogram: every
    /// bucket count, the total count, and the sum as saturating
    /// differences (`self` is the later reading). Because the
    /// differences saturate at zero, a delta's quantiles — computed
    /// from the differenced buckets exactly like any histogram's —
    /// can never go negative, even if the readings were swapped.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::default();
        for (slot, (&new, &old)) in d
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *slot = new.saturating_sub(old);
        }
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        d
    }

    /// Fold another histogram's mass into this one (bucket-wise
    /// saturating add) — the inverse of [`Histogram::delta`]:
    /// `earlier.absorb(&later.delta(&earlier))` reconstructs `later`.
    pub fn absorb(&mut self, other: &Histogram) {
        for (slot, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the observed distribution,
    /// estimated by linear interpolation within the containing log2
    /// bucket. Exact when the containing bucket has a single
    /// representable value (buckets 0 and 1); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below.saturating_add(c);
            if through as f64 >= target {
                let lo = bucket_lo(i) as f64;
                // Inclusive upper bound: 2^i - 1, via u128 so bucket 64
                // (which tops out at u64::MAX) does not overflow.
                let hi = if i == 0 {
                    0.0
                } else {
                    ((u128::from(bucket_lo(i)) * 2) - 1) as f64
                };
                let pos = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * pos);
            }
            below = through;
        }
        self.max_bucket_lo().map(|lo| lo as f64)
    }
}

/// A point-in-time reading of one histogram, for delta arithmetic
/// between successive readings of a live registry. A snapshot *is* a
/// histogram — the same buckets, count, and sum — so every rendering
/// and quantile routine applies to deltas unchanged.
pub type HistogramSnapshot = Histogram;

/// A point-in-time reading of a whole [`MetricsRegistry`] (or a fleet
/// merge of several), detached from the live arrays so successive
/// readings can be differenced. This is the unit of the serve `watch`
/// stream: each tick ships `later.delta(&earlier)` — counters as
/// differences, histograms via [`HistogramSnapshot::delta`] — and a
/// consumer reconstructs any absolute reading by absorbing deltas in
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; CounterId::ALL.len()],
    gauges: [u64; GaugeId::ALL.len()],
    histograms: [HistogramSnapshot; HistogramId::ALL.len()],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; CounterId::ALL.len()],
            gauges: [0; GaugeId::ALL.len()],
            histograms: [HistogramSnapshot::default(); HistogramId::ALL.len()],
        }
    }
}

impl MetricsSnapshot {
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize]
    }

    pub fn histogram(&self, id: HistogramId) -> &HistogramSnapshot {
        &self.histograms[id as usize]
    }

    /// True iff nothing happened: every counter, gauge, and histogram
    /// slot is zero. `later.delta(&earlier)` of two equal readings is
    /// zero (property-tested below).
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self
                .histograms
                .iter()
                .all(|h| h.count == 0 && h.sum == 0 && h.buckets.iter().all(|&b| b == 0))
    }

    /// The change between two readings: every slot as a saturating
    /// difference, `self` being the later reading. Saturation means a
    /// delta can never go negative — swapped arguments yield zeros,
    /// not garbage. Gauges are levels, but between two readings of a
    /// monotone run their increase is their difference, and
    /// [`MetricsSnapshot::absorb`] adds it back.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = MetricsSnapshot::default();
        for (slot, (&new, &old)) in d
            .counters
            .iter_mut()
            .zip(self.counters.iter().zip(earlier.counters.iter()))
        {
            *slot = new.saturating_sub(old);
        }
        for (slot, (&new, &old)) in d
            .gauges
            .iter_mut()
            .zip(self.gauges.iter().zip(earlier.gauges.iter()))
        {
            *slot = new.saturating_sub(old);
        }
        for (slot, (new, old)) in d
            .histograms
            .iter_mut()
            .zip(self.histograms.iter().zip(earlier.histograms.iter()))
        {
            *slot = new.delta(old);
        }
        d
    }

    /// Fold a delta back in (element-wise saturating add) — the
    /// inverse of [`MetricsSnapshot::delta`]:
    /// `earlier.absorb(&later.delta(&earlier))` reconstructs `later`
    /// exactly for any monotone pair of readings, so a `watch`
    /// consumer summing every tick holds the server's absolute
    /// snapshot.
    pub fn absorb(&mut self, delta: &MetricsSnapshot) {
        for (slot, &v) in self.counters.iter_mut().zip(delta.counters.iter()) {
            *slot = slot.saturating_add(v);
        }
        for (slot, &v) in self.gauges.iter_mut().zip(delta.gauges.iter()) {
            *slot = slot.saturating_add(v);
        }
        for (slot, h) in self.histograms.iter_mut().zip(delta.histograms.iter()) {
            slot.absorb(h);
        }
    }

    /// Serialize sparsely as three fields (`"counters"`, `"gauges"`,
    /// `"histograms"`) of the writer's current object: only nonzero
    /// counters/gauges and nonempty histograms appear, so an idle
    /// watch tick is a few bytes, not the whole catalog.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object_field("counters");
        for &id in &CounterId::ALL {
            let v = self.counter(id);
            if v > 0 {
                w.field_u64(id.name(), v);
            }
        }
        w.end_object();
        w.begin_object_field("gauges");
        for &id in &GaugeId::ALL {
            let v = self.gauge(id);
            if v > 0 {
                w.field_u64(id.name(), v);
            }
        }
        w.end_object();
        w.begin_object_field("histograms");
        for &id in &HistogramId::ALL {
            let h = self.histogram(id);
            if h.count == 0 {
                continue;
            }
            w.begin_object_field(id.name());
            w.field_u64("count", h.count);
            w.field_u64("sum", h.sum);
            w.begin_object_field("buckets");
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    w.field_u64(&bucket_lo(i).to_string(), c);
                }
            }
            w.end_object();
            w.end_object();
        }
        w.end_object();
    }

    /// Parse a snapshot (or delta) written by
    /// [`MetricsSnapshot::write_json`]. Unknown metric names are
    /// ignored — a newer server may ship counters an older consumer
    /// has no slot for — and missing fields read as zero.
    pub fn from_json(v: &crate::json::Value) -> Result<MetricsSnapshot, String> {
        let mut s = MetricsSnapshot::default();
        if let Some(obj) = v.get("counters").and_then(|c| c.as_object()) {
            for (name, val) in obj {
                if let Some(id) = CounterId::ALL.iter().find(|id| id.name() == name.as_str()) {
                    s.counters[*id as usize] =
                        val.as_u64().ok_or_else(|| format!("counter `{name}`"))?;
                }
            }
        }
        if let Some(obj) = v.get("gauges").and_then(|c| c.as_object()) {
            for (name, val) in obj {
                if let Some(id) = GaugeId::ALL.iter().find(|id| id.name() == name.as_str()) {
                    s.gauges[*id as usize] =
                        val.as_u64().ok_or_else(|| format!("gauge `{name}`"))?;
                }
            }
        }
        if let Some(obj) = v.get("histograms").and_then(|c| c.as_object()) {
            for (name, val) in obj {
                let Some(id) = HistogramId::ALL
                    .iter()
                    .find(|id| id.name() == name.as_str())
                else {
                    continue;
                };
                let h = &mut s.histograms[*id as usize];
                h.count = val
                    .get("count")
                    .and_then(|n| n.as_u64())
                    .ok_or_else(|| format!("histogram `{name}`: missing count"))?;
                h.sum = val
                    .get("sum")
                    .and_then(|n| n.as_u64())
                    .ok_or_else(|| format!("histogram `{name}`: missing sum"))?;
                if let Some(buckets) = val.get("buckets").and_then(|b| b.as_object()) {
                    for (lo, c) in buckets {
                        let lo: u64 = lo
                            .parse()
                            .map_err(|_| format!("histogram `{name}`: bad bucket `{lo}`"))?;
                        let c = c
                            .as_u64()
                            .ok_or_else(|| format!("histogram `{name}`: bad bucket count"))?;
                        h.buckets[bucket_index(lo)] = c;
                    }
                }
            }
        }
        Ok(s)
    }
}

/// Dense storage behind an enabled registry: one slot per catalog
/// entry, indexed by the id enums' discriminants via `ALL` position.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MetricsData {
    counters: [u64; CounterId::ALL.len()],
    gauges: [u64; GaugeId::ALL.len()],
    histograms: [Histogram; HistogramId::ALL.len()],
}

impl Default for MetricsData {
    fn default() -> Self {
        MetricsData {
            counters: [0; CounterId::ALL.len()],
            gauges: [0; GaugeId::ALL.len()],
            histograms: [Histogram::default(); HistogramId::ALL.len()],
        }
    }
}

/// The metrics handle threaded through one pipeline run. Disabled (the
/// default) it is a single `None` — recording costs one branch and
/// allocates nothing; enabled it is one boxed block of dense arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    data: Option<Box<MetricsData>>,
}

impl MetricsRegistry {
    /// An enabled registry (one allocation, the dense metric block).
    pub fn new() -> Self {
        MetricsRegistry {
            data: Some(Box::default()),
        }
    }

    /// The disabled registry: records nothing, allocates nothing.
    pub fn off() -> Self {
        MetricsRegistry::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.data.is_some()
    }

    /// True iff the registry is disabled and holds no heap memory —
    /// the zero-cost-when-off guarantee, asserted by tests.
    pub fn allocates_nothing(&self) -> bool {
        self.data.is_none()
    }

    /// Add to a counter (saturating). No-op when disabled.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        if let Some(d) = self.data.as_mut() {
            let slot = &mut d.counters[id as usize];
            *slot = slot.saturating_add(delta);
        }
    }

    /// Increment a counter by one. No-op when disabled.
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge to its current level. No-op when disabled.
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        if let Some(d) = self.data.as_mut() {
            d.gauges[id as usize] = value;
        }
    }

    /// Record one observation into a histogram. No-op when disabled.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if let Some(d) = self.data.as_mut() {
            d.histograms[id as usize].observe(value);
        }
    }

    /// Current counter value (0 when disabled).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.data.as_ref().map_or(0, |d| d.counters[id as usize])
    }

    /// Current gauge level (0 when disabled).
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.data.as_ref().map_or(0, |d| d.gauges[id as usize])
    }

    /// A histogram's current state (`None` when disabled).
    pub fn histogram(&self, id: HistogramId) -> Option<&Histogram> {
        self.data.as_ref().map(|d| &d.histograms[id as usize])
    }

    /// A detached point-in-time reading of every metric, for delta
    /// arithmetic between successive readings ([`MetricsSnapshot`]).
    /// A disabled registry reads as all-zero.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self.data.as_ref() {
            None => MetricsSnapshot::default(),
            Some(d) => MetricsSnapshot {
                counters: d.counters,
                gauges: d.gauges,
                histograms: d.histograms,
            },
        }
    }

    /// Nonzero counters as `(name, value)` pairs, catalog order. Used
    /// by bench reports, which want compact deterministic output.
    pub fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        CounterId::ALL
            .iter()
            .map(|&id| (id.name(), self.counter(id)))
            .filter(|&(_, v)| v > 0)
            .collect()
    }

    /// Fold another registry's counts into this one: counters add,
    /// gauges take the elementwise max, histograms merge bucket-wise.
    /// Every operation is commutative and associative, so fleet-wide
    /// merges give the same answer in any order (property-tested
    /// below). No-op when either side is disabled.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        let Some(theirs) = other.data.as_ref() else {
            return;
        };
        let Some(ours) = self.data.as_mut() else {
            return;
        };
        for (slot, v) in ours.counters.iter_mut().zip(theirs.counters.iter()) {
            *slot = slot.saturating_add(*v);
        }
        for (slot, v) in ours.gauges.iter_mut().zip(theirs.gauges.iter()) {
            *slot = (*slot).max(*v);
        }
        for (h, o) in ours.histograms.iter_mut().zip(theirs.histograms.iter()) {
            for (b, c) in h.buckets.iter_mut().zip(o.buckets.iter()) {
                *b = b.saturating_add(*c);
            }
            h.count = h.count.saturating_add(o.count);
            h.sum = h.sum.saturating_add(o.sum);
        }
    }

    /// Human-readable metrics table, sorted by metric name:
    ///
    /// ```text
    /// metric                           kind         value unit
    /// eval.forces                      counter        312 forces
    /// resolve.goal_depth               histogram  n=41 mean=1.2 max<8 depth
    /// ```
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(&'static str, String, String, &'static str)> = Vec::new();
        for &id in &CounterId::ALL {
            rows.push((
                id.name(),
                "counter".to_string(),
                self.counter(id).to_string(),
                id.unit(),
            ));
        }
        for &id in &GaugeId::ALL {
            rows.push((
                id.name(),
                "gauge".to_string(),
                self.gauge(id).to_string(),
                id.unit(),
            ));
        }
        for &id in &HistogramId::ALL {
            let cell = match self.histogram(id) {
                Some(h) if h.count > 0 => format!(
                    "n={} mean={:.1} p50={:.1} p99={:.1} max<{}",
                    h.count,
                    h.mean(),
                    h.quantile(0.5).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                    h.max_bucket_lo()
                        .map_or(0u128, |lo| u128::from(lo).saturating_mul(2))
                ),
                _ => "n=0".to_string(),
            };
            rows.push((id.name(), "histogram".to_string(), cell, id.unit()));
        }
        rows.sort_by_key(|r| r.0);
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:<9} {:>24} unit", "metric", "kind", "value");
        for (name, kind, value, unit) in rows {
            let _ = writeln!(out, "{name:<28} {kind:<9} {value:>24} {unit}");
        }
        out
    }

    /// Serialize as three fields (`"counters"`, `"gauges"`,
    /// `"histograms"`) of the writer's current object. Histogram
    /// buckets are emitted sparsely, keyed by bucket lower bound.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object_field("counters");
        for &id in &CounterId::ALL {
            w.field_u64(id.name(), self.counter(id));
        }
        w.end_object();
        w.begin_object_field("gauges");
        for &id in &GaugeId::ALL {
            w.field_u64(id.name(), self.gauge(id));
        }
        w.end_object();
        w.begin_object_field("histograms");
        for &id in &HistogramId::ALL {
            w.begin_object_field(id.name());
            let (count, sum) = self.histogram(id).map_or((0, 0), |h| (h.count, h.sum));
            w.field_u64("count", count);
            w.field_u64("sum", sum);
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                match self.histogram(id).and_then(|h| h.quantile(q)) {
                    Some(v) => w.field_f64(label, v, 1),
                    None => w.field_null(label),
                }
            }
            w.begin_object_field("buckets");
            if let Some(h) = self.histogram(id) {
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c > 0 {
                        w.field_u64(&bucket_lo(i).to_string(), c);
                    }
                }
            }
            w.end_object();
            w.end_object();
        }
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bucket_boundaries_are_analytic() {
        // v = 0 is its own bucket; v = 1 is bucket 1; each power of two
        // opens a new bucket and 2^k + 1 stays inside it.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..63 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p - 1), k, "2^{k} - 1");
            assert_eq!(bucket_index(p), k + 1, "2^{k}");
            assert_eq!(bucket_index(p + 1), k + 1, "2^{k} + 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        // Lower bounds invert the mapping.
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(4), 8);
        assert_eq!(bucket_lo(64), 1u64 << 63);
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1023, 1024, u64::MAX] {
            let b = bucket_index(v);
            assert!(bucket_lo(b) <= v, "{v}");
            if b < 64 {
                assert!(v < bucket_lo(b + 1), "{v}");
            }
        }
    }

    #[test]
    fn histogram_observation_lands_in_expected_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 4, u64::MAX] {
            m.observe(HistogramId::ResolveGoalDepth, v);
        }
        let h = m.histogram(HistogramId::ResolveGoalDepth).unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[64], 1); // u64::MAX
        assert_eq!(h.sum, u64::MAX); // saturated by the MAX observation
        assert_eq!(h.max_bucket_lo(), Some(1u64 << 63));
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut m = MetricsRegistry::new();
        m.add(CounterId::EvalFuelUsed, u64::MAX - 1);
        m.add(CounterId::EvalFuelUsed, 5);
        assert_eq!(m.counter(CounterId::EvalFuelUsed), u64::MAX);
        m.incr(CounterId::EvalFuelUsed);
        assert_eq!(m.counter(CounterId::EvalFuelUsed), u64::MAX);
        // Histogram count/sum saturate too.
        m.observe(HistogramId::EvalBindingFuel, u64::MAX);
        m.observe(HistogramId::EvalBindingFuel, u64::MAX);
        let h = m.histogram(HistogramId::EvalBindingFuel).unwrap();
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn off_registry_allocates_nothing_and_records_nothing() {
        let mut m = MetricsRegistry::off();
        assert!(!m.is_enabled());
        assert!(m.allocates_nothing());
        m.incr(CounterId::ResolveGoals);
        m.add(CounterId::InternFresh, 10);
        m.set_gauge(GaugeId::InternTableSize, 42);
        m.observe(HistogramId::ShareLetSize, 7);
        assert!(m.allocates_nothing(), "recording must not allocate");
        assert_eq!(m.counter(CounterId::ResolveGoals), 0);
        assert_eq!(m.gauge(GaugeId::InternTableSize), 0);
        assert!(m.histogram(HistogramId::ShareLetSize).is_none());
        assert!(m.counters_snapshot().is_empty());
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.add(CounterId::EvalForces, 3);
        a.observe(HistogramId::EvalBindingFuel, 2);
        let mut b = MetricsRegistry::new();
        b.add(CounterId::EvalForces, 4);
        b.set_gauge(GaugeId::ResolveCacheEntries, 9);
        b.observe(HistogramId::EvalBindingFuel, 1000);
        a.merge(&b);
        assert_eq!(a.counter(CounterId::EvalForces), 7);
        assert_eq!(a.gauge(GaugeId::ResolveCacheEntries), 9);
        let h = a.histogram(HistogramId::EvalBindingFuel).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1002);
        // Merging into or from a disabled registry is a no-op.
        let mut off = MetricsRegistry::off();
        off.merge(&a);
        assert!(off.allocates_nothing());
        a.merge(&MetricsRegistry::off());
        assert_eq!(a.counter(CounterId::EvalForces), 7);
    }

    #[test]
    fn quantile_is_exact_when_mass_sits_in_one_single_value_bucket() {
        // Buckets 0 ([0,0]) and 1 ([1,1]) each hold a single
        // representable value, so any quantile is exact.
        let mut m = MetricsRegistry::new();
        for _ in 0..17 {
            m.observe(HistogramId::ServeLatencyUs, 1);
        }
        let h = m.histogram(HistogramId::ServeLatencyUs).unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(1.0), "q={q}");
        }
        let mut z = MetricsRegistry::new();
        z.observe(HistogramId::ServeQueueDepth, 0);
        let h = z.histogram(HistogramId::ServeQueueDepth).unwrap();
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket_and_ranks_across_buckets() {
        // 10 observations in bucket 3 ([4,7]): p50 lands mid-bucket.
        let mut m = MetricsRegistry::new();
        for _ in 0..10 {
            m.observe(HistogramId::EvalBindingFuel, 4);
        }
        let h = *m.histogram(HistogramId::EvalBindingFuel).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        assert!((4.0..=7.0).contains(&p50), "{p50}");
        assert!((p50 - 5.5).abs() < 1e-9, "midpoint of [4,7]: {p50}");
        // Across buckets: 90 observations of 1, 10 of 1000 — p50 is
        // exactly 1, p99 lands in 1000's bucket [512,1023].
        let mut m = MetricsRegistry::new();
        for _ in 0..90 {
            m.observe(HistogramId::ServeLatencyUs, 1);
        }
        for _ in 0..10 {
            m.observe(HistogramId::ServeLatencyUs, 1000);
        }
        let h = *m.histogram(HistogramId::ServeLatencyUs).unwrap();
        assert_eq!(h.quantile(0.5), Some(1.0));
        let p99 = h.quantile(0.99).unwrap();
        assert!((512.0..=1023.0).contains(&p99), "{p99}");
        // Monotone in q.
        let mut last = f64::MIN;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0).unwrap();
            assert!(v >= last, "quantile must be monotone: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        // A disabled registry has no histogram at all.
        let m = MetricsRegistry::off();
        assert!(m.histogram(HistogramId::ServeLatencyUs).is_none());
    }

    /// xorshift64* — deterministic, dependency-free randomness for the
    /// merge property tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn random_registry(seed: u64) -> MetricsRegistry {
        let mut s = seed.max(1);
        let mut m = MetricsRegistry::new();
        for &id in &CounterId::ALL {
            m.add(id, xorshift(&mut s) >> 32);
        }
        for &id in &GaugeId::ALL {
            m.set_gauge(id, xorshift(&mut s) >> 40);
        }
        for &id in &HistogramId::ALL {
            for _ in 0..(xorshift(&mut s) % 8) {
                m.observe(id, xorshift(&mut s) >> (xorshift(&mut s) % 60));
            }
        }
        m
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        // 32 random triples: a ⊔ b == b ⊔ a and (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        // across counters (saturating add), gauges (max), and
        // histograms (bucket-wise saturating add).
        for trial in 0..32u64 {
            let a = random_registry(trial * 3 + 1);
            let b = random_registry(trial * 3 + 2);
            let c = random_registry(trial * 3 + 3);

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative (trial {trial})");

            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "merge must be associative (trial {trial})");
        }
    }

    #[test]
    fn catalog_names_are_distinct_and_table_is_sorted() {
        let mut names: Vec<&str> = CounterId::ALL
            .iter()
            .map(|c| c.name())
            .chain(GaugeId::ALL.iter().map(|g| g.name()))
            .chain(HistogramId::ALL.iter().map(|h| h.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "metric names must be unique");

        let m = MetricsRegistry::new();
        let table = m.render_table();
        let rows: Vec<&str> = table
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted, "table rows must be name-sorted:\n{table}");
        assert_eq!(rows.len(), total);
    }

    /// Apply a burst of random *monotone* activity to a live registry:
    /// counters add, histograms observe, gauges only ever rise. This
    /// models successive readings of one server between watch ticks.
    fn grow(m: &mut MetricsRegistry, seed: u64) {
        let mut s = seed.max(1);
        for &id in &CounterId::ALL {
            m.add(id, xorshift(&mut s) >> 48);
        }
        for &id in &GaugeId::ALL {
            let bump = xorshift(&mut s) >> 52;
            m.set_gauge(id, m.gauge(id) + bump);
        }
        for &id in &HistogramId::ALL {
            for _ in 0..(xorshift(&mut s) % 6) {
                m.observe(id, xorshift(&mut s) >> (xorshift(&mut s) % 60));
            }
        }
    }

    #[test]
    fn snapshot_delta_of_equal_readings_is_zero() {
        for trial in 0..16u64 {
            let a = random_registry(trial + 1).snapshot();
            assert!(a.delta(&a).is_zero(), "delta(a, a) must be zero");
        }
        assert!(MetricsSnapshot::default().is_zero());
        assert!(MetricsRegistry::off().snapshot().is_zero());
    }

    #[test]
    fn absorbing_a_delta_reconstructs_the_later_reading() {
        // a + delta(b, a) == b for successive readings of one live
        // registry — the invariant that lets a watch consumer sum tick
        // deltas into the server's absolute snapshot.
        for trial in 0..16u64 {
            let mut live = random_registry(trial * 7 + 1);
            let earlier = live.snapshot();
            grow(&mut live, trial * 7 + 2);
            grow(&mut live, trial * 7 + 3);
            let later = live.snapshot();
            let delta = later.delta(&earlier);
            let mut rebuilt = earlier.clone();
            rebuilt.absorb(&delta);
            assert_eq!(rebuilt, later, "absorb must invert delta (trial {trial})");
        }
        // Chained: summing every tick's delta from a zero start equals
        // the final absolute reading.
        let mut live = MetricsRegistry::new();
        let mut held = MetricsSnapshot::default();
        let mut prev = live.snapshot();
        for tick in 0..5u64 {
            grow(&mut live, tick + 100);
            let now = live.snapshot();
            held.absorb(&now.delta(&prev));
            prev = now;
        }
        assert_eq!(held, live.snapshot());
    }

    #[test]
    fn delta_quantiles_come_from_differenced_buckets_and_never_go_negative() {
        // 50 fast observations, snapshot, then 50 slow ones: the
        // delta's quantiles describe only the slow window, not the
        // all-time mix.
        let mut live = MetricsRegistry::new();
        for _ in 0..50 {
            live.observe(HistogramId::ServeLatencyUs, 1);
        }
        let earlier = live.snapshot();
        for _ in 0..50 {
            live.observe(HistogramId::ServeLatencyUs, 1000);
        }
        let later = live.snapshot();
        let all_time = later.histogram(HistogramId::ServeLatencyUs);
        assert_eq!(all_time.quantile(0.5), Some(1.0), "all-time p50 is fast");
        let window = later
            .histogram(HistogramId::ServeLatencyUs)
            .delta(earlier.histogram(HistogramId::ServeLatencyUs));
        assert_eq!(window.count, 50);
        let p50 = window.quantile(0.5).unwrap();
        assert!(
            (512.0..=1023.0).contains(&p50),
            "window p50 must see only the slow bucket: {p50}"
        );
        // Never negative — including for swapped (non-monotone)
        // arguments, where saturation yields an empty histogram.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert!(window.quantile(q).unwrap() >= 0.0, "q={q}");
        }
        let swapped = earlier
            .histogram(HistogramId::ServeLatencyUs)
            .delta(later.histogram(HistogramId::ServeLatencyUs));
        assert_eq!(swapped.count, 0);
        assert_eq!(swapped.quantile(0.5), None, "swapped delta is empty");
        for trial in 0..8u64 {
            let mut live = random_registry(trial + 40);
            let a = live.snapshot();
            grow(&mut live, trial + 50);
            let d = live.snapshot().delta(&a);
            for &id in &HistogramId::ALL {
                for q in [0.1, 0.5, 0.99] {
                    if let Some(v) = d.histogram(id).quantile(q) {
                        assert!(v >= 0.0, "delta quantile negative: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_json_roundtrips_sparsely() {
        let mut live = MetricsRegistry::new();
        live.add(CounterId::ServeOk, 7);
        live.set_gauge(GaugeId::ResolveCacheEntries, 12);
        live.observe(HistogramId::ServeLatencyUs, 300);
        live.observe(HistogramId::ServeLatencyUs, 5);
        let snap = live.snapshot();
        let mut w = JsonWriter::new();
        w.begin_object();
        snap.write_json(&mut w);
        w.end_object();
        let s = w.finish();
        json::check(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        // Sparse: untouched counters are absent entirely.
        assert!(s.contains("\"serve.ok\": 7"), "{s}");
        assert!(!s.contains("serve.err.internal"), "{s}");
        let parsed =
            MetricsSnapshot::from_json(&json::parse(&s).unwrap()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(parsed, snap, "write_json/from_json must round-trip");
        // An empty snapshot round-trips to empty.
        let zero = MetricsSnapshot::default();
        let mut w = JsonWriter::new();
        w.begin_object();
        zero.write_json(&mut w);
        w.end_object();
        let parsed = MetricsSnapshot::from_json(&json::parse(&w.finish()).unwrap()).unwrap();
        assert!(parsed.is_zero());
    }

    #[test]
    fn metrics_json_is_well_formed() {
        let mut m = MetricsRegistry::new();
        m.add(CounterId::ResolveCacheHits, 12);
        m.set_gauge(GaugeId::InternTableSize, 40);
        m.observe(HistogramId::ResolveGoalDepth, 0);
        m.observe(HistogramId::ResolveGoalDepth, 5);
        let mut w = JsonWriter::new();
        w.begin_object();
        m.write_json(&mut w);
        w.end_object();
        let s = w.finish();
        json::check(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
        assert!(s.contains("\"resolve.cache.hits\": 12"), "{s}");
        assert!(s.contains("\"intern.table_size\": 40"), "{s}");
        // Sparse buckets: 0 -> bucket "0", 5 -> bucket lo 4.
        assert!(s.contains("\"0\": 1"), "{s}");
        assert!(s.contains("\"4\": 1"), "{s}");
    }
}
