//! Dependency analysis of top-level bindings.
//!
//! Bindings are split into strongly connected components (mutually
//! recursive groups) and processed in dependency order, as required for
//! correct generalization: a binding can only be used polymorphically
//! once its whole group has been generalized. Tarjan's algorithm is
//! implemented iteratively — an adversarial program with thousands of
//! chained bindings must not overflow the native stack.

use std::collections::{BTreeSet, HashMap};
use tc_syntax::{Binding, Expr};

/// Free variable names of an expression (names not bound by enclosing
/// lambdas or lets). Recursion depth is bounded by the parser's
/// expression-depth budget, so a plain recursive walk is safe here.
pub fn free_vars(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut bound: Vec<&str> = Vec::new();
    collect(e, &mut bound, &mut out);
    out
}

fn collect<'a>(e: &'a Expr, bound: &mut Vec<&'a str>, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(n, _) => {
            if !bound.iter().any(|b| b == n) {
                out.insert(n.clone());
            }
        }
        Expr::Con(_, _) | Expr::IntLit(_, _) | Expr::Hole(_) => {}
        Expr::App(f, x, _) => {
            collect(f, bound, out);
            collect(x, bound, out);
        }
        Expr::Lam(p, b, _) => {
            bound.push(p);
            collect(b, bound, out);
            bound.pop();
        }
        Expr::Let(binds, body, _) => {
            let before = bound.len();
            for b in binds {
                bound.push(&b.name);
            }
            for b in binds {
                collect(&b.expr, bound, out);
            }
            collect(body, bound, out);
            bound.truncate(before);
        }
        Expr::If(c, t, f, _) => {
            collect(c, bound, out);
            collect(t, bound, out);
            collect(f, bound, out);
        }
        Expr::Case(scrut, arms, _) => {
            collect(scrut, bound, out);
            for arm in arms {
                let before = bound.len();
                match &arm.pattern {
                    tc_syntax::Pattern::Var(n, _) => {
                        if n != "_" {
                            bound.push(n);
                        }
                    }
                    tc_syntax::Pattern::Con { binders, .. } => {
                        for (b, _) in binders {
                            if b != "_" {
                                bound.push(b);
                            }
                        }
                    }
                }
                collect(&arm.body, bound, out);
                bound.truncate(before);
            }
        }
    }
}

/// Group binding *indices* into strongly connected components, returned
/// in dependency order (a group appears after every group it depends
/// on). Names not bound at top level (builtins, methods) are ignored
/// for edge purposes.
pub fn binding_groups(bindings: &[Binding]) -> Vec<Vec<usize>> {
    let n = bindings.len();
    let mut index_of: HashMap<&str, usize> = HashMap::new();
    for (i, b) in bindings.iter().enumerate() {
        // First definition wins; duplicates are reported elsewhere.
        index_of.entry(b.name.as_str()).or_insert(i);
    }
    let adj: Vec<Vec<usize>> = bindings
        .iter()
        .map(|b| {
            free_vars(&b.expr)
                .iter()
                .filter_map(|v| index_of.get(v.as_str()).copied())
                .collect()
        })
        .collect();
    tarjan(n, &adj)
}

/// Iterative Tarjan SCC. Components are emitted callees-first, which is
/// exactly the order inference wants.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    struct Frame {
        v: usize,
        edge: usize,
    }

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        let mut frames = vec![Frame { v: start, edge: 0 }];

        while let Some(f) = frames.last_mut() {
            let v = f.v;
            if f.edge < adj[v].len() {
                let w = adj[v][f.edge];
                f.edge += 1;
                if index[w] == UNVISITED {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    low[parent.v] = low[parent.v].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bindings(src: &str) -> Vec<Binding> {
        let (toks, ld) = tc_syntax::lex(src);
        assert!(!ld.has_errors());
        let (prog, pd) = tc_syntax::parse_program(&toks, Default::default());
        assert!(!pd.has_errors(), "{}", pd.render_all(src));
        prog.bindings
    }

    fn names(bindings: &[Binding], groups: &[Vec<usize>]) -> Vec<Vec<String>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| bindings[i].name.clone()).collect())
            .collect()
    }

    #[test]
    fn lambda_binds() {
        let b = parse_bindings("f x = g x;");
        let fv = free_vars(&b[0].expr);
        assert!(fv.contains("g"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn let_is_recursive_scope() {
        let b = parse_bindings("f = let { go = \\x -> go x } in go;");
        let fv = free_vars(&b[0].expr);
        assert!(fv.is_empty(), "{fv:?}");
    }

    #[test]
    fn groups_in_dependency_order() {
        let b = parse_bindings(
            "even n = if primEqInt n 0 then True else odd (primSubInt n 1);\n\
             odd n = if primEqInt n 0 then False else even (primSubInt n 1);\n\
             top = even 4;\n\
             leaf = 1;",
        );
        let groups = binding_groups(&b);
        let gs = names(&b, &groups);
        // even/odd are one group; it must come before top.
        let eo = gs.iter().position(|g| g.len() == 2).unwrap();
        let top = gs.iter().position(|g| g == &["top".to_string()]).unwrap();
        assert!(eo < top, "{gs:?}");
        assert!(gs.iter().any(|g| g == &["leaf".to_string()]));
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // f0 = 1; f1 = f0; ... f4999 = f4998;  (deep dependency chain)
        let mut src = String::from("f0 = 1;\n");
        for i in 1..5000 {
            src.push_str(&format!("f{i} = f{};\n", i - 1));
        }
        let b = parse_bindings(&src);
        let groups = binding_groups(&b);
        assert_eq!(groups.len(), 5000);
        // Dependency order: f0's group first.
        assert_eq!(b[groups[0][0]].name, "f0");
    }
}
