//! Type inference with placeholder insertion, generalization with
//! context reduction, signature checking via skolemization, and
//! per-group dictionary conversion.
//!
//! The driver-facing entry point is [`elaborate`]. Top-level bindings
//! are split into strongly connected groups (see [`crate::scc`]) and
//! processed in dependency order, THIH-style:
//!
//! 1. signature-carrying bindings contribute their declared scheme to
//!    the global environment up front (so polymorphic recursion and
//!    forward references through a signature just work);
//! 2. within a group, signature-less members are inferred together
//!    (sharing monomorphic type variables, recursive occurrences
//!    recorded as `RecCall` placeholders), their accumulated context is
//!    reduced ([`tc_classes::ClassEnv::reduce_context`]) and the group
//!    is generalized over the retained predicates;
//! 3. signature-carrying members are then checked against their
//!    *skolemized* signature (quantified variables become rigid
//!    `$name` constructors), so an implementation cannot secretly
//!    specialize a declared type variable;
//! 4. dictionary conversion replaces each member's placeholders with
//!    parameter references / projections / instance applications.
//!
//! Every failure is a diagnostic plus local recovery (fresh type
//! variables, [`CoreExpr::Fail`] nodes); elaboration never panics and
//! always produces a runnable — if possibly failing — core program.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use tc_classes::{
    lower_qual_type, ClassEnv, LowerCtx, ReduceBudget, ResolveCache, ResolveStats, ResolveTraceLog,
};
use tc_coreir::{CoreExpr, CoreProgram, Literal, PlaceholderKind, PlaceholderTable};
use tc_syntax::{Diagnostics, Expr, Program, Span, Stage};
use tc_trace::{MetricsRegistry, SpanEvent};
use tc_types::{Pred, Qual, Scheme, Subst, TyVar, Type, TypeErrorKind, VarGen};

use crate::builtins::builtin_env;
use crate::convert::{convert, ConvertCtx};
use crate::scc::binding_groups;

/// Result of elaboration: the dictionary-converted core program plus
/// the inferred/declared scheme of every top-level binding.
#[derive(Debug, Default)]
pub struct Elaboration {
    pub core: CoreProgram,
    pub schemes: HashMap<String, Scheme>,
    /// Resolution counters for the whole run: goals attempted, memo
    /// table hits, dictionaries constructed (see [`ResolveStats`]).
    pub stats: ResolveStats,
    /// Explain-trace of every instance resolution, present iff
    /// [`ElabOptions::trace_resolution`] was set.
    pub resolution_trace: Option<ResolveTraceLog>,
    /// Metrics accumulated by the resolver and interner, populated
    /// (flushed from the cache) iff [`ElabOptions::collect_metrics`]
    /// was set; otherwise off and allocation-free.
    pub metrics: MetricsRegistry,
    /// One wall-clock span per top-level resolution goal, timed
    /// against [`ElabOptions::goal_span_epoch`]; empty unless an epoch
    /// was supplied.
    pub goal_spans: Vec<SpanEvent>,
    /// The run's resolve cache, handed back so a later elaboration in
    /// the same session (the coherence law harness) can reuse the warm
    /// memo table via [`elaborate_with_cache`]. Trace/metrics/span
    /// sinks have already been drained into the fields above.
    pub cache: Option<ResolveCache>,
}

/// Knobs for one elaboration run.
#[derive(Debug, Clone)]
pub struct ElabOptions {
    /// Budget for each resolution / context-reduction call.
    pub budget: ReduceBudget,
    /// Memoize instance resolution (the production configuration;
    /// `false` exists for baselines and differential testing).
    pub memoize: bool,
    /// Record an explain-trace of every resolution goal. Off by
    /// default; when off, no trace structures are allocated.
    pub trace_resolution: bool,
    /// Collect resolver/interner metrics into
    /// [`Elaboration::metrics`]. Off by default; when off, the
    /// instrumented paths allocate nothing.
    pub collect_metrics: bool,
    /// When set, record one wall-clock [`SpanEvent`] per top-level
    /// resolution goal relative to this epoch (pass the pipeline
    /// telemetry's epoch so the spans nest inside the `elaborate`
    /// stage span of a Chrome trace).
    pub goal_span_epoch: Option<std::time::Instant>,
    /// Cooperative cancellation: installed on the resolve cache so a
    /// deadline interrupts deep instance searches mid-run (surfacing
    /// as `E0423` diagnostics).
    pub cancel: Option<tc_trace::CancelToken>,
    /// Cap the resolve cache's memo table at this many entries
    /// (`None` = unbounded). Used by servers shedding memory under
    /// load via [`ResolveCache::set_capacity`].
    pub cache_capacity: Option<usize>,
    /// Flight-recorder scope: when enabled, the resolver records one
    /// event per goal (depth, memo hit/miss) and per cache eviction.
    /// The default scope is off and costs one branch per site.
    pub events: tc_trace::EventScope,
}

impl Default for ElabOptions {
    fn default() -> Self {
        ElabOptions {
            budget: ReduceBudget::default(),
            memoize: true,
            trace_resolution: false,
            collect_metrics: false,
            goal_span_epoch: None,
            cancel: None,
            cache_capacity: None,
            events: tc_trace::EventScope::off(),
        }
    }
}

struct Infer<'a> {
    cenv: &'a ClassEnv,
    gen: &'a mut VarGen,
    subst: Subst,
    table: PlaceholderTable,
    /// Predicates collected while inferring the current member.
    preds: Vec<Pred>,
    /// Global value environment: builtins, signatures, generalized
    /// earlier groups.
    globals: HashMap<String, Scheme>,
    /// Monomorphic types of the current group's signature-less members.
    group_mono: HashMap<String, Type>,
    /// Lexical scope (lambda / let parameters), innermost last.
    locals: Vec<(String, Type)>,
    budget: ReduceBudget,
    /// Memo table for instance resolution, shared by every conversion
    /// in the run (see `tc_classes::ResolveCache`).
    cache: RefCell<ResolveCache>,
    diags: Diagnostics,
    binds: Vec<(String, CoreExpr)>,
    /// Surface names of signature type variables, for readable rigid
    /// ("skolem") constants in diagnostics.
    skolem_names: HashMap<u32, String>,
}

impl Infer<'_> {
    fn fresh_ty(&mut self) -> Type {
        Type::Var(self.gen.fresh())
    }

    fn zonk(&self, t: &Type) -> Type {
        self.subst.apply(t)
    }

    fn unify_at(&mut self, expected: &Type, found: &Type, span: Span) {
        if let Err(e) = tc_types::unify(&mut self.subst, expected, found) {
            let e = e.at(span);
            let code = match e.kind {
                TypeErrorKind::Mismatch { .. } => "E0401",
                TypeErrorKind::Occurs { .. } => "E0402",
                TypeErrorKind::BudgetExhausted => "E0403",
            };
            self.diags
                .error(Stage::TypeCheck, code, e.to_string(), e.span);
        }
    }

    /// Instantiate a scheme at a use site; the instantiated context is
    /// blamed on the use site's span.
    fn instantiate(&mut self, sch: &Scheme, span: Span) -> (Vec<Pred>, Type) {
        let gen = &mut *self.gen;
        let (mut preds, ty) = sch.instantiate(|| gen.fresh());
        for p in &mut preds {
            p.span = span;
        }
        (preds, ty)
    }

    /// Record a wanted predicate and return its dictionary placeholder.
    fn dict_ph(&mut self, pred: Pred) -> CoreExpr {
        self.preds.push(pred.clone());
        CoreExpr::Placeholder(self.table.alloc(PlaceholderKind::Dict { pred }))
    }

    /// Replace a scheme's quantified variables with rigid constants so
    /// a checked implementation cannot specialize them. Returns the
    /// skolemized context and body type.
    fn skolemize(&self, sch: &Scheme) -> (Vec<Pred>, Type) {
        let mut s = Subst::new();
        for v in &sch.vars {
            let name = match self.skolem_names.get(&v.0) {
                Some(n) => format!("${n}"),
                None => format!("$sk{}", v.0),
            };
            // Single-node range types cannot overflow the node budget.
            let _ = s.bind(*v, Type::Con(name));
        }
        (
            sch.qual.preds.iter().map(|p| p.apply(&s)).collect(),
            s.apply(&sch.qual.head),
        )
    }

    fn infer_var(&mut self, n: &str, span: Span) -> (Type, CoreExpr) {
        if let Some((_, t)) = self.locals.iter().rev().find(|(ln, _)| ln == n) {
            return (t.clone(), CoreExpr::Var(n.to_string()));
        }
        if let Some(t) = self.group_mono.get(n).cloned() {
            let id = self.table.alloc(PlaceholderKind::RecCall {
                name: n.to_string(),
                span,
            });
            return (t, CoreExpr::Placeholder(id));
        }
        if let Some(sch) = self.globals.get(n).cloned() {
            let (preds, ty) = self.instantiate(&sch, span);
            let args: Vec<CoreExpr> = preds.into_iter().map(|p| self.dict_ph(p)).collect();
            return (ty, CoreExpr::apps(CoreExpr::Var(n.to_string()), args));
        }
        let cenv = self.cenv;
        if let Some((ci, mi)) = cenv.method(n) {
            let slot = ci.method_slot(mi.index);
            let sch = mi.scheme.clone();
            let (preds, ty) = self.instantiate(&sch, span);
            let mut it = preds.into_iter();
            return match it.next() {
                // The first predicate is always the owning class's own
                // constraint (see tc-classes build).
                Some(class_pred) => {
                    let dict = self.dict_ph(class_pred);
                    let extras: Vec<CoreExpr> = it.map(|p| self.dict_ph(p)).collect();
                    (
                        ty,
                        CoreExpr::apps(CoreExpr::Proj(slot, Box::new(dict)), extras),
                    )
                }
                None => (
                    ty,
                    CoreExpr::Fail(format!("method `{n}` lost its class constraint")),
                ),
            };
        }
        self.diags.error(
            Stage::TypeCheck,
            "E0405",
            format!("unbound variable `{n}`"),
            span,
        );
        (
            self.fresh_ty(),
            CoreExpr::Fail(format!("unbound variable `{n}`")),
        )
    }

    /// Infer an expression, producing its type and placeholder-bearing
    /// core translation. Native recursion depth is bounded by the
    /// parser's expression-depth budget.
    fn infer_expr(&mut self, e: &Expr) -> (Type, CoreExpr) {
        match e {
            Expr::IntLit(n, _) => (Type::int(), CoreExpr::Lit(Literal::Int(*n))),
            Expr::Con(n, span) => match n.as_str() {
                "True" => (Type::bool(), CoreExpr::Lit(Literal::Bool(true))),
                "False" => (Type::bool(), CoreExpr::Lit(Literal::Bool(false))),
                // The builtin list constructors are ordinary globals in
                // expression position (the evaluator's `nil`/`cons`).
                "Nil" => self.infer_var("nil", *span),
                "Cons" => self.infer_var("cons", *span),
                _ => match self.cenv.datas.con(n).cloned() {
                    Some(ci) => {
                        let (_, ty) = self.instantiate(&ci.scheme, *span);
                        (
                            ty,
                            CoreExpr::Con {
                                name: ci.name,
                                tag: ci.tag,
                                arity: ci.arity,
                            },
                        )
                    }
                    None => {
                        self.diags.error(
                            Stage::TypeCheck,
                            "E0404",
                            format!("unknown data constructor `{n}`"),
                            *span,
                        );
                        (
                            self.fresh_ty(),
                            CoreExpr::Fail(format!("unknown constructor `{n}`")),
                        )
                    }
                },
            },
            Expr::Var(n, span) => self.infer_var(n, *span),
            Expr::App(f, x, span) => {
                let (tf, cf) = self.infer_expr(f);
                let (tx, cx) = self.infer_expr(x);
                let r = self.fresh_ty();
                self.unify_at(&tf, &Type::fun(tx, r.clone()), *span);
                (r, CoreExpr::app(cf, cx))
            }
            Expr::Lam(p, b, _) => {
                let tv = self.fresh_ty();
                self.locals.push((p.clone(), tv.clone()));
                let (tb, cb) = self.infer_expr(b);
                self.locals.pop();
                (Type::fun(tv, tb), CoreExpr::Lam(p.clone(), Box::new(cb)))
            }
            Expr::Let(binds, body, _) => {
                // Local bindings are monomorphic (and mutually
                // recursive): each gets a plain type variable, no
                // generalization. This sidesteps local dictionary
                // abstraction exactly as the paper's restricted source
                // language intends; polymorphism lives at top level.
                let base = self.locals.len();
                let vars: Vec<Type> = binds.iter().map(|_| self.fresh_ty()).collect();
                for (b, t) in binds.iter().zip(&vars) {
                    self.locals.push((b.name.clone(), t.clone()));
                }
                let mut core_binds = Vec::with_capacity(binds.len());
                for (b, t) in binds.iter().zip(&vars) {
                    let (tb, cb) = self.infer_expr(&b.expr);
                    self.unify_at(t, &tb, b.span);
                    core_binds.push((b.name.clone(), cb));
                }
                let (tbody, cbody) = self.infer_expr(body);
                self.locals.truncate(base);
                (tbody, CoreExpr::LetRec(core_binds, Box::new(cbody)))
            }
            Expr::If(c, t, f, span) => {
                let (tc_, cc) = self.infer_expr(c);
                self.unify_at(&Type::bool(), &tc_, c.span());
                let (tt, ct) = self.infer_expr(t);
                let (tf_, cf) = self.infer_expr(f);
                self.unify_at(&tt, &tf_, *span);
                (tt, CoreExpr::If(Box::new(cc), Box::new(ct), Box::new(cf)))
            }
            Expr::Case(scrut, arms, _) => self.infer_case(scrut, arms),
            Expr::Hole(_) => (
                self.fresh_ty(),
                CoreExpr::Fail("expression could not be parsed".into()),
            ),
        }
    }

    /// Infer a `case`: every arm's pattern type unifies with the
    /// scrutinee, every arm's body with one shared result type.
    /// Constructor patterns are looked up in the data environment
    /// (builtins `True`/`False`/`Nil`/`Cons` included), their field
    /// types obtained by instantiating the constructor's scheme.
    fn infer_case(&mut self, scrut: &Expr, arms: &[tc_syntax::CaseArm]) -> (Type, CoreExpr) {
        let (ts, cs) = self.infer_expr(scrut);
        let result = self.fresh_ty();
        if arms.is_empty() {
            // Parser recovery only: an empty case was already reported
            // (E0210), so just produce a deterministic failure.
            return (result, CoreExpr::Fail("case with no alternatives".into()));
        }
        let mut core_arms: Vec<tc_coreir::CoreArm> = Vec::new();
        for arm in arms {
            match &arm.pattern {
                tc_syntax::Pattern::Var(n, _) => {
                    let base = self.locals.len();
                    if n != "_" {
                        self.locals.push((n.clone(), ts.clone()));
                    }
                    let (tb, cb) = self.infer_expr(&arm.body);
                    self.locals.truncate(base);
                    self.unify_at(&result, &tb, arm.span);
                    core_arms.push(tc_coreir::CoreArm {
                        con: None,
                        binders: vec![n.clone()],
                        body: cb,
                    });
                }
                tc_syntax::Pattern::Con {
                    name,
                    binders,
                    span: pspan,
                } => {
                    let Some(ci) = self.cenv.datas.con(name).cloned() else {
                        self.diags.error(
                            Stage::TypeCheck,
                            "E0404",
                            format!("unknown data constructor `{name}` in pattern"),
                            *pspan,
                        );
                        // Recover: bind the binders at fresh types and
                        // keep the arm (it can never match at runtime).
                        let base = self.locals.len();
                        for (b, _) in binders {
                            if b != "_" {
                                let t = self.fresh_ty();
                                self.locals.push((b.clone(), t));
                            }
                        }
                        let (tb, cb) = self.infer_expr(&arm.body);
                        self.locals.truncate(base);
                        self.unify_at(&result, &tb, arm.span);
                        core_arms.push(tc_coreir::CoreArm {
                            con: Some((name.clone(), u32::MAX)),
                            binders: binders.iter().map(|(b, _)| b.clone()).collect(),
                            body: cb,
                        });
                        continue;
                    };
                    if binders.len() != ci.arity {
                        self.diags.error(
                            Stage::TypeCheck,
                            "E0416",
                            format!(
                                "constructor `{name}` has {} field(s), but this pattern \
                                 binds {}",
                                ci.arity,
                                binders.len()
                            ),
                            *pspan,
                        );
                    }
                    // Instantiate the constructor scheme and peel one
                    // function arrow per field; the final result type is
                    // the scrutinee's.
                    let (_, cty) = self.instantiate(&ci.scheme, *pspan);
                    let mut t = cty;
                    let mut fields: Vec<Type> = Vec::with_capacity(ci.arity);
                    for _ in 0..ci.arity {
                        match t {
                            Type::Fun(a, b) => {
                                fields.push(*a);
                                t = *b;
                            }
                            other => {
                                t = other;
                                fields.push(self.fresh_ty());
                            }
                        }
                    }
                    self.unify_at(&ts, &t, *pspan);
                    let base = self.locals.len();
                    for (i, (b, _)) in binders.iter().enumerate() {
                        if b != "_" {
                            // Extra binders (arity mismatch, already
                            // reported) recover with fresh types.
                            let ft = match fields.get(i) {
                                Some(f) => f.clone(),
                                None => self.fresh_ty(),
                            };
                            self.locals.push((b.clone(), ft));
                        }
                    }
                    let (tb, cb) = self.infer_expr(&arm.body);
                    self.locals.truncate(base);
                    self.unify_at(&result, &tb, arm.span);
                    core_arms.push(tc_coreir::CoreArm {
                        con: Some((name.clone(), ci.tag)),
                        binders: binders.iter().map(|(b, _)| b.clone()).collect(),
                        body: cb,
                    });
                }
            }
        }
        (result, CoreExpr::Case(Box::new(cs), core_arms))
    }

    fn convert_member(
        &mut self,
        core: &CoreExpr,
        assumptions: Vec<Pred>,
        dict_params: Vec<String>,
        group_members: Vec<String>,
        group_retained: Vec<Pred>,
    ) -> CoreExpr {
        let cx = ConvertCtx {
            cenv: self.cenv,
            table: &self.table,
            subst: &self.subst,
            cache: &self.cache,
            assumptions,
            dict_params,
            group_members,
            group_retained,
            budget: self.budget,
        };
        convert(core, &cx, &mut self.diags)
    }
}

/// `a`, `b`, ..., then `a1`, `b1`, ... — positional display names used
/// for instance-variable skolems.
fn display_name(i: usize) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    let suffix = i / 26;
    if suffix == 0 {
        letter.to_string()
    } else {
        format!("{letter}{suffix}")
    }
}

/// Elaborate a whole program against a validated class environment,
/// with resolution memoization on (the production configuration).
pub fn elaborate(
    program: &Program,
    cenv: &ClassEnv,
    gen: &mut VarGen,
    budget: ReduceBudget,
) -> (Elaboration, Diagnostics) {
    elaborate_with(
        program,
        cenv,
        gen,
        ElabOptions {
            budget,
            ..ElabOptions::default()
        },
    )
}

/// Elaborate with explicit [`ElabOptions`] — memo table on or off,
/// resolution explain-tracing on or off. Memoized and unmemoized
/// configurations produce identical programs and diagnostics (pinned
/// by the differential suite); `memoize = false` exists for baselines
/// and differential testing.
pub fn elaborate_with(
    program: &Program,
    cenv: &ClassEnv,
    gen: &mut VarGen,
    opts: ElabOptions,
) -> (Elaboration, Diagnostics) {
    let cache = if opts.memoize {
        ResolveCache::new()
    } else {
        ResolveCache::disabled()
    };
    elaborate_with_cache(program, cenv, gen, opts, cache)
}

/// Like [`elaborate_with`], but resolve against a caller-supplied
/// [`ResolveCache`] — usually one handed back by a previous
/// elaboration's [`Elaboration::cache`], so tabled derivations from
/// that session answer this run's goals in O(1). The cache's memo
/// entries never go stale (they are context-independent and keyed by
/// ground goals), so seeding is always sound for the same class
/// environment.
pub fn elaborate_with_cache(
    program: &Program,
    cenv: &ClassEnv,
    gen: &mut VarGen,
    opts: ElabOptions,
    mut cache: ResolveCache,
) -> (Elaboration, Diagnostics) {
    if opts.trace_resolution {
        cache.enable_trace();
    }
    if opts.collect_metrics {
        cache.enable_metrics();
    }
    if let Some(epoch) = opts.goal_span_epoch {
        cache.enable_goal_spans(epoch);
    }
    if let Some(token) = opts.cancel.clone() {
        cache.set_cancel(token);
    }
    if let Some(cap) = opts.cache_capacity {
        cache.set_capacity(cap);
    }
    if opts.events.is_enabled() {
        cache.set_events(opts.events.clone());
    }
    let mut inf = Infer {
        cenv,
        gen,
        subst: Subst::new(),
        table: PlaceholderTable::new(),
        preds: Vec::new(),
        globals: builtin_env(),
        group_mono: HashMap::new(),
        locals: Vec::new(),
        budget: opts.budget,
        cache: RefCell::new(cache),
        diags: Diagnostics::new(),
        binds: Vec::new(),
        skolem_names: HashMap::new(),
    };
    let builtin_names: HashSet<String> = inf.globals.keys().cloned().collect();

    // --- Signatures ---------------------------------------------------
    let mut sig_map: HashMap<String, Scheme> = HashMap::new();
    for sig in &program.sigs {
        if cenv.method(&sig.name).is_some() {
            inf.diags.error(
                Stage::TypeCheck,
                "E0415",
                format!(
                    "`{}` is a class method; its type comes from the class declaration",
                    sig.name
                ),
                sig.span,
            );
            continue;
        }
        if sig_map.contains_key(&sig.name) {
            inf.diags.error(
                Stage::TypeCheck,
                "E0406",
                format!("duplicate type signature for `{}`", sig.name),
                sig.span,
            );
            continue;
        }
        let mut ctx = LowerCtx::new();
        let qual = lower_qual_type(&sig.qual_ty, &mut ctx, inf.gen, &mut inf.diags, &cenv.datas);
        for (name, var) in &ctx.vars {
            inf.skolem_names.insert(var.0, name.clone());
        }
        for p in &qual.preds {
            if cenv.class(&p.class).is_none() {
                inf.diags.error(
                    Stage::TypeCheck,
                    "E0409",
                    format!("unknown class `{}` in signature context", p.class),
                    p.span,
                );
            }
        }
        sig_map.insert(sig.name.clone(), Scheme::generalize(qual, &BTreeSet::new()));
    }
    let bound: HashSet<&str> = program.bindings.iter().map(|b| b.name.as_str()).collect();
    for sig in &program.sigs {
        if sig_map.contains_key(&sig.name) && !bound.contains(sig.name.as_str()) {
            inf.diags.warning(
                Stage::TypeCheck,
                "E0407",
                format!("type signature for `{}` has no binding", sig.name),
                sig.span,
            );
        }
    }

    // --- Duplicate / shadowing checks ---------------------------------
    let mut seen: HashSet<&str> = HashSet::new();
    let mut skip: HashSet<usize> = HashSet::new();
    for (i, b) in program.bindings.iter().enumerate() {
        if !seen.insert(b.name.as_str()) {
            inf.diags.error(
                Stage::TypeCheck,
                "E0408",
                format!(
                    "duplicate definition of `{}` (first definition wins)",
                    b.name
                ),
                b.span,
            );
            skip.insert(i);
            continue;
        }
        if cenv.method(&b.name).is_some() {
            inf.diags.error(
                Stage::TypeCheck,
                "E0414",
                format!(
                    "`{}` is a class method and cannot be redefined at top level \
                     (the binding shadows the method here)",
                    b.name
                ),
                b.span,
            );
        } else if builtin_names.contains(&b.name) {
            inf.diags.warning(
                Stage::TypeCheck,
                "E0414",
                format!("binding `{}` shadows a builtin of the same name", b.name),
                b.span,
            );
        }
    }

    // Declared schemes are visible everywhere, up front.
    for (name, sch) in &sig_map {
        if bound.contains(name.as_str()) {
            inf.globals.insert(name.clone(), sch.clone());
        }
    }

    // --- Binding groups, in dependency order --------------------------
    let groups = binding_groups(&program.bindings);
    for (gi, group) in groups.into_iter().enumerate() {
        let members: Vec<usize> = group.into_iter().filter(|i| !skip.contains(i)).collect();
        if members.is_empty() {
            continue;
        }
        let (sigless, sigd): (Vec<usize>, Vec<usize>) = members
            .iter()
            .partition(|&&i| !sig_map.contains_key(&program.bindings[i].name));

        // 1. Monomorphic placeholders for signature-less members.
        inf.group_mono.clear();
        for &i in &sigless {
            let t = inf.fresh_ty();
            inf.group_mono.insert(program.bindings[i].name.clone(), t);
        }

        // 2. Infer signature-less bodies together.
        let mut outs: Vec<(String, CoreExpr, Vec<Pred>)> = Vec::new();
        for &i in &sigless {
            let b = &program.bindings[i];
            inf.preds.clear();
            let (t, c) = inf.infer_expr(&b.expr);
            let mono = inf.group_mono[&b.name].clone();
            inf.unify_at(&mono, &t, b.span);
            let collected = std::mem::take(&mut inf.preds);
            outs.push((b.name.clone(), c, collected));
        }

        // 3. Reduce the group's accumulated context and generalize.
        let all_preds: Vec<Pred> = outs
            .iter()
            .flat_map(|(_, _, ps)| ps.iter())
            .map(|p| p.apply(&inf.subst))
            .collect();
        let (retained, errors) = cenv.reduce_context(&all_preds, opts.budget);
        for e in &errors {
            inf.diags
                .error(Stage::TypeCheck, e.code(), e.to_string(), e.pred().span);
        }
        let mut gen_vars: BTreeSet<TyVar> = BTreeSet::new();
        let mut member_types: HashMap<String, Type> = HashMap::new();
        for (name, _, _) in &outs {
            let t = inf.zonk(&inf.group_mono[name]);
            gen_vars.extend(t.free_vars());
            member_types.insert(name.clone(), t);
        }
        for p in &retained {
            if !p.free_vars().is_subset(&gen_vars) {
                inf.diags.error(
                    Stage::TypeCheck,
                    "E0411",
                    format!(
                        "ambiguous constraint `{p}`: its type variable is not fixed \
                         by the binding group's type"
                    ),
                    p.span,
                );
            }
        }
        let dict_params: Vec<String> = (0..retained.len())
            .map(|k| format!("$dg{gi}${k}"))
            .collect();
        let group_names: Vec<String> = outs.iter().map(|(n, _, _)| n.clone()).collect();
        for (name, _, _) in &outs {
            let qual = Qual::new(retained.clone(), member_types[name].clone());
            // Quantify over the whole group's variables (THIH-style),
            // restricted to those actually occurring in this scheme.
            let vars: Vec<TyVar> = qual
                .free_vars()
                .into_iter()
                .filter(|v| gen_vars.contains(v))
                .collect();
            inf.globals.insert(name.clone(), Scheme { vars, qual });
        }

        // 4. Dictionary conversion for signature-less members.
        for (name, core, _) in &outs {
            let converted = inf.convert_member(
                core,
                retained.clone(),
                dict_params.clone(),
                group_names.clone(),
                retained.clone(),
            );
            inf.binds.push((
                name.clone(),
                CoreExpr::lams(dict_params.iter().cloned(), converted),
            ));
        }
        inf.group_mono.clear();

        // 5. Check signature-carrying members against their skolemized
        //    declared type. Same-group signature-less siblings are used
        //    through their (just generalized) schemes.
        for &i in &sigd {
            let b = &program.bindings[i];
            let Some(sch) = sig_map.get(&b.name).cloned() else {
                continue;
            };
            let (sk_preds, sk_ty) = inf.skolemize(&sch);
            inf.preds.clear();
            let (t, c) = inf.infer_expr(&b.expr);
            inf.unify_at(&sk_ty, &t, b.span);
            let params: Vec<String> = (0..sk_preds.len())
                .map(|k| format!("$ds${}${k}", b.name))
                .collect();
            let converted =
                inf.convert_member(&c, sk_preds, params.clone(), Vec::new(), Vec::new());
            inf.binds
                .push((b.name.clone(), CoreExpr::lams(params, converted)));
        }
    }

    // --- Instance dictionary constructors ------------------------------
    elaborate_instances(&mut inf, program);

    // --- Entry point ---------------------------------------------------
    let has_main = inf.binds.iter().any(|(n, _)| n == "main");
    if has_main {
        if let Some(sch) = inf.globals.get("main") {
            if !sch.qual.preds.is_empty() {
                inf.diags.error(
                    Stage::TypeCheck,
                    "E0413",
                    format!("`main` must not have a class context, but its type is `{sch}`"),
                    program
                        .bindings
                        .iter()
                        .find(|b| b.name == "main")
                        .map(|b| b.span)
                        .unwrap_or(Span::DUMMY),
                );
            }
        }
    }

    let schemes: HashMap<String, Scheme> = program
        .bindings
        .iter()
        .filter_map(|b| {
            inf.globals
                .get(&b.name)
                .map(|s| (b.name.clone(), s.apply(&inf.subst)))
        })
        .collect();

    let mut cache = inf.cache.into_inner();
    cache.flush_metrics();
    (
        Elaboration {
            core: CoreProgram {
                binds: inf.binds,
                main: has_main.then(|| "main".to_string()),
            },
            schemes,
            stats: cache.stats,
            resolution_trace: cache.take_trace(),
            metrics: std::mem::take(&mut cache.metrics),
            goal_spans: cache.take_goal_spans(),
            cache: Some(cache),
        },
        inf.diags,
    )
}

/// Build `$dictN$C$T` constructor bindings: one lambda per context
/// predicate, returning a tuple of superclass dictionaries followed by
/// method implementations.
fn elaborate_instances(inf: &mut Infer<'_>, program: &Program) {
    let mut insts: Vec<tc_classes::Instance> = inf.cenv.all_instances().cloned().collect();
    insts.sort_by_key(|i| i.id);
    for inst in insts {
        let Some(decl) = program.instances.get(inst.ast_index) else {
            continue;
        };
        let Some(ci) = inf.cenv.class(&inst.head.class).cloned() else {
            continue;
        };

        // Skolemize the instance's own variables: the dictionary
        // constructor must be parametric in them.
        let mut inst_vars: BTreeSet<TyVar> = inst.head.ty.free_vars();
        for p in &inst.preds {
            inst_vars.extend(p.free_vars());
        }
        let mut sk = Subst::new();
        for (k, v) in inst_vars.iter().enumerate() {
            let _ = sk.bind(*v, Type::Con(format!("${}", display_name(k))));
        }
        let mut next_skolem = inst_vars.len();
        let sk_head = sk.apply(&inst.head.ty);
        let sk_preds: Vec<Pred> = inst.preds.iter().map(|p| p.apply(&sk)).collect();
        let iparams: Vec<String> = (0..sk_preds.len())
            .map(|k| format!("$di{}${k}", inst.id))
            .collect();

        let mut slots: Vec<CoreExpr> = Vec::new();

        // Superclass dictionary slots, resolved from the instance
        // context: `instance Ord Int` needs an `Eq Int` in scope.
        for sup in &ci.supers {
            let p = Pred::new(sup.clone(), sk_head.clone(), inst.span);
            let cx = ConvertCtx {
                cenv: inf.cenv,
                table: &inf.table,
                subst: &inf.subst,
                cache: &inf.cache,
                assumptions: sk_preds.clone(),
                dict_params: iparams.clone(),
                group_members: Vec::new(),
                group_retained: Vec::new(),
                budget: inf.budget,
            };
            slots.push(cx.resolve_pred(&p, &mut inf.diags));
        }

        // Method slots, in class declaration order.
        for m in &ci.methods {
            let Some(body) = decl.methods.iter().find(|b| b.name == m.name) else {
                // Already reported (E0315) at class-env build time.
                slots.push(CoreExpr::Fail(format!(
                    "missing method `{}` in instance `{} {}`",
                    m.name, inst.head.class, sk_head
                )));
                continue;
            };

            // Instantiate the method scheme, pin its class variable to
            // the (skolemized) instance head, and freeze every other
            // quantified variable as a fresh rigid constant.
            let mut minted: Vec<TyVar> = Vec::new();
            let (mpreds, mty) = {
                let gen = &mut *inf.gen;
                m.scheme.instantiate(|| {
                    let v = gen.fresh();
                    minted.push(v);
                    v
                })
            };
            let mut rest = mpreds;
            if rest.is_empty() {
                slots.push(CoreExpr::Fail(format!(
                    "method `{}` lost its class constraint",
                    m.name
                )));
                continue;
            }
            let class_pred = rest.remove(0);
            inf.unify_at(&class_pred.ty, &sk_head, body.span);
            for v in minted {
                if inf.subst.apply(&Type::Var(v)) == Type::Var(v) {
                    let _ = inf
                        .subst
                        .bind(v, Type::Con(format!("${}", display_name(next_skolem))));
                    next_skolem += 1;
                }
            }
            let expected = inf.zonk(&mty);
            let sk_extra: Vec<Pred> = rest
                .iter()
                .map(|p| {
                    let mut q = p.apply(&inf.subst);
                    q.span = body.span;
                    q
                })
                .collect();

            inf.preds.clear();
            let (tb, cb) = inf.infer_expr(&body.expr);
            inf.unify_at(&expected, &tb, body.span);

            let xparams: Vec<String> = (0..sk_extra.len())
                .map(|k| format!("$dx{}${}${k}", inst.id, m.name))
                .collect();
            let mut assumptions = sk_preds.clone();
            assumptions.extend(sk_extra);
            let mut all_params = iparams.clone();
            all_params.extend(xparams.iter().cloned());
            let converted =
                inf.convert_member(&cb, assumptions, all_params, Vec::new(), Vec::new());
            slots.push(CoreExpr::lams(xparams, converted));
        }

        inf.binds.push((
            inst.dict_binding_name(),
            CoreExpr::lams(iparams, CoreExpr::Tuple(slots)),
        ));
    }
}
