//! `tc-core`: the elaborator — from surface AST to dictionary-passing
//! core.
//!
//! This crate implements the heart of Peterson & Jones' compilation
//! scheme: Hindley-Milner inference extended with class contexts, where
//! every use of an overloaded value inserts a *placeholder* for the
//! dictionary it will need, and a separate *dictionary conversion* pass
//! later replaces each placeholder with a parameter reference, a
//! superclass projection, or an instance-constructor application.
//!
//! Robustness properties (see the repository README):
//! * every failure is a [`tc_syntax::Diagnostic`] with a source span —
//!   elaboration never panics and recovers per binding, so one broken
//!   definition does not hide errors in the others;
//! * all searches are budgeted ([`tc_classes::ReduceBudget`],
//!   unification's work budget) — adversarial programs degrade into
//!   diagnostics, not hangs or stack overflows;
//! * even erroneous programs elaborate to a runnable core where the
//!   broken parts are [`tc_coreir::CoreExpr::Fail`] nodes that evaluate
//!   to structured errors.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod builtins;
pub mod convert;
pub mod infer;
pub mod scc;

pub use builtins::{builtin_env, builtin_schemes, is_builtin};
pub use infer::{elaborate, elaborate_with, elaborate_with_cache, ElabOptions, Elaboration};
pub use scc::binding_groups;

#[cfg(test)]
mod tests {
    use super::*;
    use tc_classes::{build_class_env, ReduceBudget};
    use tc_syntax::Diagnostics;
    use tc_types::VarGen;

    /// Full front-half pipeline for tests: lex, parse, build the class
    /// env, elaborate. Returns the elaboration and ALL diagnostics.
    fn run(src: &str) -> (Elaboration, Diagnostics) {
        let (toks, mut diags) = tc_syntax::lex(src);
        let (prog, pd) = tc_syntax::parse_program(&toks, Default::default());
        diags.extend(pd);
        let mut gen = VarGen::new();
        let (cenv, cd) = build_class_env(&prog, &mut gen);
        diags.extend(cd);
        let (elab, ed) = elaborate(&prog, &cenv, &mut gen, ReduceBudget::default());
        diags.extend(ed);
        (elab, diags)
    }

    fn run_ok(src: &str) -> Elaboration {
        let (elab, diags) = run(src);
        assert!(
            !diags.has_errors(),
            "unexpected errors: {}",
            diags.render_all(src)
        );
        assert!(
            elab.core.verify_converted().is_empty(),
            "placeholders left in {:?}",
            elab.core.verify_converted()
        );
        elab
    }

    const EQ_PRELUDE: &str = "\
        class Eq a where { eq :: a -> a -> Bool; };\n\
        instance Eq Int where { eq = primEqInt; };\n\
        instance Eq Bool where { eq = primEqBool; };\n\
        instance Eq a => Eq (List a) where {\n\
          eq = \\xs ys -> if null xs then null ys\n\
               else if null ys then False\n\
               else if eq (head xs) (head ys) then eq (tail xs) (tail ys)\n\
               else False;\n\
        };\n";

    #[test]
    fn monomorphic_method_use() {
        let elab = run_ok(&format!("{EQ_PRELUDE} main = eq 1 2;"));
        assert_eq!(elab.schemes["main"].to_string(), "Bool");
        assert_eq!(elab.core.main.as_deref(), Some("main"));
    }

    #[test]
    fn generalizes_with_retained_context() {
        let elab = run_ok(&format!("{EQ_PRELUDE} same x y = eq x y;"));
        assert_eq!(elab.schemes["same"].to_string(), "Eq a => a -> a -> Bool");
    }

    #[test]
    fn member_example_from_paper() {
        let elab = run_ok(&format!(
            "{EQ_PRELUDE}\n\
             member x xs = if null xs then False\n\
                           else if eq x (head xs) then True\n\
                           else member x (tail xs);\n\
             main = member 2 (cons 1 (cons 2 nil));"
        ));
        assert_eq!(
            elab.schemes["member"].to_string(),
            "Eq a => a -> List a -> Bool"
        );
        assert_eq!(elab.schemes["main"].to_string(), "Bool");
    }

    #[test]
    fn signature_checks_and_polymorphic_recursion() {
        run_ok(&format!(
            "{EQ_PRELUDE}\n\
             same :: Eq a => a -> a -> Bool;\n\
             same x y = eq x y;"
        ));
    }

    #[test]
    fn signature_mismatch_is_diagnostic() {
        let (_, diags) = run("f :: Int -> Bool;\nf x = x;");
        assert!(
            diags.iter().any(|d| d.code == "E0401"),
            "{:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn implementation_cannot_specialize_signature() {
        // Declared forall a, but the body forces a = Int.
        let (_, diags) = run("f :: a -> Int;\nf x = primAddInt x 1;");
        assert!(diags.has_errors());
    }

    #[test]
    fn could_not_deduce_from_signature() {
        let (_, diags) = run(&format!("{EQ_PRELUDE} f :: a -> Bool;\nf x = eq x x;"));
        assert!(
            diags.iter().any(|d| d.code == "E0410"),
            "{:?}",
            diags
                .iter()
                .map(|d| (d.code, d.message.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_instance_is_diagnostic_not_panic() {
        let (_, diags) = run(&format!("{EQ_PRELUDE} bad = eq (\\x -> x) (\\y -> y);"));
        assert!(diags.iter().any(|d| d.code == "E0410"));
    }

    #[test]
    fn ambiguous_constraint_reported() {
        let (_, diags) = run(&format!("{EQ_PRELUDE} amb = eq nil nil;"));
        assert!(
            diags.iter().any(|d| d.code == "E0411"),
            "{:?}",
            diags
                .iter()
                .map(|d| (d.code, d.message.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unbound_variable_recovers() {
        let (elab, diags) = run("f = missing 1;\ng = 2;");
        assert!(diags.iter().any(|d| d.code == "E0405"));
        // g still elaborated despite f's error.
        assert!(elab.core.lookup("g").is_some());
    }

    #[test]
    fn superclass_dictionary_resolved_in_instance() {
        let elab = run_ok(&format!(
            "{EQ_PRELUDE}\n\
             class Eq a => Ord a where {{ lte :: a -> a -> Bool; }};\n\
             instance Ord Int where {{ lte = primLeInt; }};\n\
             main = lte 1 2;"
        ));
        // The Ord Int dictionary embeds the Eq Int dictionary.
        let dict = elab
            .core
            .binds
            .iter()
            .find(|(n, _)| n.contains("$Ord$Int"))
            .map(|(_, e)| tc_coreir::pretty(e))
            .unwrap();
        assert!(dict.contains("$dict"), "{dict}");
    }

    #[test]
    fn mutual_recursion_with_classes() {
        let elab = run_ok(&format!(
            "{EQ_PRELUDE}\n\
             isEven n = if eq n 0 then True else isOdd (primSubInt n 1);\n\
             isOdd n = if eq n 0 then False else isEven (primSubInt n 1);"
        ));
        assert_eq!(elab.schemes["isEven"].to_string(), "Int -> Bool");
    }

    #[test]
    fn duplicate_binding_reported_first_wins() {
        let (elab, diags) = run("f = 1;\nf = 2;");
        assert!(diags.iter().any(|d| d.code == "E0408"));
        assert_eq!(elab.core.binds.iter().filter(|(n, _)| n == "f").count(), 1);
    }

    #[test]
    fn main_with_context_rejected() {
        let (_, diags) = run(&format!("{EQ_PRELUDE} main x = eq x x;"));
        assert!(diags.iter().any(|d| d.code == "E0413"));
    }

    #[test]
    fn local_let_is_monomorphic_but_works() {
        let elab = run_ok("f = let { idf = \\x -> x } in idf 3;");
        assert_eq!(elab.schemes["f"].to_string(), "Int");
    }

    #[test]
    fn instance_context_feeds_method_body() {
        // eq on List uses the element dictionary from the context.
        let elab = run_ok(&format!(
            "{EQ_PRELUDE} main = eq (cons 1 nil) (cons 1 nil);"
        ));
        assert_eq!(elab.schemes["main"].to_string(), "Bool");
    }

    #[test]
    fn hole_from_parse_error_still_elaborates() {
        let (toks, _) = tc_syntax::lex("f = ) 1;\ng = 2;");
        let (prog, pd) = tc_syntax::parse_program(&toks, Default::default());
        assert!(pd.has_errors());
        let mut gen = VarGen::new();
        let (cenv, _) = build_class_env(&prog, &mut gen);
        let (elab, _) = elaborate(&prog, &cenv, &mut gen, ReduceBudget::default());
        assert!(elab.core.verify_converted().is_empty());
    }
}
