//! The builtin value environment.
//!
//! The surface language has no pattern matching and no primitive
//! operators; everything bottoms out in a small closed set of builtin
//! functions that the evaluator implements natively. Their schemes are
//! declared here so inference can type them, and the prelude wraps
//! them in class methods (`primEqInt` becomes the `Eq Int` instance's
//! `eq`, and so on).

use std::collections::HashMap;
use tc_types::{Qual, Scheme, TyVar, Type};

/// Names and schemes of every builtin. Deterministic order.
pub fn builtin_schemes() -> Vec<(&'static str, Scheme)> {
    let int = Type::int;
    let bool_ = Type::bool;
    let ii_i = || Type::fun(int(), Type::fun(int(), int()));
    let ii_b = || Type::fun(int(), Type::fun(int(), bool_()));
    // One polymorphic variable is enough for the list builtins; the
    // scheme closes over it, so reusing the same TyVar across schemes
    // is safe (instantiation always freshens).
    let a = || Type::Var(TyVar(0));
    let poly = |t: Type| Scheme {
        vars: vec![TyVar(0)],
        qual: Qual::unqualified(t),
    };
    vec![
        ("primAddInt", Scheme::mono(ii_i())),
        ("primSubInt", Scheme::mono(ii_i())),
        ("primMulInt", Scheme::mono(ii_i())),
        ("primDivInt", Scheme::mono(ii_i())),
        ("primModInt", Scheme::mono(ii_i())),
        ("primNegInt", Scheme::mono(Type::fun(int(), int()))),
        ("primEqInt", Scheme::mono(ii_b())),
        ("primLtInt", Scheme::mono(ii_b())),
        ("primLeInt", Scheme::mono(ii_b())),
        (
            "primEqBool",
            Scheme::mono(Type::fun(bool_(), Type::fun(bool_(), bool_()))),
        ),
        ("nil", poly(Type::list(a()))),
        (
            "cons",
            poly(Type::fun(a(), Type::fun(Type::list(a()), Type::list(a())))),
        ),
        ("null", poly(Type::fun(Type::list(a()), bool_()))),
        ("head", poly(Type::fun(Type::list(a()), a()))),
        ("tail", poly(Type::fun(Type::list(a()), Type::list(a())))),
        // error :: a — evaluating it is a structured runtime failure.
        ("error", poly(a())),
    ]
}

/// The builtin environment as a map.
pub fn builtin_env() -> HashMap<String, Scheme> {
    builtin_schemes()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s))
        .collect()
}

/// Is `name` a builtin the evaluator implements natively?
pub fn is_builtin(name: &str) -> bool {
    builtin_schemes().iter().any(|(n, _)| *n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent() {
        let env = builtin_env();
        assert!(env.len() >= 15);
        assert!(is_builtin("primAddInt"));
        assert!(is_builtin("cons"));
        assert!(!is_builtin("member"));
    }

    #[test]
    fn list_builtins_are_polymorphic() {
        let env = builtin_env();
        let cons = &env["cons"];
        assert_eq!(cons.vars.len(), 1);
        let mut n = 100u32;
        let (preds, ty) = cons.instantiate(|| {
            n += 1;
            TyVar(n)
        });
        assert!(preds.is_empty());
        assert_eq!(
            ty,
            Type::fun(
                Type::Var(TyVar(101)),
                Type::fun(
                    Type::list(Type::Var(TyVar(101))),
                    Type::list(Type::Var(TyVar(101)))
                )
            )
        );
    }
}
