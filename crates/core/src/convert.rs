//! Dictionary conversion: replace every placeholder left by inference
//! with a concrete dictionary expression.
//!
//! This is the second half of the paper's translation. Each
//! `Dict` placeholder holds a predicate; after zonking (applying the
//! final substitution) the predicate is resolved against the
//! *assumptions* in scope — the dictionary lambda parameters of the
//! enclosing binding — yielding a [`DictDeriv`] recipe that is spelled
//! out as parameter references, superclass projections, and instance
//! constructor applications. `RecCall` placeholders (recursive uses of
//! a same-group binding) become the binding applied to the group's
//! dictionary arguments, themselves resolved in the *local* context so
//! that a signature-carrying group member can still call its
//! signature-less sibling.
//!
//! Resolution failures become diagnostics and a [`CoreExpr::Fail`]
//! node — the program still compiles to something that evaluates to a
//! structured error, never a panic.

use std::cell::RefCell;
use tc_classes::{ClassEnv, DictDeriv, ReduceBudget, ResolveCache, ResolveError};
use tc_coreir::{CoreExpr, PlaceholderKind, PlaceholderTable};
use tc_syntax::{Diagnostics, Stage};
use tc_types::{Pred, Subst, Type};

/// Everything a conversion pass over one binding needs.
pub struct ConvertCtx<'a> {
    pub cenv: &'a ClassEnv,
    pub table: &'a PlaceholderTable,
    pub subst: &'a Subst,
    /// The elaboration-wide resolution memo table, shared across every
    /// binding so a dictionary proved once is proved once. Interior
    /// mutability because conversion contexts are otherwise read-only.
    pub cache: &'a RefCell<ResolveCache>,
    /// Dictionary assumptions in scope (zonked), in parameter order.
    pub assumptions: Vec<Pred>,
    /// Parameter names, parallel to `assumptions`.
    pub dict_params: Vec<String>,
    /// Signature-less members of the current binding group (targets of
    /// `RecCall` placeholders).
    pub group_members: Vec<String>,
    /// The group's retained context — the dictionary arguments every
    /// `RecCall` must supply.
    pub group_retained: Vec<Pred>,
    pub budget: ReduceBudget,
}

impl ConvertCtx<'_> {
    /// Resolve a predicate against the assumptions and spell out the
    /// resulting dictionary expression. Public because the instance
    /// pass resolves superclass slots directly.
    pub fn resolve_pred(&self, pred: &Pred, diags: &mut Diagnostics) -> CoreExpr {
        let zonked = pred.apply(self.subst);
        let resolved = self.cenv.resolve_with(
            &zonked,
            &self.assumptions,
            self.budget,
            &mut self.cache.borrow_mut(),
        );
        match resolved {
            Ok(deriv) => self.deriv_expr(&deriv),
            Err(e) => {
                diags.error(
                    Stage::DictConv,
                    e.code(),
                    resolve_error_message(&e),
                    zonked.span,
                );
                CoreExpr::Fail(format!("unresolved constraint `{zonked}`"))
            }
        }
    }

    fn deriv_expr(&self, d: &DictDeriv) -> CoreExpr {
        match d {
            DictDeriv::FromParam { index } => match self.dict_params.get(*index) {
                Some(p) => CoreExpr::Var(p.clone()),
                None => CoreExpr::Fail("dictionary parameter out of range".into()),
            },
            DictDeriv::FromSuper { base, slot } => {
                CoreExpr::Proj(*slot, Box::new(self.deriv_expr(base)))
            }
            DictDeriv::FromInstance { inst_id, args } => {
                let head = match self.cenv.instance_by_id(*inst_id) {
                    Some(inst) => CoreExpr::Var(inst.dict_binding_name()),
                    None => CoreExpr::Fail(format!("unknown instance #{inst_id}")),
                };
                CoreExpr::apps(head, args.iter().map(|a| self.deriv_expr(a)))
            }
        }
    }
}

/// Human-oriented message for a resolution failure; predicates whose
/// types mention a rigid (skolemized) signature variable get the
/// "could not deduce from the signature context" phrasing.
fn resolve_error_message(e: &ResolveError) -> String {
    let pred = e.pred();
    if mentions_skolem(&pred.ty) && matches!(e, ResolveError::NoInstance { .. }) {
        format!(
            "could not deduce `{pred}` from the enclosing signature or instance context \
             (`$`-prefixed type constructors are rigid signature variables)"
        )
    } else {
        e.to_string()
    }
}

/// Does the type mention a skolem constant (rigid signature variable)?
pub fn mentions_skolem(t: &Type) -> bool {
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        match x {
            Type::Con(n) if n.starts_with('$') => return true,
            Type::Con(_) | Type::Var(_) => {}
            Type::App(f, a) => {
                stack.push(f);
                stack.push(a);
            }
            Type::Fun(f, a) => {
                stack.push(f);
                stack.push(a);
            }
        }
    }
    false
}

/// Convert one binding body: structurally rebuild the expression with
/// every placeholder replaced. Recursion depth is bounded by the
/// parser's expression-depth budget plus the (constant-depth) wrappers
/// inference inserts.
pub fn convert(e: &CoreExpr, cx: &ConvertCtx<'_>, diags: &mut Diagnostics) -> CoreExpr {
    match e {
        CoreExpr::Var(_) | CoreExpr::Lit(_) | CoreExpr::Fail(_) | CoreExpr::Con { .. } => e.clone(),
        CoreExpr::Case(scrut, arms) => CoreExpr::Case(
            Box::new(convert(scrut, cx, diags)),
            arms.iter()
                .map(|arm| tc_coreir::CoreArm {
                    con: arm.con.clone(),
                    binders: arm.binders.clone(),
                    body: convert(&arm.body, cx, diags),
                })
                .collect(),
        ),
        CoreExpr::App(f, x) => CoreExpr::app(convert(f, cx, diags), convert(x, cx, diags)),
        CoreExpr::Lam(p, b) => CoreExpr::Lam(p.clone(), Box::new(convert(b, cx, diags))),
        CoreExpr::LetRec(bs, b) => CoreExpr::LetRec(
            bs.iter()
                .map(|(n, v)| (n.clone(), convert(v, cx, diags)))
                .collect(),
            Box::new(convert(b, cx, diags)),
        ),
        CoreExpr::If(c, t, f) => CoreExpr::If(
            Box::new(convert(c, cx, diags)),
            Box::new(convert(t, cx, diags)),
            Box::new(convert(f, cx, diags)),
        ),
        CoreExpr::Tuple(xs) => CoreExpr::Tuple(xs.iter().map(|x| convert(x, cx, diags)).collect()),
        CoreExpr::Proj(i, b) => CoreExpr::Proj(*i, Box::new(convert(b, cx, diags))),
        CoreExpr::Placeholder(id) => match cx.table.get(*id) {
            Some(PlaceholderKind::Dict { pred }) => cx.resolve_pred(pred, diags),
            Some(PlaceholderKind::RecCall { name, .. }) => {
                if cx.group_members.iter().any(|m| m == name) {
                    CoreExpr::apps(
                        CoreExpr::Var(name.clone()),
                        cx.group_retained
                            .iter()
                            .map(|p| cx.resolve_pred(p, diags))
                            .collect::<Vec<_>>(),
                    )
                } else {
                    CoreExpr::Fail(format!("recursive call to `{name}` outside its group"))
                }
            }
            None => CoreExpr::Fail(format!("dangling placeholder #{id}")),
        },
    }
}
