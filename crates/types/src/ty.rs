//! The internal type representation.

use std::collections::BTreeSet;
use std::fmt;

/// A type variable. Fresh variables are numbered by the inference
/// engine; display names are derived (`t0`, `t1`, ... or `a`, `b` for
/// quantified variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotone source of fresh type variables, shared by lowering and
/// inference so variable numbers never collide across passes.
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    pub fn new() -> Self {
        VarGen::default()
    }

    pub fn fresh(&mut self) -> TyVar {
        let v = TyVar(self.next);
        // Saturate instead of wrapping: colliding with variable 0 after
        // 4 billion allocations would be a soundness bug, while reusing
        // u32::MAX merely risks a spurious type error on inputs that
        // could never finish inference anyway.
        self.next = self.next.saturating_add(1);
        v
    }
}

/// Monotypes.
///
/// `Fun` is kept as a dedicated constructor (rather than `App(App(->))`)
/// because it is by far the most common form and pattern matching on it
/// dominates both unification and display.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    Var(TyVar),
    /// A nullary or higher-kinded constructor name: `Int`, `Bool`, `List`.
    Con(String),
    /// Constructor application: `List Int` is `App(Con "List", Con "Int")`.
    App(Box<Type>, Box<Type>),
    /// `a -> b`.
    Fun(Box<Type>, Box<Type>),
}

impl Type {
    pub fn int() -> Type {
        Type::Con("Int".into())
    }

    pub fn bool() -> Type {
        Type::Con("Bool".into())
    }

    pub fn list(elem: Type) -> Type {
        Type::App(Box::new(Type::Con("List".into())), Box::new(elem))
    }

    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// Curried function type from a parameter list.
    pub fn fun_from(params: Vec<Type>, ret: Type) -> Type {
        params
            .into_iter()
            .rev()
            .fold(ret, |acc, p| Type::fun(p, acc))
    }

    /// Free type variables in order of first occurrence is not needed;
    /// a sorted set keeps quantification deterministic.
    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    pub(crate) fn collect_free_vars(&self, out: &mut BTreeSet<TyVar>) {
        // Iterative worklist: user programs can build very deep types
        // (long curried chains), and recursion depth here must not be
        // proportional to type size.
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Type::Var(v) => {
                    out.insert(*v);
                }
                Type::Con(_) => {}
                Type::App(a, b) | Type::Fun(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
    }

    pub fn contains_var(&self, v: TyVar) -> bool {
        self.occurrences(v) > 0
    }

    /// How many times `v` occurs in the type. Iterative, like the other
    /// traversals; used by the Paterson-style termination analysis,
    /// which compares variable multiplicities between an instance
    /// context constraint and the instance head.
    pub fn occurrences(&self, v: TyVar) -> usize {
        let mut n = 0usize;
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            match t {
                Type::Var(w) => {
                    if *w == v {
                        n = n.saturating_add(1);
                    }
                }
                Type::Con(_) => {}
                Type::App(a, b) | Type::Fun(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        n
    }

    /// Number of constructors in the type — used as a work measure by
    /// budgeted operations.
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        let mut stack = vec![self];
        while let Some(t) = stack.pop() {
            n = n.saturating_add(1);
            if let Type::App(a, b) | Type::Fun(a, b) = t {
                stack.push(a);
                stack.push(b);
            }
        }
        n
    }

    /// The outermost constructor name, if the type is a (possibly
    /// applied) constructor: `List Int` → `Some("List")`.
    pub fn head_con(&self) -> Option<&str> {
        let mut t = self;
        loop {
            match t {
                Type::Con(n) => return Some(n),
                Type::App(f, _) => t = f,
                _ => return None,
            }
        }
    }
}

/// Pretty-printing with minimal parentheses. Implemented iteratively
/// via precedence-tagged recursion over an explicit stack-free helper:
/// the depth of a *display* is bounded by the type's depth, which the
/// inference budget already caps, so plain recursion with a guard is
/// acceptable here — but we still keep a hard depth cutoff for safety.
impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, f, 0)
    }
}

const MAX_DISPLAY_DEPTH: usize = 256;

fn fmt_prec(t: &Type, prec: u8, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    if depth > MAX_DISPLAY_DEPTH {
        return f.write_str("…");
    }
    match t {
        Type::Var(v) => write!(f, "{v}"),
        Type::Con(n) => f.write_str(n),
        Type::App(a, b) => {
            // Application binds tighter than `->`; arguments at atom level.
            if prec > 1 {
                f.write_str("(")?;
            }
            fmt_prec(a, 1, f, depth + 1)?;
            f.write_str(" ")?;
            fmt_prec(b, 2, f, depth + 1)?;
            if prec > 1 {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::Fun(a, b) => {
            if prec > 0 {
                f.write_str("(")?;
            }
            fmt_prec(a, 1, f, depth + 1)?;
            f.write_str(" -> ")?;
            fmt_prec(b, 0, f, depth + 1)?;
            if prec > 0 {
                f.write_str(")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_minimal_parens() {
        let t = Type::fun(
            Type::fun(Type::int(), Type::bool()),
            Type::list(Type::Var(TyVar(0))),
        );
        assert_eq!(t.to_string(), "(Int -> Bool) -> List t0");
    }

    #[test]
    fn free_vars_and_contains() {
        let t = Type::fun(Type::Var(TyVar(1)), Type::list(Type::Var(TyVar(2))));
        let fv = t.free_vars();
        assert!(fv.contains(&TyVar(1)) && fv.contains(&TyVar(2)));
        assert!(t.contains_var(TyVar(2)));
        assert!(!t.contains_var(TyVar(3)));
    }

    #[test]
    fn occurrences_counts_multiplicity() {
        let a = Type::Var(TyVar(0));
        let t = Type::fun(a.clone(), Type::list(a.clone()));
        assert_eq!(t.occurrences(TyVar(0)), 2);
        assert_eq!(t.occurrences(TyVar(1)), 0);
    }

    #[test]
    fn deep_type_no_stack_overflow() {
        let mut t = Type::int();
        for _ in 0..200_000 {
            t = Type::fun(Type::int(), t);
        }
        // free_vars / size / contains_var are iterative.
        assert!(t.free_vars().is_empty());
        assert!(t.size() > 200_000);
        // NB: we deliberately leak the deep type: dropping nested Box
        // chains recurses in rustc's generated Drop. Real pipeline
        // types never get this deep because unification is budgeted.
        std::mem::forget(t);
    }

    #[test]
    fn head_con() {
        assert_eq!(Type::list(Type::int()).head_con(), Some("List"));
        assert_eq!(Type::Var(TyVar(0)).head_con(), None);
    }
}
