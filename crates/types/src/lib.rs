//! `tc-types`: the type machinery under Hindley-Milner inference with
//! class contexts.
//!
//! This crate is deliberately free of AST knowledge: it defines
//! [`Type`], [`Subst`], unification and matching, predicates
//! ([`Pred`]), qualified types ([`Qual`]), and type schemes
//! ([`Scheme`]). The elaborator in `tc-core` drives these; the class
//! machinery in `tc-classes` reuses [`Pred`] for entailment and
//! context reduction.
//!
//! Robustness notes:
//! * Unification and matching return typed errors ([`TypeError`])
//!   instead of panicking; the occurs check prevents infinite types.
//! * Unification carries an explicit work budget so adversarial types
//!   (exponentially self-similar applications) degrade into a
//!   diagnostic, not a hang.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod intern;
pub mod pred;
pub mod scheme;
pub mod subst;
pub mod ty;
pub mod unify;

pub use intern::{InternStats, Interner, NameId, TypeId};
pub use pred::{Pred, Qual};
pub use scheme::Scheme;
pub use subst::Subst;
pub use subst::SubstOverflow;
pub use ty::{TyVar, Type, VarGen};
pub use unify::{match_types, unify, TypeError, TypeErrorKind};
