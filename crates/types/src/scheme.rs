//! Type schemes (polytypes).

use crate::pred::{Pred, Qual};
use crate::subst::Subst;
use crate::ty::{TyVar, Type};
use std::collections::BTreeSet;
use std::fmt;

/// `forall vars. preds => ty`.
///
/// Quantified variables are stored as the concrete [`TyVar`]s that were
/// generalized; [`Scheme::instantiate`] replaces them with fresh
/// variables supplied by the caller, so the scheme itself never needs a
/// fresh-variable source.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    pub vars: Vec<TyVar>,
    pub qual: Qual<Type>,
}

impl Scheme {
    /// A monomorphic scheme (no quantification, no context).
    pub fn mono(ty: Type) -> Self {
        Scheme {
            vars: Vec::new(),
            qual: Qual::unqualified(ty),
        }
    }

    /// Quantify every free variable of `qual` not present in `env_vars`.
    pub fn generalize(qual: Qual<Type>, env_vars: &BTreeSet<TyVar>) -> Self {
        let vars: Vec<TyVar> = qual
            .free_vars()
            .into_iter()
            .filter(|v| !env_vars.contains(v))
            .collect();
        Scheme { vars, qual }
    }

    /// Replace each quantified variable with a fresh one from `fresh`.
    /// Returns the instantiated context and body type.
    pub fn instantiate(&self, mut fresh: impl FnMut() -> TyVar) -> (Vec<Pred>, Type) {
        if self.vars.is_empty() {
            return (self.qual.preds.clone(), self.qual.head.clone());
        }
        let mut s = Subst::new();
        for v in &self.vars {
            // Binding distinct quantified vars to fresh single-node
            // types cannot overflow the node budget.
            let _ = s.bind(*v, Type::Var(fresh()));
        }
        (
            self.qual.preds.iter().map(|p| p.apply(&s)).collect(),
            s.apply(&self.qual.head),
        )
    }

    /// Free (unquantified) variables — needed to compute the
    /// environment's free variables during generalization.
    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        let mut fv = self.qual.free_vars();
        for v in &self.vars {
            fv.remove(v);
        }
        fv
    }

    /// Apply a substitution to the *free* part of the scheme. The
    /// quantified variables are untouched (inference guarantees they
    /// are never in the substitution's domain because they are
    /// generalized only after zonking).
    pub fn apply(&self, s: &Subst) -> Scheme {
        Scheme {
            vars: self.vars.clone(),
            qual: self.qual.apply(s),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rename quantified variables to a, b, c ... for readability.
        let mut s = Subst::new();
        for (i, v) in self.vars.iter().enumerate() {
            // Single-node constructors cannot overflow the node budget.
            let _ = s.bind(*v, Type::Con(display_name(i)));
        }
        let shown = self.qual.apply(&s);
        write!(f, "{shown}")
    }
}

/// `a`, `b`, ..., `z`, `a1`, `b1`, ...
fn display_name(i: usize) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    let suffix = i / 26;
    if suffix == 0 {
        letter.to_string()
    } else {
        format!("{letter}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_syntax::Span;

    #[test]
    fn generalize_and_instantiate() {
        // Eq t0 => t0 -> Bool, generalized over t0.
        let q = Qual::new(
            vec![Pred::new("Eq", Type::Var(TyVar(0)), Span::DUMMY)],
            Type::fun(Type::Var(TyVar(0)), Type::bool()),
        );
        let sch = Scheme::generalize(q, &BTreeSet::new());
        assert_eq!(sch.vars, vec![TyVar(0)]);

        let mut next = 100u32;
        let (preds, ty) = sch.instantiate(|| {
            next += 1;
            TyVar(next)
        });
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].ty, Type::Var(TyVar(101)));
        assert_eq!(ty, Type::fun(Type::Var(TyVar(101)), Type::bool()));
    }

    #[test]
    fn env_vars_not_generalized() {
        let q = Qual::unqualified(Type::fun(Type::Var(TyVar(0)), Type::Var(TyVar(1))));
        let mut env = BTreeSet::new();
        env.insert(TyVar(0));
        let sch = Scheme::generalize(q, &env);
        assert_eq!(sch.vars, vec![TyVar(1)]);
    }

    #[test]
    fn display_renames() {
        let q = Qual::unqualified(Type::fun(Type::Var(TyVar(7)), Type::Var(TyVar(7))));
        let sch = Scheme::generalize(q, &BTreeSet::new());
        assert_eq!(sch.to_string(), "a -> a");
    }
}
