//! Hash-consed type representation.
//!
//! Instance resolution memoization needs a cheap, canonical key for a
//! `(class, type)` goal. Comparing or hashing a structural [`Type`] is
//! O(size of the type) — too slow for a table consulted on every goal
//! of a deep instance tower. The [`Interner`] maps every distinct type
//! (and every distinct name) to a dense `u32` id, sharing identical
//! subtrees, so the memo key is two machine words and key comparison
//! is two integer compares.
//!
//! Interning is structural and append-only: ids are stable for the
//! lifetime of the interner, and interning the same type twice returns
//! the same id. Alongside each node the interner records whether the
//! node is *pure* — ground (no type variables) and free of rigid
//! skolem constants (`$`-prefixed constructors). Only pure goals are
//! safe to memoize across resolution calls: anything mentioning a
//! variable or a signature skolem can be satisfied differently under
//! different assumption sets.

use crate::ty::Type;
use std::collections::HashMap;

/// Id of an interned name (type-constructor or class name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// Id of an interned type node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// One hash-consed node. Children are ids, so structural sharing is
/// automatic: `List Int` inside `List (List Int)` is stored once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Var(u32),
    Con(NameId),
    App(TypeId, TypeId),
    Fun(TypeId, TypeId),
}

/// Counters describing the interner's traffic: how many type-node
/// interning requests were answered from the hash-cons table versus
/// allocated fresh. Always on — two integer adds per node is cheaper
/// than a branch — and surfaced through the metrics registry when
/// metrics collection is enabled (`tc-types` itself stays
/// dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Node requests answered by the table (structural sharing wins).
    pub hits: u64,
    /// Nodes interned fresh (table growth).
    pub fresh: u64,
}

/// The hash-consing table for types and names.
#[derive(Debug, Default)]
pub struct Interner {
    nodes: Vec<Node>,
    /// `pure[i]`: node `i` contains no type variables and no skolem
    /// (`$`-prefixed) constructors.
    pure: Vec<bool>,
    node_map: HashMap<Node, TypeId>,
    names: Vec<String>,
    name_map: HashMap<String, NameId>,
    stats: InternStats,
}

impl Interner {
    pub fn new() -> Self {
        Interner::default()
    }

    /// Number of distinct type nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a name (class or constructor), returning its dense id.
    pub fn intern_name(&mut self, name: &str) -> NameId {
        if let Some(id) = self.name_map.get(name) {
            return *id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.name_map.insert(name.to_string(), id);
        id
    }

    /// The string behind a name id.
    pub fn name(&self, id: NameId) -> Option<&str> {
        self.names.get(id.0 as usize).map(|s| s.as_str())
    }

    /// Hit/fresh counters for every node request so far.
    pub fn stats(&self) -> InternStats {
        self.stats
    }

    fn mk(&mut self, node: Node, pure: bool) -> TypeId {
        if let Some(id) = self.node_map.get(&node) {
            self.stats.hits = self.stats.hits.saturating_add(1);
            return *id;
        }
        self.stats.fresh = self.stats.fresh.saturating_add(1);
        let id = TypeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.pure.push(pure);
        self.node_map.insert(node, id);
        id
    }

    /// Intern a structural type. Iterative post-order traversal:
    /// recursion depth must not scale with type size (deep curried
    /// chains are routine in adversarial inputs).
    pub fn intern(&mut self, t: &Type) -> TypeId {
        enum Frame<'a> {
            Enter(&'a Type),
            Exit(&'a Type),
        }
        let mut work = vec![Frame::Enter(t)];
        let mut out: Vec<TypeId> = Vec::new();
        while let Some(f) = work.pop() {
            match f {
                Frame::Enter(t) => match t {
                    Type::Var(v) => {
                        let id = self.mk(Node::Var(v.0), false);
                        out.push(id);
                    }
                    Type::Con(n) => {
                        let pure = !n.starts_with('$');
                        let name = self.intern_name(n);
                        let id = self.mk(Node::Con(name), pure);
                        out.push(id);
                    }
                    Type::App(a, b) | Type::Fun(a, b) => {
                        work.push(Frame::Exit(t));
                        work.push(Frame::Enter(b));
                        work.push(Frame::Enter(a));
                    }
                },
                Frame::Exit(t) => {
                    // Children were pushed left-then-right, so they pop
                    // right-then-left.
                    let (Some(b), Some(a)) = (out.pop(), out.pop()) else {
                        // Unreachable by construction; keep total anyway.
                        continue;
                    };
                    let pure = self.is_pure(a) && self.is_pure(b);
                    let node = match t {
                        Type::App(..) => Node::App(a, b),
                        _ => Node::Fun(a, b),
                    };
                    let id = self.mk(node, pure);
                    out.push(id);
                }
            }
        }
        out.pop().unwrap_or_else(|| {
            // A non-empty traversal always leaves exactly one result;
            // fall back to a throwaway node rather than panicking.
            self.mk(Node::Var(u32::MAX), false)
        })
    }

    /// Is the node ground and skolem-free (safe to memoize on)?
    pub fn is_pure(&self, id: TypeId) -> bool {
        self.pure.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Rebuild the structural type behind an id (test / debug aid).
    /// Depth-recursive; interned types in practice are bounded by the
    /// resolver's budget, and callers are non-production paths.
    pub fn resolve(&self, id: TypeId) -> Option<Type> {
        let node = *self.nodes.get(id.0 as usize)?;
        match node {
            Node::Var(v) => Some(Type::Var(crate::ty::TyVar(v))),
            Node::Con(n) => Some(Type::Con(self.name(n)?.to_string())),
            Node::App(a, b) => Some(Type::App(
                Box::new(self.resolve(a)?),
                Box::new(self.resolve(b)?),
            )),
            Node::Fun(a, b) => Some(Type::Fun(
                Box::new(self.resolve(a)?),
                Box::new(self.resolve(b)?),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TyVar;

    #[test]
    fn interning_is_idempotent_and_shares_subtrees() {
        let mut i = Interner::new();
        let t = Type::list(Type::list(Type::int()));
        let a = i.intern(&t);
        let b = i.intern(&t);
        assert_eq!(a, b);
        // Nodes: List, Int, List Int, List (List Int) = 4 distinct.
        assert_eq!(i.len(), 4);
        // Interning the shared subtree allocates nothing new.
        let inner = i.intern(&Type::list(Type::int()));
        assert_eq!(i.len(), 4);
        assert_ne!(inner, a);
        // Stats: 4 fresh nodes. Hits: the repeated `List` constructor
        // during the first intern (1), every node of the full
        // re-intern (5), every node of the subtree re-intern (3).
        let s = i.stats();
        assert_eq!(s.fresh, 4, "{s:?}");
        assert_eq!(s.hits, 9, "{s:?}");
    }

    #[test]
    fn distinct_types_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern(&Type::fun(Type::int(), Type::bool()));
        let b = i.intern(&Type::fun(Type::bool(), Type::int()));
        let c = i.intern(&Type::list(Type::int()));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Fun and App with the same children are different nodes.
        let d = i.intern(&Type::App(Box::new(Type::int()), Box::new(Type::bool())));
        assert_ne!(a, d);
    }

    #[test]
    fn purity_tracks_vars_and_skolems() {
        let mut i = Interner::new();
        let ground = i.intern(&Type::list(Type::int()));
        assert!(i.is_pure(ground));
        let varry = i.intern(&Type::list(Type::Var(TyVar(0))));
        assert!(!i.is_pure(varry));
        let skolem = i.intern(&Type::list(Type::Con("$a".into())));
        assert!(!i.is_pure(skolem));
        let fun = i.intern(&Type::fun(Type::int(), Type::bool()));
        assert!(i.is_pure(fun));
    }

    #[test]
    fn names_intern_once() {
        let mut i = Interner::new();
        let a = i.intern_name("Eq");
        let b = i.intern_name("Eq");
        let c = i.intern_name("Ord");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.name(a), Some("Eq"));
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let t = Type::fun(Type::list(Type::Var(TyVar(3))), Type::bool());
        let id = i.intern(&t);
        assert_eq!(i.resolve(id), Some(t));
    }

    #[test]
    fn deep_type_interns_iteratively() {
        let mut t = Type::int();
        for _ in 0..100_000 {
            t = Type::fun(Type::int(), t);
        }
        let mut i = Interner::new();
        let id = i.intern(&t);
        assert!(i.is_pure(id));
        // Dropping the deep Box chain recurses in rustc's Drop glue.
        std::mem::forget(t);
    }
}
