//! Unification and one-way matching, with typed errors and an explicit
//! work budget.

use crate::subst::Subst;
use crate::ty::{TyVar, Type};
use std::fmt;
use tc_syntax::Span;

/// Why unification (or matching) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErrorKind {
    /// `expected` and `found` have incompatible shapes.
    Mismatch { expected: Type, found: Type },
    /// The occurs check fired: binding would create an infinite type.
    Occurs { var: TyVar, ty: Type },
    /// The unifier's work budget was exhausted — the types involved
    /// are pathologically large (e.g. exponentially self-similar).
    BudgetExhausted,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    pub kind: TypeErrorKind,
    /// Where the constraint arose; filled in by the caller when known.
    pub span: Span,
}

impl TypeError {
    pub fn at(mut self, span: Span) -> Self {
        if self.span.is_dummy() {
            self.span = span;
        }
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TypeErrorKind::Mismatch { expected, found } => {
                write!(f, "type mismatch: expected `{expected}`, found `{found}`")
            }
            TypeErrorKind::Occurs { var, ty } => write!(
                f,
                "cannot construct the infinite type `{var} ~ {ty}` (occurs check)"
            ),
            TypeErrorKind::BudgetExhausted => {
                f.write_str("types too large to unify within the work budget")
            }
        }
    }
}

/// Upper bound on unification work items for one `unify` call. Large
/// enough for any sane program; small enough that an adversarial
/// exponential blowup fails in microseconds.
pub const UNIFY_BUDGET: usize = 100_000;

/// Unify `a` and `b` under (and extending) `subst`.
///
/// Uses an explicit worklist so native stack depth is constant, and a
/// work budget so pathological inputs produce
/// [`TypeErrorKind::BudgetExhausted`] instead of an effective hang.
pub fn unify(subst: &mut Subst, a: &Type, b: &Type) -> Result<(), TypeError> {
    // Work items carry the substitution generation they were normalized
    // under; re-applying is skipped when no bind happened since, which
    // keeps unification of large already-ground types linear.
    let mut work: Vec<(Type, Type, u64)> = vec![(a.clone(), b.clone(), 0)];
    let mut budget = UNIFY_BUDGET;
    while let Some((x, y, gen)) = work.pop() {
        if budget == 0 {
            return Err(TypeError {
                kind: TypeErrorKind::BudgetExhausted,
                span: Span::DUMMY,
            });
        }
        budget -= 1;
        let cur_gen = subst.generation();
        let (x, y) = if gen == cur_gen {
            (x, y)
        } else {
            (subst.apply(&x), subst.apply(&y))
        };
        match (x, y) {
            (Type::Var(v), Type::Var(w)) if v == w => {}
            (Type::Var(v), t) | (t, Type::Var(v)) => {
                if t.contains_var(v) {
                    return Err(TypeError {
                        kind: TypeErrorKind::Occurs { var: v, ty: t },
                        span: Span::DUMMY,
                    });
                }
                subst.bind(v, t).map_err(|_| TypeError {
                    kind: TypeErrorKind::BudgetExhausted,
                    span: Span::DUMMY,
                })?;
            }
            (Type::Con(n), Type::Con(m)) if n == m => {}
            (Type::App(f1, a1), Type::App(f2, a2)) => {
                work.push((*a1, *a2, cur_gen));
                work.push((*f1, *f2, cur_gen));
            }
            (Type::Fun(p1, r1), Type::Fun(p2, r2)) => {
                work.push((*r1, *r2, cur_gen));
                work.push((*p1, *p2, cur_gen));
            }
            (x, y) => {
                return Err(TypeError {
                    kind: TypeErrorKind::Mismatch {
                        expected: x,
                        found: y,
                    },
                    span: Span::DUMMY,
                });
            }
        }
    }
    Ok(())
}

/// One-way matching: find `s` such that `s(pattern) == target`,
/// binding only variables of `pattern`. Used for instance lookup
/// (`Eq (List a)` against `Eq (List Int)`); the target's variables are
/// treated as rigid.
pub fn match_types(pattern: &Type, target: &Type) -> Result<Subst, TypeError> {
    let mut out = Subst::new();
    let mut work: Vec<(Type, Type)> = vec![(pattern.clone(), target.clone())];
    let mut budget = UNIFY_BUDGET;
    while let Some((p, t)) = work.pop() {
        if budget == 0 {
            return Err(TypeError {
                kind: TypeErrorKind::BudgetExhausted,
                span: Span::DUMMY,
            });
        }
        budget -= 1;
        match (p, t) {
            (Type::Var(v), t) => match out.lookup(v) {
                Some(bound) => {
                    if *bound != t {
                        return Err(TypeError {
                            kind: TypeErrorKind::Mismatch {
                                expected: bound.clone(),
                                found: t,
                            },
                            span: Span::DUMMY,
                        });
                    }
                }
                None => out.bind(v, t).map_err(|_| TypeError {
                    kind: TypeErrorKind::BudgetExhausted,
                    span: Span::DUMMY,
                })?,
            },
            (Type::Con(n), Type::Con(m)) if n == m => {}
            (Type::App(f1, a1), Type::App(f2, a2)) => {
                work.push((*a1, *a2));
                work.push((*f1, *f2));
            }
            (Type::Fun(p1, r1), Type::Fun(p2, r2)) => {
                work.push((*r1, *r2));
                work.push((*p1, *p2));
            }
            (p, t) => {
                return Err(TypeError {
                    kind: TypeErrorKind::Mismatch {
                        expected: p,
                        found: t,
                    },
                    span: Span::DUMMY,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_simple() {
        let mut s = Subst::new();
        unify(&mut s, &Type::Var(TyVar(0)), &Type::int()).unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::int());
    }

    #[test]
    fn unify_functions() {
        let mut s = Subst::new();
        let a = Type::fun(Type::Var(TyVar(0)), Type::bool());
        let b = Type::fun(Type::int(), Type::Var(TyVar(1)));
        unify(&mut s, &a, &b).unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::int());
        assert_eq!(s.apply(&Type::Var(TyVar(1))), Type::bool());
    }

    #[test]
    fn occurs_check() {
        let mut s = Subst::new();
        let t = Type::list(Type::Var(TyVar(0)));
        let err = unify(&mut s, &Type::Var(TyVar(0)), &t).unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Occurs { .. }));
    }

    #[test]
    fn mismatch() {
        let mut s = Subst::new();
        let err = unify(&mut s, &Type::int(), &Type::bool()).unwrap_err();
        assert!(matches!(err.kind, TypeErrorKind::Mismatch { .. }));
    }

    #[test]
    fn match_is_one_way() {
        // Pattern `List a` matches target `List Int` ...
        let p = Type::list(Type::Var(TyVar(0)));
        let t = Type::list(Type::int());
        let s = match_types(&p, &t).unwrap();
        assert_eq!(s.apply(&Type::Var(TyVar(0))), Type::int());
        // ... but target variables are rigid: `List Int` vs `List a` fails.
        assert!(match_types(&t, &p).is_err());
    }

    #[test]
    fn match_conflicting_binding_fails() {
        // a -> a vs Int -> Bool
        let p = Type::fun(Type::Var(TyVar(0)), Type::Var(TyVar(0)));
        let t = Type::fun(Type::int(), Type::bool());
        assert!(match_types(&p, &t).is_err());
    }

    #[test]
    fn deep_unify_no_stack_overflow() {
        let mut a = Type::Var(TyVar(0));
        let mut b = Type::Var(TyVar(1));
        for _ in 0..10_000 {
            a = Type::fun(Type::int(), a);
            b = Type::fun(Type::int(), b);
        }
        let mut s = Subst::new();
        unify(&mut s, &a, &b).unwrap();
        std::mem::forget(a);
        std::mem::forget(b);
    }

    #[test]
    fn exponential_blowup_hits_budget_or_occurs() {
        // t0 ~ (t1,t1), t1 ~ (t2,t2), ... produces doubling types;
        // either the occurs check or the budget must stop it quickly.
        let mut s = Subst::new();
        let pair = |a: Type, b: Type| Type::App(Box::new(a), Box::new(b));
        let mut r = Ok(());
        for i in 0..64u32 {
            let rhs = pair(Type::Var(TyVar(i + 1)), Type::Var(TyVar(i + 1)));
            r = unify(&mut s, &Type::Var(TyVar(i)), &rhs);
            if r.is_err() {
                break;
            }
        }
        // The chain itself is fine (linear), but now close the loop:
        if r.is_ok() {
            let back = unify(&mut s, &Type::Var(TyVar(64)), &Type::Var(TyVar(0)));
            assert!(back.is_err() || back.is_ok()); // must terminate either way
        }
    }
}
