//! Substitutions: finite maps from type variables to types.

use crate::ty::{TyVar, Type};
use std::collections::HashMap;

/// Binding failed because the substitution would exceed its node
/// budget. This happens only on adversarial inputs whose solved types
/// are exponentially large (e.g. `t0 ~ (t1,t1), t1 ~ (t2,t2), ...`);
/// callers surface it as a "types too large" diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstOverflow;

/// An idempotent substitution. The invariant is that no type in the
/// range mentions a variable in the domain (ranges are rewritten on
/// every [`Subst::bind`]), which makes [`Subst::apply`] a single pass.
///
/// Idempotent substitutions can grow exponentially on pathological
/// unification problems, so the total number of stored type nodes is
/// capped ([`Subst::MAX_NODES`]); a bind that would exceed the cap
/// fails with [`SubstOverflow`] and leaves the substitution unchanged.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    map: HashMap<TyVar, Type>,
    /// Total `Type::size()` over all range entries.
    nodes: usize,
    /// Bumped on every successful `bind`; lets callers skip re-applying
    /// the substitution to values normalized under an older generation.
    generation: u64,
}

impl Subst {
    /// Upper bound on total stored type nodes. Generous for real
    /// programs (a whole prelude's worth of types is a few thousand
    /// nodes) and small enough to stop exponential blowups in
    /// milliseconds.
    pub const MAX_NODES: usize = 500_000;

    pub fn new() -> Self {
        Subst::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn lookup(&self, v: TyVar) -> Option<&Type> {
        self.map.get(&v)
    }

    /// Bind `v := t`, first applying the current substitution to `t`
    /// and then rewriting existing range entries that mention `v`.
    /// Keeping the substitution idempotent on every bind makes `apply`
    /// a single non-chasing pass.
    pub fn bind(&mut self, v: TyVar, t: Type) -> Result<(), SubstOverflow> {
        let mut budget = Self::MAX_NODES.saturating_sub(self.nodes);
        let t = rewrite(&t, |w| self.map.get(&w), &mut budget).ok_or(SubstOverflow)?;

        // Rewrite existing entries so no range type mentions `v`.
        // Compute all updates first so a mid-way overflow leaves the
        // substitution untouched.
        let mut updates: Vec<(TyVar, Type)> = Vec::new();
        for (k, old) in self.map.iter() {
            if old.contains_var(v) {
                let new = rewrite(old, |w| if w == v { Some(&t) } else { None }, &mut budget)
                    .ok_or(SubstOverflow)?;
                updates.push((*k, new));
            }
        }
        for (k, new) in updates {
            let added = new.size();
            let removed = self.map.insert(k, new).map(|o| o.size()).unwrap_or(0);
            self.nodes = self.nodes.saturating_add(added).saturating_sub(removed);
        }
        let added = t.size();
        let removed = self.map.insert(v, t).map(|o| o.size()).unwrap_or(0);
        self.nodes = self.nodes.saturating_add(added).saturating_sub(removed);
        self.generation = self.generation.wrapping_add(1);
        Ok(())
    }

    /// Monotone counter of successful binds; see the field docs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Apply the substitution to a type. Iterative (explicit stack +
    /// rebuild), so deep types cannot overflow the native stack, and
    /// non-chasing thanks to the idempotency invariant.
    pub fn apply(&self, t: &Type) -> Type {
        if self.map.is_empty() {
            return t.clone();
        }
        let mut budget = usize::MAX;
        rewrite(t, |w| self.map.get(&w), &mut budget).unwrap_or_else(|| t.clone())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&TyVar, &Type)> {
        self.map.iter()
    }
}

/// Iteratively rebuild `t`, replacing each variable `v` by `lookup(v)`
/// when defined. Decrements `budget` per output node; returns `None`
/// if the budget runs out.
fn rewrite<'a>(
    t: &'a Type,
    lookup: impl Fn(TyVar) -> Option<&'a Type>,
    budget: &mut usize,
) -> Option<Type> {
    enum Frame<'b> {
        Visit(&'b Type),
        BuildApp,
        BuildFun,
    }
    let mut work = vec![Frame::Visit(t)];
    let mut out: Vec<Type> = Vec::new();
    while let Some(frame) = work.pop() {
        match frame {
            Frame::Visit(ty) => match ty {
                Type::Var(v) => {
                    let rep = lookup(*v).cloned().unwrap_or_else(|| ty.clone());
                    let sz = rep.size();
                    if *budget < sz {
                        return None;
                    }
                    *budget -= sz;
                    out.push(rep);
                }
                Type::Con(_) => {
                    if *budget == 0 {
                        return None;
                    }
                    *budget -= 1;
                    out.push(ty.clone());
                }
                Type::App(a, b) => {
                    if *budget == 0 {
                        return None;
                    }
                    *budget -= 1;
                    work.push(Frame::BuildApp);
                    work.push(Frame::Visit(b));
                    work.push(Frame::Visit(a));
                }
                Type::Fun(a, b) => {
                    if *budget == 0 {
                        return None;
                    }
                    *budget -= 1;
                    work.push(Frame::BuildFun);
                    work.push(Frame::Visit(b));
                    work.push(Frame::Visit(a));
                }
            },
            Frame::BuildApp | Frame::BuildFun => {
                // Children were pushed a-then-b, so b pops second.
                let b = out.pop();
                let a = out.pop();
                match (a, b) {
                    (Some(a), Some(b)) => {
                        let node = if matches!(frame, Frame::BuildApp) {
                            Type::App(Box::new(a), Box::new(b))
                        } else {
                            Type::Fun(Box::new(a), Box::new(b))
                        };
                        out.push(node);
                    }
                    // Unreachable by construction; degrade gracefully.
                    _ => out.push(Type::Con("<subst-error>".into())),
                }
            }
        }
    }
    out.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_idempotent() {
        let mut s = Subst::new();
        s.bind(TyVar(0), Type::fun(Type::Var(TyVar(1)), Type::int()))
            .unwrap();
        s.bind(TyVar(1), Type::bool()).unwrap();
        // t0 must now resolve to Bool -> Int in ONE apply pass.
        let t = s.apply(&Type::Var(TyVar(0)));
        assert_eq!(t, Type::fun(Type::bool(), Type::int()));
    }

    #[test]
    fn apply_deep_type() {
        let mut s = Subst::new();
        s.bind(TyVar(0), Type::int()).unwrap();
        let mut t = Type::Var(TyVar(0));
        for _ in 0..100_000 {
            t = Type::fun(Type::bool(), t);
        }
        let applied = s.apply(&t);
        assert!(applied.size() > 100_000);
        std::mem::forget(applied);
        std::mem::forget(t);
    }

    #[test]
    fn doubling_chain_overflows_cleanly() {
        // t_i := (t_{i+1}, t_{i+1}) — entry for t0 doubles on every
        // bind. Must fail with SubstOverflow long before OOM.
        let pair = |a: Type, b: Type| Type::App(Box::new(a), Box::new(b));
        let mut s = Subst::new();
        let mut overflowed = false;
        for i in 0..64u32 {
            let rhs = pair(Type::Var(TyVar(i + 1)), Type::Var(TyVar(i + 1)));
            if s.bind(TyVar(i), rhs).is_err() {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "doubling chain must hit the node cap");
    }
}
