//! Class predicates and qualified types.

use crate::subst::Subst;
use crate::ty::{TyVar, Type};
use std::collections::BTreeSet;
use std::fmt;
use tc_syntax::Span;

/// A single class constraint, e.g. `Eq a` or `Ord (List Int)`.
///
/// The `span` records where the constraint *arose* (the method use or
/// signature that introduced it) so that "no instance for ..." errors
/// can point at real source. Spans are ignored by equality/ordering:
/// two predicates are the same constraint regardless of origin.
#[derive(Debug, Clone)]
pub struct Pred {
    pub class: String,
    pub ty: Type,
    pub span: Span,
}

impl Pred {
    pub fn new(class: impl Into<String>, ty: Type, span: Span) -> Self {
        Pred {
            class: class.into(),
            ty,
            span,
        }
    }

    pub fn apply(&self, s: &Subst) -> Pred {
        Pred {
            class: self.class.clone(),
            ty: s.apply(&self.ty),
            span: self.span,
        }
    }

    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        self.ty.free_vars()
    }

    /// Structural identity ignoring spans — the notion of "same
    /// constraint" used by entailment caches and cycle detection.
    pub fn same_constraint(&self, other: &Pred) -> bool {
        self.class == other.class && self.ty == other.ty
    }

    /// A stable key for hash sets/maps keyed by constraint identity.
    pub fn key(&self) -> (String, Type) {
        (self.class.clone(), self.ty.clone())
    }

    /// Is the constrained type in head-normal form (headed by a type
    /// variable)? HNF predicates can be generalized; others must be
    /// discharged by instances.
    pub fn in_hnf(&self) -> bool {
        fn hnf(t: &Type) -> bool {
            match t {
                Type::Var(_) => true,
                Type::Con(_) => false,
                Type::App(f, _) => hnf(f),
                Type::Fun(_, _) => false,
            }
        }
        hnf(&self.ty)
    }
}

impl PartialEq for Pred {
    fn eq(&self, other: &Self) -> bool {
        self.same_constraint(other)
    }
}

impl Eq for Pred {}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ty {
            Type::Var(_) | Type::Con(_) => write!(f, "{} {}", self.class, self.ty),
            _ => write!(f, "{} ({})", self.class, self.ty),
        }
    }
}

/// A qualified thing: `preds => t`. Used for both qualified types
/// (`Qual<Type>`) and instance heads (`Qual<Pred>`).
#[derive(Debug, Clone, PartialEq)]
pub struct Qual<T> {
    pub preds: Vec<Pred>,
    pub head: T,
}

impl<T> Qual<T> {
    pub fn new(preds: Vec<Pred>, head: T) -> Self {
        Qual { preds, head }
    }

    pub fn unqualified(head: T) -> Self {
        Qual {
            preds: Vec::new(),
            head,
        }
    }
}

impl Qual<Type> {
    pub fn apply(&self, s: &Subst) -> Qual<Type> {
        Qual {
            preds: self.preds.iter().map(|p| p.apply(s)).collect(),
            head: s.apply(&self.head),
        }
    }

    pub fn free_vars(&self) -> BTreeSet<TyVar> {
        let mut fv = self.head.free_vars();
        for p in &self.preds {
            fv.extend(p.free_vars());
        }
        fv
    }
}

impl fmt::Display for Qual<Type> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.preds.len() {
            0 => write!(f, "{}", self.head),
            1 => write!(f, "{} => {}", self.preds[0], self.head),
            _ => {
                f.write_str("(")?;
                for (i, p) in self.preds.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") => {}", self.head)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_equality_ignores_span() {
        let a = Pred::new("Eq", Type::int(), Span::new(1, 2));
        let b = Pred::new("Eq", Type::int(), Span::new(9, 10));
        assert_eq!(a, b);
    }

    #[test]
    fn hnf() {
        assert!(Pred::new("Eq", Type::Var(TyVar(0)), Span::DUMMY).in_hnf());
        assert!(Pred::new(
            "Eq",
            Type::App(Box::new(Type::Var(TyVar(0))), Box::new(Type::int())),
            Span::DUMMY
        )
        .in_hnf());
        assert!(!Pred::new("Eq", Type::int(), Span::DUMMY).in_hnf());
        assert!(!Pred::new("Eq", Type::list(Type::Var(TyVar(0))), Span::DUMMY).in_hnf());
    }

    #[test]
    fn qual_display() {
        let q = Qual::new(
            vec![Pred::new("Eq", Type::Var(TyVar(0)), Span::DUMMY)],
            Type::fun(Type::Var(TyVar(0)), Type::bool()),
        );
        assert_eq!(q.to_string(), "Eq t0 => t0 -> Bool");
    }
}
