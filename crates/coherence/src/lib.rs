//! `tc-coherence`: coherence checking for the class system.
//!
//! Peterson & Jones' dictionary-passing translation is only coherent —
//! every well-typed program has exactly one meaning — when instance
//! selection is unambiguous. The pipeline keeps resolution
//! deterministic by construction (first-match over declaration order),
//! so overlapping instances never crash it; but a program whose
//! meaning depends on declaration order is still wrong in a way the
//! user should hear about. This crate is the static pass that says so,
//! running between class-env construction and elaboration:
//!
//! * **Overlap detection** ([`check_coherence`]): every pair of
//!   instance heads of the same class is put through full unification.
//!   A successful unifier is a constructive proof of incoherence, and
//!   its application to either head is a **counterexample type** — a
//!   concrete type both instances match — which the diagnostic prints
//!   (`L0008`). A user instance whose head unifies with a *prelude*
//!   instance is reported separately as an orphan-style duplicate
//!   (`L0009`), because first-match resolution silently shadows it.
//! * **Superclass cycles** (`L0010`): the class-env build breaks
//!   cycles structurally so traversals terminate and records the
//!   participants; this pass turns that record into diagnostics.
//! * **Law checking** ([`laws`]): for each `Eq`/`Ord` instance, law
//!   programs (reflexivity, symmetry, transitivity, totality,
//!   antisymmetry) are generated over enumerated ground samples,
//!   elaborated through the ordinary dictionary conversion, and run
//!   under a budgeted evaluator; a law that evaluates to `False` is a
//!   machine-checked counterexample (`L0011`).
//!
//! Rules report through the shared [`tc_syntax::Diagnostics`]
//! machinery with stable `L`-prefixed codes and per-run configurable
//! levels ([`CoherenceConfig`]). Unlike `tc-lint`, the structural
//! rules here are **deny by default**: an overlapping instance world
//! is incoherent, not merely suspicious.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::panic)]

pub mod laws;

use std::collections::HashMap;
use tc_classes::{ClassEnv, Instance};
use tc_syntax::{Diagnostic, Diagnostics, LintLevel, Severity, Span, Stage};
use tc_trace::{CounterId, MetricsRegistry};
use tc_types::{unify, Pred, Subst};

pub use laws::{check_laws, LawInput, LawOptions};
pub use tc_syntax::LintLevel as Level;

/// The coherence rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `L0008` — two instance heads of the same class unify; the
    /// diagnostic names both spans and prints the counterexample type
    /// (the unified head) that both instances match.
    OverlappingInstances,
    /// `L0009` — a user instance duplicates (unifies with) a prelude
    /// instance; first-match resolution silently shadows the user's.
    OrphanInstance,
    /// `L0010` — a class participates in a superclass cycle. The
    /// class-env build broke the cycle structurally so compilation
    /// could continue; the program is still ill-formed.
    SuperclassCycle,
    /// `L0011` — a generated class-law program (Eq reflexivity /
    /// symmetry / transitivity, Ord totality / antisymmetry)
    /// evaluated to `False` on a concrete sample.
    LawViolation,
}

impl Rule {
    pub const ALL: [Rule; 4] = [
        Rule::OverlappingInstances,
        Rule::OrphanInstance,
        Rule::SuperclassCycle,
        Rule::LawViolation,
    ];

    /// Stable machine-readable code, in the shared `L` namespace with
    /// `tc-lint` (codes `L0001`–`L0007` live there).
    pub fn code(self) -> &'static str {
        match self {
            Rule::OverlappingInstances => "L0008",
            Rule::OrphanInstance => "L0009",
            Rule::SuperclassCycle => "L0010",
            Rule::LawViolation => "L0011",
        }
    }

    /// Kebab-case rule name, used by CLI `--lint-level` overrides.
    pub fn name(self) -> &'static str {
        match self {
            Rule::OverlappingInstances => "overlapping-instances",
            Rule::OrphanInstance => "orphan-instance",
            Rule::SuperclassCycle => "superclass-cycle",
            Rule::LawViolation => "law-violation",
        }
    }

    /// One-line explanation, surfaced by the runner's `--explain`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::OverlappingInstances => {
                "two instances of the same class unify; the program's meaning \
                 depends on declaration order (a counterexample type both \
                 instances match is printed)"
            }
            Rule::OrphanInstance => {
                "a user instance duplicates a prelude instance; first-match \
                 resolution silently shadows the user's definition"
            }
            Rule::SuperclassCycle => {
                "a class reaches itself through its superclass constraints; \
                 the cycle was broken structurally to keep compiling"
            }
            Rule::LawViolation => {
                "an Eq/Ord instance failed a mechanically generated class law \
                 (reflexivity, symmetry, transitivity, totality, antisymmetry) \
                 on a concrete sample value"
            }
        }
    }

    /// The structural rules deny by default — an incoherent instance
    /// world or a cyclic class hierarchy is an error, matching the
    /// strictness this pipeline had when the class-env build rejected
    /// them outright. Law checking is opt-in machinery, so its
    /// findings default to warnings.
    pub fn default_level(self) -> LintLevel {
        match self {
            Rule::OverlappingInstances | Rule::OrphanInstance | Rule::SuperclassCycle => {
                LintLevel::Deny
            }
            Rule::LawViolation => LintLevel::Warn,
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// Per-rule level configuration. Unset rules fall back to
/// [`Rule::default_level`].
#[derive(Debug, Clone, Default)]
pub struct CoherenceConfig {
    overrides: HashMap<Rule, LintLevel>,
}

impl CoherenceConfig {
    pub fn new() -> Self {
        Self::default()
    }

    /// A configuration with every rule forced to `level`.
    pub fn all(level: LintLevel) -> Self {
        let mut cfg = Self::default();
        for r in Rule::ALL {
            cfg.set(r, level);
        }
        cfg
    }

    /// The effective level of `rule`.
    pub fn level(&self, rule: Rule) -> LintLevel {
        self.overrides
            .get(&rule)
            .copied()
            .unwrap_or_else(|| rule.default_level())
    }

    pub fn set(&mut self, rule: Rule, level: LintLevel) -> &mut Self {
        self.overrides.insert(rule, level);
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, rule: Rule, level: LintLevel) -> Self {
        self.set(rule, level);
        self
    }

    /// Apply a CLI-style `rule-name=level` override. Returns `false`
    /// (and changes nothing) when the rule name or level is unknown.
    pub fn set_by_name(&mut self, rule: &str, level: &str) -> bool {
        match (Rule::from_name(rule), LintLevel::parse(level)) {
            (Some(r), Some(l)) => {
                self.set(r, l);
                true
            }
            _ => false,
        }
    }
}

/// Everything the structural coherence pass looks at.
pub struct CoherenceInput<'a> {
    /// Validated class/instance environment.
    pub cenv: &'a ClassEnv,
    /// Byte offset where user code begins in the compiled buffer (the
    /// prelude length, or `0` when no prelude was spliced). Instances
    /// declared before this offset are prelude instances: a pair of
    /// overlapping prelude instances is suppressed (the user cannot
    /// edit them), and a user/prelude overlap downgrades from `L0008`
    /// to the orphan-duplicate rule `L0009`.
    pub user_start: usize,
}

/// Run the structural coherence checks — pairwise instance-head
/// unification per class and superclass-cycle reporting — and collect
/// the findings. Law checking is separate ([`laws::check_laws`])
/// because it needs the elaborator and evaluator.
pub fn check_coherence(
    input: &CoherenceInput<'_>,
    config: &CoherenceConfig,
    metrics: &mut MetricsRegistry,
) -> Diagnostics {
    let mut em = Emitter {
        config,
        user_start: input.user_start,
        diags: Diagnostics::new(),
    };
    check_overlaps(input, &mut em, metrics);
    check_cycles(input, &mut em);
    em.diags
}

/// Is this instance part of the spliced prelude (and therefore not
/// editable by the user)?
fn in_prelude(span: Span, user_start: usize) -> bool {
    span != Span::DUMMY && (span.end as usize) <= user_start
}

/// Pairwise overlap detection. Instance-head type variables are
/// allocated from the run's shared `VarGen` at build time, so heads of
/// distinct instances never share a variable and plain unification is
/// a sound overlap test: a unifier exists iff some ground type matches
/// both heads, and applying it to either head *is* such a type (the
/// most general counterexample).
fn check_overlaps(input: &CoherenceInput<'_>, em: &mut Emitter<'_>, metrics: &mut MetricsRegistry) {
    if !em.enabled(Rule::OverlappingInstances) && !em.enabled(Rule::OrphanInstance) {
        return;
    }
    for class in input.cenv.class_names() {
        let insts = input.cenv.instances_of(class);
        metrics.add(CounterId::CoherenceInstancesChecked, insts.len() as u64);
        for (i, a) in insts.iter().enumerate() {
            for b in &insts[i + 1..] {
                metrics.incr(CounterId::CoherencePairsUnified);
                let mut s = Subst::new();
                if unify(&mut s, &a.head.ty, &b.head.ty).is_err() {
                    continue;
                }
                let counterexample = s.apply(&a.head.ty);
                report_overlap(em, class, a, b, &counterexample, input.user_start);
            }
        }
    }
}

fn report_overlap(
    em: &mut Emitter<'_>,
    class: &str,
    a: &Instance,
    b: &Instance,
    counterexample: &tc_types::Type,
    user_start: usize,
) {
    let a_pre = in_prelude(a.span, user_start);
    let b_pre = in_prelude(b.span, user_start);
    if a_pre && b_pre {
        // Both instances live in the prelude; nothing the user wrote
        // is at fault and nothing they can edit would fix it.
        return;
    }
    if a_pre != b_pre {
        // Exactly one side is the prelude's: the user duplicated a
        // stock instance. Instances register in declaration order and
        // resolution is first-match, so the prelude's dictionary wins
        // and the user's definition is silently dead.
        let (user, prelude) = if a_pre { (b, a) } else { (a, b) };
        em.report_with(
            Rule::OrphanInstance,
            user.span,
            format!(
                "instance `{}` duplicates a prelude instance of class `{class}`: \
                 both match the type `{counterexample}`",
                user.head
            ),
            vec![
                (
                    Some(prelude.span),
                    "the prelude instance is declared here".to_string(),
                ),
                (
                    None,
                    "resolution is first-match, so the prelude dictionary is \
                     used and this instance is never selected"
                        .to_string(),
                ),
            ],
        );
        return;
    }
    // Both user instances: a genuine overlap. Blame the later
    // declaration and point at the earlier one.
    em.report_with(
        Rule::OverlappingInstances,
        b.span,
        format!(
            "overlapping instances for class `{class}`: `{}` and `{}` both \
             match the counterexample type `{counterexample}`",
            a.head, b.head
        ),
        vec![
            (
                Some(a.span),
                "the first overlapping instance is declared here".to_string(),
            ),
            (
                None,
                format!(
                    "any goal `{}` resolves to whichever instance was declared \
                     first; the program's meaning depends on declaration order",
                    Pred::new(class, counterexample.clone(), Span::DUMMY)
                ),
            ),
        ],
    );
}

/// Report the superclass cycles the class-env build recorded (and
/// broke structurally so traversals terminate).
fn check_cycles(input: &CoherenceInput<'_>, em: &mut Emitter<'_>) {
    if !em.enabled(Rule::SuperclassCycle) {
        return;
    }
    for name in &input.cenv.cyclic_classes {
        let span = input.cenv.class(name).map_or(Span::DUMMY, |ci| ci.span);
        em.report_with(
            Rule::SuperclassCycle,
            span,
            format!("class `{name}` participates in a superclass cycle"),
            vec![(
                None,
                "the cycle was broken (its superclass constraints were \
                 dropped) so compilation could continue; dictionaries for \
                 these classes omit their superclass slots"
                    .to_string(),
            )],
        );
    }
}

/// Shared reporting surface: maps a rule's configured level onto a
/// severity, suppresses findings whose primary span is inside the
/// prelude, and tags every finding with the rule name.
pub(crate) struct Emitter<'a> {
    pub(crate) config: &'a CoherenceConfig,
    pub(crate) user_start: usize,
    pub(crate) diags: Diagnostics,
}

impl Emitter<'_> {
    /// Is the rule worth computing at all?
    pub(crate) fn enabled(&self, rule: Rule) -> bool {
        self.config.level(rule) != LintLevel::Allow
    }

    pub(crate) fn report_with(
        &mut self,
        rule: Rule,
        span: Span,
        message: String,
        notes: Vec<(Option<Span>, String)>,
    ) {
        let Some(severity) = self.config.level(rule).severity() else {
            return;
        };
        // A known span entirely inside the prelude blames code the
        // user cannot edit; drop the finding.
        if span != Span::DUMMY && (span.end as usize) <= self.user_start {
            return;
        }
        let mut d = match severity {
            Severity::Error => Diagnostic::error(Stage::Coherence, rule.code(), message, span),
            Severity::Warning => Diagnostic::warning(Stage::Coherence, rule.code(), message, span),
        };
        for (nspan, note) in notes {
            d = d.with_note(nspan, note);
        }
        d = d.with_note(None, format!("coherence rule `{}`", rule.name()));
        self.diags.push(d);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use tc_syntax::Program;
    use tc_types::VarGen;

    pub(crate) struct Built {
        pub program: Program,
        pub cenv: ClassEnv,
        pub gen: VarGen,
    }

    /// Lex, parse, and build the class env. Panics are fine (tests).
    pub(crate) fn build(src: &str) -> Built {
        let (toks, _) = tc_syntax::lex(src);
        let (program, _) = tc_syntax::parse_program(&toks, Default::default());
        let mut gen = VarGen::new();
        let (cenv, _) = tc_classes::build_class_env(&program, &mut gen);
        Built { program, cenv, gen }
    }

    /// Structural check of `src` at the given levels with no prelude.
    pub(crate) fn check_with(src: &str, cfg: &CoherenceConfig) -> Vec<Diagnostic> {
        let b = build(src);
        let mut metrics = MetricsRegistry::off();
        check_coherence(
            &CoherenceInput {
                cenv: &b.cenv,
                user_start: 0,
            },
            cfg,
            &mut metrics,
        )
        .into_vec()
    }

    pub(crate) fn check(src: &str) -> Vec<Diagnostic> {
        check_with(src, &CoherenceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build, check, check_with};

    const EQ: &str = "class Eq a where { eq :: a -> a -> Bool; };\n";

    #[test]
    fn rule_names_and_codes_are_stable_and_unique() {
        let mut codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Rule::ALL.len());
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
            assert!(r.code().starts_with('L'));
            assert!(!r.description().is_empty());
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
        // Structural incoherence denies by default; laws warn.
        assert_eq!(Rule::OverlappingInstances.default_level(), LintLevel::Deny);
        assert_eq!(Rule::OrphanInstance.default_level(), LintLevel::Deny);
        assert_eq!(Rule::SuperclassCycle.default_level(), LintLevel::Deny);
        assert_eq!(Rule::LawViolation.default_level(), LintLevel::Warn);
    }

    #[test]
    fn config_levels_and_overrides() {
        let mut cfg = CoherenceConfig::new();
        assert_eq!(cfg.level(Rule::OverlappingInstances), LintLevel::Deny);
        cfg.set(Rule::OverlappingInstances, LintLevel::Warn);
        assert_eq!(cfg.level(Rule::OverlappingInstances), LintLevel::Warn);
        assert!(cfg.set_by_name("law-violation", "deny"));
        assert_eq!(cfg.level(Rule::LawViolation), LintLevel::Deny);
        assert!(!cfg.set_by_name("nope", "warn"));
        assert!(!cfg.set_by_name("orphan-instance", "nope"));
        let allow = CoherenceConfig::all(LintLevel::Allow);
        for r in Rule::ALL {
            assert_eq!(allow.level(r), LintLevel::Allow);
        }
    }

    #[test]
    fn identical_heads_overlap_with_counterexample() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};"
        );
        let d = check(&src);
        let overlap = d.iter().find(|d| d.code == "L0008").expect("L0008");
        assert!(
            overlap.message.contains("counterexample type `Int`"),
            "{}",
            overlap.message
        );
        assert_eq!(overlap.severity, Severity::Error);
        // Both spans appear: primary on the second, a note on the first.
        assert!(overlap.notes.iter().any(|(s, _)| s.is_some()));
    }

    #[test]
    fn generic_and_specific_heads_overlap_at_the_instantiation() {
        let src = format!(
            "{EQ}instance Eq a => Eq (List a) where {{ eq = \\x y -> True; }};\n\
             instance Eq (List Int) where {{ eq = \\x y -> True; }};"
        );
        let d = check(&src);
        let overlap = d.iter().find(|d| d.code == "L0008").expect("L0008");
        // mgu of `List a` and `List Int` is `List Int`.
        assert!(
            overlap.message.contains("`List Int`"),
            "{}",
            overlap.message
        );
    }

    #[test]
    fn disjoint_heads_do_not_overlap() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Bool where {{ eq = primEqBool; }};\n\
             instance Eq a => Eq (List a) where {{ eq = \\x y -> True; }};"
        );
        assert!(check(&src).is_empty());
    }

    #[test]
    fn prelude_duplicate_is_an_orphan_not_an_overlap() {
        // Simulate a prelude by marking everything before the second
        // instance as non-user code.
        let prelude = format!("{EQ}instance Eq Int where {{ eq = primEqInt; }};\n");
        let src = format!("{prelude}instance Eq Int where {{ eq = \\x y -> True; }};");
        let b = build(&src);
        let mut metrics = MetricsRegistry::off();
        let d = check_coherence(
            &CoherenceInput {
                cenv: &b.cenv,
                user_start: prelude.len(),
            },
            &CoherenceConfig::default(),
            &mut metrics,
        )
        .into_vec();
        assert!(d.iter().any(|d| d.code == "L0009"), "{d:?}");
        assert!(d.iter().all(|d| d.code != "L0008"), "{d:?}");
    }

    #[test]
    fn superclass_cycle_reported() {
        let src = "class B a => A a where { fa :: a -> a; };\n\
                   class A a => B a where { fb :: a -> a; };";
        let d = check(src);
        let cycles: Vec<_> = d.iter().filter(|d| d.code == "L0010").collect();
        assert_eq!(cycles.len(), 2, "{d:?}");
        assert!(cycles.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn allow_silences_and_warn_downgrades() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};"
        );
        let silent = check_with(&src, &CoherenceConfig::all(LintLevel::Allow));
        assert!(silent.is_empty());
        let warned = check_with(
            &src,
            &CoherenceConfig::default().with(Rule::OverlappingInstances, LintLevel::Warn),
        );
        assert!(warned
            .iter()
            .any(|d| d.code == "L0008" && d.severity == Severity::Warning));
    }

    #[test]
    fn metrics_count_instances_and_pairs() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Bool where {{ eq = primEqBool; }};\n\
             instance Eq a => Eq (List a) where {{ eq = \\x y -> True; }};"
        );
        let b = build(&src);
        let mut metrics = MetricsRegistry::new();
        check_coherence(
            &CoherenceInput {
                cenv: &b.cenv,
                user_start: 0,
            },
            &CoherenceConfig::default(),
            &mut metrics,
        );
        assert_eq!(metrics.counter(CounterId::CoherenceInstancesChecked), 3);
        // 3 instances of one class -> C(3, 2) = 3 pairs.
        assert_eq!(metrics.counter(CounterId::CoherencePairsUnified), 3);
    }

    #[test]
    fn findings_name_their_rule_and_stage() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};"
        );
        let d = check(&src);
        let overlap = d.iter().find(|d| d.code == "L0008").expect("fires");
        assert!(overlap
            .notes
            .iter()
            .any(|(_, n)| n.contains("overlapping-instances")));
        assert_eq!(overlap.stage, Stage::Coherence);
    }
}
