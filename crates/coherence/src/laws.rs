//! Evaluator-backed class-law checking.
//!
//! Coherence says instance selection is unambiguous; it says nothing
//! about whether the selected dictionary *behaves*. An `Eq` instance
//! whose `eq` is not symmetric type-checks fine and silently breaks
//! every abstraction built on it (`member`, dedup, ordering). This
//! module checks the algebraic laws mechanically: for each `Eq`/`Ord`
//! instance in scope it
//!
//! 1. **grounds** the instance head (free type variables instantiated
//!    at `Int`, so `Eq (List a)` is checked at `List Int`),
//! 2. **enumerates** small sample values of that type (`0`/`1`/`2`,
//!    `True`/`False`, lists up to length 2),
//! 3. **generates** one surface binding per law instance —
//!    reflexivity `eq x x`, symmetry `eq x y ==> eq y x`,
//!    transitivity over sample triples, `Ord` totality and
//!    antisymmetry — each shaped so it evaluates to `True` when the
//!    law holds and `False` on a counterexample (implications encoded
//!    as `if p then q else True`),
//! 4. **elaborates** the extended program through the ordinary
//!    dictionary conversion — laws exercise the very dictionaries the
//!    program would run with, reusing the session's warm
//!    [`ResolveCache`] so resolution is O(1) per goal — and
//! 5. **runs** each law under a small evaluation budget, reporting
//!    every `False` as `L0011` with the failing sample.
//!
//! Law bindings are named `$law0`, `$law1`, …; `$` cannot appear in
//! surface identifiers, so the names can never collide with user
//! code. A law whose elaboration or evaluation fails (missing
//! instance, budget exhausted, cancelled) is skipped, not reported —
//! the harness only claims violations it actually witnessed.

use crate::{CoherenceConfig, Emitter, Rule};
use tc_classes::{ClassEnv, DataEnv, Instance, ReduceBudget, ResolveCache};
use tc_core::ElabOptions;
use tc_eval::{Budget, EvalOptions};
use tc_syntax::{Binding, Diagnostics, Expr, Program, Span};
use tc_trace::{CancelToken, CounterId, MetricsRegistry};
use tc_types::{Pred, Type, VarGen};

/// Everything one law-checking run looks at.
pub struct LawInput<'a> {
    /// Surface AST of the whole compiled buffer (prelude + user code);
    /// law bindings are appended to a clone of it.
    pub program: &'a Program,
    /// Validated class/instance environment.
    pub cenv: &'a ClassEnv,
    /// Byte offset where user code begins; violations blamed on
    /// prelude instances are suppressed.
    pub user_start: usize,
}

/// Resource limits for one law-checking run.
#[derive(Debug, Clone)]
pub struct LawOptions {
    /// Evaluation budget per law program. Laws are tiny (a handful of
    /// applications over enumerated samples), so the default is the
    /// evaluator's small budget, not the full one.
    pub eval_budget: Budget,
    /// Resolution budget for elaborating the law bindings.
    pub reduce: ReduceBudget,
    /// Cooperative cancellation, polled between laws and inside both
    /// elaboration and evaluation — a serve deadline stops the
    /// harness mid-run.
    pub cancel: Option<CancelToken>,
    /// Resolve-cache capacity cap, threaded through so a degraded
    /// serve session's shrunken cache stays shrunken.
    pub cache_capacity: Option<usize>,
}

impl Default for LawOptions {
    fn default() -> Self {
        LawOptions {
            eval_budget: Budget::small(),
            reduce: ReduceBudget::default(),
            cancel: None,
            cache_capacity: None,
        }
    }
}

/// One generated law program awaiting evaluation.
struct LawCase {
    /// Name of the `$lawN` binding holding the law expression.
    entry: String,
    /// Law name (`reflexivity`, `symmetry`, …).
    law: &'static str,
    /// Class whose law this is (`Eq` / `Ord`).
    class: &'static str,
    /// Rendered law program, e.g. `if eq 0 1 then eq 1 0 else True`.
    text: String,
    /// Rendered sample assignment, e.g. `x = 0, y = 1`.
    sample: String,
    /// Rendered instance head (`Eq (List Int)`).
    head: String,
    /// Span of the instance declaration under test.
    span: Span,
}

/// A sample value of some ground type: the expression plus its
/// rendering for diagnostics.
#[derive(Clone)]
struct Sample {
    expr: Expr,
    text: String,
}

impl Sample {
    /// The rendering, parenthesized when it would not parse as an
    /// application argument.
    fn atom(&self) -> String {
        if self.text.contains(' ') {
            format!("({})", self.text)
        } else {
            self.text.clone()
        }
    }
}

/// Generate, elaborate, and evaluate the class-law programs for every
/// `Eq`/`Ord` instance in `input.cenv`, reporting violations as
/// `L0011`. `seed` is the resolve cache handed back by the session's
/// main elaboration ([`tc_core::Elaboration::cache`]): its tabled
/// derivations answer the law programs' goals in O(1). When the
/// session ran without memoization the cache arrives disabled and is
/// explicitly re-enabled — the harness always tables, since every law
/// of one instance resolves the same dictionary.
pub fn check_laws(
    input: &LawInput<'_>,
    config: &CoherenceConfig,
    opts: &LawOptions,
    seed: Option<ResolveCache>,
    gen: &mut VarGen,
    metrics: &mut MetricsRegistry,
) -> Diagnostics {
    let mut em = Emitter {
        config,
        user_start: input.user_start,
        diags: Diagnostics::new(),
    };
    if !em.enabled(Rule::LawViolation) {
        return em.diags;
    }

    let (bindings, cases) = generate_cases(input);
    if cases.is_empty() {
        return em.diags;
    }

    let mut prog = input.program.clone();
    prog.bindings.extend(bindings);

    let mut cache = seed.unwrap_or_default();
    cache.enabled = true;
    let eopts = ElabOptions {
        budget: opts.reduce,
        cancel: opts.cancel.clone(),
        cache_capacity: opts.cache_capacity,
        ..ElabOptions::default()
    };
    // Law-specific elaboration diagnostics are dropped: a law that
    // fails to elaborate (e.g. a missing superclass instance, already
    // reported by the main pipeline) leaves a `Fail` node whose
    // evaluation errors, and errored laws are skipped below.
    let (elab, _) = tc_core::elaborate_with_cache(&prog, input.cenv, gen, eopts, cache);

    let run_opts = EvalOptions {
        budget: opts.eval_budget,
        profile: false,
        cancel: opts.cancel.clone(),
        ..EvalOptions::default()
    };
    // Lower the elaborated program once; each case still evaluates in
    // its own hermetic evaluator (fresh budget, cache, arena).
    let lowered = tc_eval::LoweredProgram::new(&elab.core);
    for case in &cases {
        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            break;
        }
        let run = tc_eval::run_lowered_with(&lowered, &case.entry, &run_opts);
        metrics.incr(CounterId::CoherenceLawsRun);
        if run.result.as_deref() == Ok("False") {
            metrics.incr(CounterId::CoherenceLawsFailed);
            em.report_with(
                Rule::LawViolation,
                case.span,
                format!(
                    "instance `{}` violates the {} law of class `{}`: \
                     `{}` evaluated to `False`",
                    case.head, case.law, case.class, case.text
                ),
                vec![(None, format!("failing sample: {}", case.sample))],
            );
        }
    }
    em.diags
}

/// Build the law bindings and their descriptions for every checkable
/// instance.
fn generate_cases(input: &LawInput<'_>) -> (Vec<Binding>, Vec<LawCase>) {
    let mut bindings = Vec::new();
    let mut cases = Vec::new();
    let mut gen = CaseGen {
        next: 0,
        bindings: &mut bindings,
        cases: &mut cases,
    };
    let has_eq = method_of(input.cenv, "Eq", "eq");
    let has_lte = method_of(input.cenv, "Ord", "lte");

    if has_eq {
        for inst in checkable_instances(input, "Eq") {
            let (head, span, samples) = (inst.0, inst.1, inst.2);
            for x in &samples {
                gen.push(
                    "reflexivity",
                    "Eq",
                    app2("eq", x, x),
                    format!("eq {} {}", x.atom(), x.atom()),
                    format!("x = {}", x.text),
                    &head,
                    span,
                );
            }
            for (i, x) in samples.iter().enumerate() {
                for (j, y) in samples.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    gen.push(
                        "symmetry",
                        "Eq",
                        implies(app2("eq", x, y), app2("eq", y, x)),
                        format!(
                            "if eq {} {} then eq {} {} else True",
                            x.atom(),
                            y.atom(),
                            y.atom(),
                            x.atom()
                        ),
                        format!("x = {}, y = {}", x.text, y.text),
                        &head,
                        span,
                    );
                }
            }
            for x in &samples {
                for y in &samples {
                    for z in &samples {
                        gen.push(
                            "transitivity",
                            "Eq",
                            implies(
                                app2("eq", x, y),
                                implies(app2("eq", y, z), app2("eq", x, z)),
                            ),
                            format!(
                                "eq {} {} and eq {} {} imply eq {} {}",
                                x.atom(),
                                y.atom(),
                                y.atom(),
                                z.atom(),
                                x.atom(),
                                z.atom()
                            ),
                            format!("x = {}, y = {}, z = {}", x.text, y.text, z.text),
                            &head,
                            span,
                        );
                    }
                }
            }
        }
    }

    if has_lte {
        for inst in checkable_instances(input, "Ord") {
            let (head, span, samples) = (inst.0, inst.1, inst.2);
            for x in &samples {
                for y in &samples {
                    gen.push(
                        "totality",
                        "Ord",
                        Expr::If(
                            Box::new(app2("lte", x, y)),
                            Box::new(con("True")),
                            Box::new(app2("lte", y, x)),
                            Span::DUMMY,
                        ),
                        format!(
                            "lte {} {} or lte {} {}",
                            x.atom(),
                            y.atom(),
                            y.atom(),
                            x.atom()
                        ),
                        format!("x = {}, y = {}", x.text, y.text),
                        &head,
                        span,
                    );
                    if has_eq {
                        gen.push(
                            "antisymmetry",
                            "Ord",
                            implies(
                                app2("lte", x, y),
                                implies(app2("lte", y, x), app2("eq", x, y)),
                            ),
                            format!(
                                "lte {} {} and lte {} {} imply eq {} {}",
                                x.atom(),
                                y.atom(),
                                y.atom(),
                                x.atom(),
                                x.atom(),
                                y.atom()
                            ),
                            format!("x = {}, y = {}", x.text, y.text),
                            &head,
                            span,
                        );
                    }
                }
            }
        }
    }
    (bindings, cases)
}

struct CaseGen<'a> {
    next: usize,
    bindings: &'a mut Vec<Binding>,
    cases: &'a mut Vec<LawCase>,
}

impl CaseGen<'_> {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        law: &'static str,
        class: &'static str,
        expr: Expr,
        text: String,
        sample: String,
        head: &str,
        span: Span,
    ) {
        let entry = format!("$law{}", self.next);
        self.next += 1;
        self.bindings.push(Binding {
            name: entry.clone(),
            expr,
            span: Span::DUMMY,
        });
        self.cases.push(LawCase {
            entry,
            law,
            class,
            text,
            sample,
            head: head.to_string(),
            span,
        });
    }
}

/// Does `class` exist and own the method `method`? Guards against a
/// user program redefining `Eq` with a different shape.
fn method_of(cenv: &ClassEnv, class: &str, method: &str) -> bool {
    cenv.method(method).is_some_and(|(ci, _)| ci.name == class)
}

/// The instances of `class` worth law-checking: those whose grounded
/// head has enumerable samples AND which first-match resolution would
/// actually select at that type. A shadowed duplicate (already
/// reported as `L0008`/`L0009`) is skipped — its dictionary is never
/// the one a method call uses, so a law run would silently test the
/// *other* instance and misattribute the result.
fn checkable_instances(input: &LawInput<'_>, class: &str) -> Vec<(String, Span, Vec<Sample>)> {
    let mut out = Vec::new();
    for inst in input.cenv.instances_of(class) {
        // A violation on a prelude instance would be suppressed at
        // report time anyway (its span blames code the user can't
        // edit), so don't spend elaboration and evaluation on it.
        if inst.span != Span::DUMMY && (inst.span.end as usize) <= input.user_start {
            continue;
        }
        let ty = ground(&inst.head.ty);
        let samples = samples_for(&ty, 0, &input.cenv.datas);
        if samples.is_empty() {
            continue;
        }
        let goal = Pred::new(inst.head.class.clone(), ty.clone(), Span::DUMMY);
        let selected = input
            .cenv
            .matching_instance(&goal)
            .is_some_and(|(chosen, _)| chosen.id == inst.id);
        if !selected {
            continue;
        }
        out.push((render_head(inst, &ty), inst.span, samples));
    }
    out
}

/// `Eq (List Int)` — the instance head at its grounded type.
fn render_head(inst: &Instance, ground_ty: &Type) -> String {
    Pred::new(inst.head.class.clone(), ground_ty.clone(), Span::DUMMY).to_string()
}

/// Instantiate every type variable at `Int`, the sample-richest ground
/// type: `Eq (List a)` is checked at `List Int`.
fn ground(ty: &Type) -> Type {
    match ty {
        Type::Var(_) => Type::int(),
        Type::Con(c) => Type::Con(c.clone()),
        Type::App(a, b) => Type::App(Box::new(ground(a)), Box::new(ground(b))),
        Type::Fun(a, b) => Type::Fun(Box::new(ground(a)), Box::new(ground(b))),
    }
}

/// How deep sample construction may nest data constructors. Depth 2
/// is enough to distinguish `S Z` from `S (S Z)` while keeping the
/// law count per instance small (at most 3 samples per type).
const SAMPLE_DEPTH_LIMIT: usize = 2;

/// Enumerate small sample values of a ground type. Types we cannot
/// enumerate (functions, unknown constructors) yield no samples and
/// the instance is skipped. Lists recurse one level (element samples)
/// and build values with the builtin `nil`/`cons`; user-defined data
/// types build depth-bounded constructor applications from the
/// [`DataEnv`].
fn samples_for(ty: &Type, depth: usize, datas: &DataEnv) -> Vec<Sample> {
    match ty {
        Type::Con(c) if c == "Int" => [0i64, 1, 2]
            .iter()
            .map(|&n| Sample {
                expr: Expr::IntLit(n, Span::DUMMY),
                text: n.to_string(),
            })
            .collect(),
        Type::Con(c) if c == "Bool" => ["True", "False"]
            .iter()
            .map(|&n| Sample {
                expr: con(n),
                text: n.to_string(),
            })
            .collect(),
        Type::App(f, elem) if **f == Type::Con("List".into()) && depth == 0 => {
            let elems = samples_for(elem, depth + 1, datas);
            if elems.is_empty() {
                return Vec::new();
            }
            let e0 = &elems[0];
            let e1 = elems.get(1).unwrap_or(e0);
            let nil = Sample {
                expr: var("nil"),
                text: "nil".to_string(),
            };
            let one = Sample {
                expr: cons_expr(e0, &nil),
                text: format!("cons {} nil", e0.atom()),
            };
            let two = Sample {
                expr: cons_expr(e1, &one),
                text: format!("cons {} ({})", e1.atom(), one.text),
            };
            vec![nil, one, two]
        }
        _ => data_samples(ty, depth, datas),
    }
}

/// `Pair Int Bool` → `("Pair", [Int, Bool])` — the constructor spine
/// of an applied type, or `None` for functions and variables.
fn type_spine(ty: &Type) -> Option<(&str, Vec<&Type>)> {
    let mut args = Vec::new();
    let mut t = ty;
    loop {
        match t {
            Type::Con(c) => {
                args.reverse();
                return Some((c, args));
            }
            Type::App(f, a) => {
                args.push(a.as_ref());
                t = f;
            }
            _ => return None,
        }
    }
}

/// Depth-bounded sample values of a user-defined data type: up to 3
/// constructor applications, walking constructors in declaration (tag)
/// order and instantiating field types at the type's ground arguments.
/// Recursive fields re-enter [`samples_for`] one level deeper, so
/// `data Nat = Z | S Nat` yields `Z`, `S Z`, `S (S Z)` and always
/// terminates. A constructor whose fields cannot be sampled (function
/// field, recursion past the depth limit) is skipped.
fn data_samples(ty: &Type, depth: usize, datas: &DataEnv) -> Vec<Sample> {
    if depth > SAMPLE_DEPTH_LIMIT {
        return Vec::new();
    }
    let Some((head, args)) = type_spine(ty) else {
        return Vec::new();
    };
    let Some(info) = datas.data(head) else {
        return Vec::new();
    };
    if info.builtin || info.arity != args.len() {
        return Vec::new();
    }
    let mut out: Vec<Sample> = Vec::new();
    for cname in &info.constructors {
        if out.len() >= 3 {
            break;
        }
        let Some(ci) = datas.con(cname) else {
            continue;
        };
        if ci.arity == 0 {
            out.push(Sample {
                expr: con(cname),
                text: cname.clone(),
            });
            continue;
        }
        // Instantiate the constructor's field types at this type's
        // ground arguments.
        let mut subst = tc_types::Subst::new();
        for (v, a) in ci.scheme.vars.iter().zip(&args) {
            if subst.bind(*v, (*a).clone()).is_err() {
                return Vec::new();
            }
        }
        let mut field_tys = Vec::with_capacity(ci.arity);
        let mut t = &ci.scheme.qual.head;
        for _ in 0..ci.arity {
            match t {
                Type::Fun(a, b) => {
                    field_tys.push(subst.apply(a));
                    t = b;
                }
                _ => return Vec::new(),
            }
        }
        let field_samples: Vec<Vec<Sample>> = field_tys
            .iter()
            .map(|ft| samples_for(ft, depth + 1, datas))
            .collect();
        if field_samples.iter().any(Vec::is_empty) {
            continue;
        }
        // Up to two variants per constructor: each field's first
        // sample, then each field's second (where one exists) so
        // single-constructor types still get distinct samples.
        for k in 0..2usize {
            if out.len() >= 3 {
                break;
            }
            let picks: Vec<&Sample> = field_samples
                .iter()
                .map(|fs| fs.get(k).unwrap_or(&fs[0]))
                .collect();
            let mut expr = con(cname);
            let mut text = cname.clone();
            for p in &picks {
                expr = app(expr, p.expr.clone());
                text.push(' ');
                text.push_str(&p.atom());
            }
            if k == 1 && out.last().is_some_and(|s| s.text == text) {
                break;
            }
            out.push(Sample { expr, text });
        }
    }
    out
}

fn var(name: &str) -> Expr {
    Expr::Var(name.to_string(), Span::DUMMY)
}

fn con(name: &str) -> Expr {
    Expr::Con(name.to_string(), Span::DUMMY)
}

fn app(f: Expr, x: Expr) -> Expr {
    Expr::App(Box::new(f), Box::new(x), Span::DUMMY)
}

/// `method x y` over two samples.
fn app2(method: &str, x: &Sample, y: &Sample) -> Expr {
    app(app(var(method), x.expr.clone()), y.expr.clone())
}

/// Logical implication as a law program: `if p then q else True` —
/// `True` when the premise fails, `q`'s verdict when it holds.
fn implies(p: Expr, q: Expr) -> Expr {
    Expr::If(Box::new(p), Box::new(q), Box::new(con("True")), Span::DUMMY)
}

/// `cons head tail` from samples.
fn cons_expr(head: &Sample, tail: &Sample) -> Expr {
    app(app(var("cons"), head.expr.clone()), tail.expr.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::build;
    use tc_syntax::Severity;

    /// Law-check `src` (no prelude) at default levels.
    fn laws(src: &str) -> Vec<tc_syntax::Diagnostic> {
        laws_with(src, &CoherenceConfig::default())
    }

    fn laws_with(src: &str, cfg: &CoherenceConfig) -> Vec<tc_syntax::Diagnostic> {
        let mut b = build(src);
        let mut metrics = MetricsRegistry::off();
        check_laws(
            &LawInput {
                program: &b.program,
                cenv: &b.cenv,
                user_start: 0,
            },
            cfg,
            &LawOptions::default(),
            None,
            &mut b.gen,
            &mut metrics,
        )
        .into_vec()
    }

    const EQ: &str = "class Eq a where { eq :: a -> a -> Bool; };\n";

    #[test]
    fn lawful_instance_is_clean() {
        let src = format!("{EQ}instance Eq Int where {{ eq = primEqInt; }};");
        assert!(laws(&src).is_empty(), "{:?}", laws(&src));
    }

    #[test]
    fn constant_false_eq_fails_reflexivity() {
        let src = format!("{EQ}instance Eq Int where {{ eq = \\x y -> False; }};");
        let d = laws(&src);
        let v = d.iter().find(|d| d.code == "L0011").expect("L0011");
        assert!(v.message.contains("reflexivity"), "{}", v.message);
        assert!(
            v.notes.iter().any(|(_, n)| n.contains("failing sample")),
            "{:?}",
            v.notes
        );
        assert_eq!(v.severity, Severity::Warning);
    }

    #[test]
    fn non_symmetric_eq_fails_symmetry_with_sample() {
        // `eq = lte`: reflexive, but 0 `eq` 1 without 1 `eq` 0.
        let src = format!("{EQ}instance Eq Int where {{ eq = primLeInt; }};");
        let d = laws(&src);
        let v = d
            .iter()
            .find(|d| d.code == "L0011" && d.message.contains("symmetry"))
            .expect("symmetry violation");
        assert!(
            v.notes
                .iter()
                .any(|(_, n)| n.contains("x = ") && n.contains("y = ")),
            "{:?}",
            v.notes
        );
        // Reflexivity holds for <=, so no reflexivity finding.
        assert!(
            d.iter().all(|d| !d.message.contains("reflexivity")),
            "{d:?}"
        );
    }

    #[test]
    fn list_instance_checked_at_ground_element_type() {
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq a => Eq (List a) where {{ eq = \\x y -> False; }};"
        );
        let d = laws(&src);
        let v = d
            .iter()
            .find(|d| d.code == "L0011" && d.message.contains("List Int"))
            .expect("list law violation");
        assert!(v.message.contains("reflexivity"), "{}", v.message);
    }

    #[test]
    fn ord_totality_and_antisymmetry() {
        let src = format!(
            "{EQ}class Eq a => Ord a where {{ lte :: a -> a -> Bool; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Ord Int where {{ lte = \\x y -> False; }};"
        );
        let d = laws(&src);
        assert!(
            d.iter()
                .any(|d| d.code == "L0011" && d.message.contains("totality")),
            "{d:?}"
        );
        let lawful = format!(
            "{EQ}class Eq a => Ord a where {{ lte :: a -> a -> Bool; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Ord Int where {{ lte = primLeInt; }};"
        );
        assert!(laws(&lawful).is_empty(), "{:?}", laws(&lawful));
    }

    #[test]
    fn allow_skips_all_law_work() {
        let src = format!("{EQ}instance Eq Int where {{ eq = \\x y -> False; }};");
        let d = laws_with(&src, &CoherenceConfig::all(tc_syntax::LintLevel::Allow));
        assert!(d.is_empty());
    }

    #[test]
    fn deny_escalates_to_error() {
        let src = format!("{EQ}instance Eq Int where {{ eq = \\x y -> False; }};");
        let d = laws_with(
            &src,
            &CoherenceConfig::default().with(Rule::LawViolation, tc_syntax::LintLevel::Deny),
        );
        assert!(d
            .iter()
            .any(|d| d.code == "L0011" && d.severity == Severity::Error));
    }

    #[test]
    fn metrics_count_runs_and_failures() {
        let src = format!("{EQ}instance Eq Int where {{ eq = \\x y -> False; }};");
        let mut b = build(&src);
        let mut metrics = MetricsRegistry::new();
        check_laws(
            &LawInput {
                program: &b.program,
                cenv: &b.cenv,
                user_start: 0,
            },
            &CoherenceConfig::default(),
            &LawOptions::default(),
            None,
            &mut b.gen,
            &mut metrics,
        );
        // 3 Int samples: 3 reflexivity + 6 symmetry + 27 transitivity.
        assert_eq!(metrics.counter(CounterId::CoherenceLawsRun), 36);
        // Constant-False eq fails reflexivity and nothing else (every
        // implication's premise is False, so it holds vacuously).
        assert_eq!(metrics.counter(CounterId::CoherenceLawsFailed), 3);
    }

    #[test]
    fn derived_instances_on_data_types_are_law_checked_clean() {
        let src = format!(
            "{EQ}class Eq a => Ord a where {{ lte :: a -> a -> Bool; }};\n\
             instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Ord Int where {{ lte = primLeInt; }};\n\
             data Color = Red | Green | Blue deriving (Eq, Ord);\n\
             data Pair a b = MkPair a b deriving (Eq, Ord);\n\
             data Nat = Z | S Nat deriving (Eq, Ord);"
        );
        assert!(laws(&src).is_empty(), "{:?}", laws(&src));
    }

    #[test]
    fn broken_handwritten_instance_on_data_type_is_caught() {
        // `eq` that always answers False fails reflexivity at `Red`.
        let src = format!(
            "{EQ}data Color = Red | Green | Blue;\n\
             instance Eq Color where {{ eq = \\x y -> False; }};"
        );
        let d = laws(&src);
        let v = d
            .iter()
            .find(|d| d.code == "L0011" && d.message.contains("Color"))
            .expect("law violation on Color");
        assert!(v.message.contains("reflexivity"), "{}", v.message);
        assert!(
            v.notes.iter().any(|(_, n)| n.contains("Red")),
            "failing sample should cite a constructor: {:?}",
            v.notes
        );
    }

    #[test]
    fn recursive_data_type_samples_are_depth_bounded() {
        // A lawful Nat instance: sampling must terminate and be clean.
        let src = format!(
            "{EQ}data Nat = Z | S Nat deriving (Eq);\n\
             instance Eq Int where {{ eq = primEqInt; }};"
        );
        assert!(laws(&src).is_empty(), "{:?}", laws(&src));
    }

    #[test]
    fn shadowed_duplicate_instance_is_not_law_checked() {
        // The second Eq Int is never selected by first-match
        // resolution; its broken eq must not produce law findings
        // (the overlap itself is L0008, reported by check_coherence).
        let src = format!(
            "{EQ}instance Eq Int where {{ eq = primEqInt; }};\n\
             instance Eq Int where {{ eq = \\x y -> False; }};"
        );
        assert!(laws(&src).is_empty(), "{:?}", laws(&src));
    }
}
