//! The data-type environment: user `data` declarations plus builtins.
//!
//! Built *before* the class environment so instance heads, method
//! signatures, and field types can all mention user-defined type
//! constructors. The builtin constructors (`Int`, `Bool`, `List`) are
//! pre-registered here, together with their value constructors
//! (`True`/`False`, `Nil`/`Cons`), so pattern matching and constructor
//! expressions look everything up through one table.
//!
//! Like the class build, every malformed declaration is reported and
//! *skipped* — construction always returns a usable partial environment.

use crate::lower::{lower_type, LowerCtx};
use std::collections::HashMap;
use tc_syntax::{DataDecl, Diagnostics, Program, Span, Stage, TypeExpr};
use tc_types::{Qual, Scheme, TyVar, Type, VarGen};

/// One registered data type (builtin or user-declared).
#[derive(Debug, Clone)]
pub struct DataInfo {
    pub name: String,
    /// Number of type parameters.
    pub arity: usize,
    /// Constructor names in tag order (the declaration order).
    pub constructors: Vec<String>,
    pub span: Span,
    /// `Int`, `Bool`, `List` — cannot be shadowed by user declarations.
    pub builtin: bool,
}

/// One value constructor.
#[derive(Debug, Clone)]
pub struct ConInfo {
    pub name: String,
    /// The data type this constructor belongs to.
    pub data_name: String,
    /// Declaration index within the data type; derived `Ord` orders
    /// constructors by tag, and `case` evaluation matches on it.
    pub tag: u32,
    /// Number of fields.
    pub arity: usize,
    /// The constructor's polymorphic type, e.g. for `Node` of
    /// `data Tree a = Leaf | Node a (Tree a) (Tree a)`:
    /// `forall a. a -> Tree a -> Tree a -> Tree a`.
    pub scheme: Scheme,
    pub span: Span,
}

/// Data types by name and value constructors by name.
#[derive(Debug, Clone, Default)]
pub struct DataEnv {
    pub types: HashMap<String, DataInfo>,
    pub constructors: HashMap<String, ConInfo>,
}

impl DataEnv {
    /// An environment holding only the builtin types and constructors.
    /// Builtin schemes reuse `TyVar(0)`, like `tc-core`'s builtin value
    /// schemes — instantiation freshens, so sharing the index is fine.
    pub fn with_builtins() -> Self {
        let mut env = DataEnv::default();
        let a = Type::Var(TyVar(0));
        env.add_builtin_type("Int", 0, &[]);
        env.add_builtin_type("Bool", 0, &["True", "False"]);
        env.add_builtin_type("List", 1, &["Nil", "Cons"]);
        env.add_builtin_con("True", "Bool", 0, Scheme::mono(Type::bool()));
        env.add_builtin_con("False", "Bool", 1, Scheme::mono(Type::bool()));
        env.add_builtin_con(
            "Nil",
            "List",
            0,
            Scheme {
                vars: vec![TyVar(0)],
                qual: Qual::unqualified(Type::list(a.clone())),
            },
        );
        env.add_builtin_con(
            "Cons",
            "List",
            1,
            Scheme {
                vars: vec![TyVar(0)],
                qual: Qual::unqualified(Type::fun(
                    a.clone(),
                    Type::fun(Type::list(a.clone()), Type::list(a)),
                )),
            },
        );
        env
    }

    fn add_builtin_type(&mut self, name: &str, arity: usize, cons: &[&str]) {
        self.types.insert(
            name.to_string(),
            DataInfo {
                name: name.to_string(),
                arity,
                constructors: cons.iter().map(|c| c.to_string()).collect(),
                span: Span::DUMMY,
                builtin: true,
            },
        );
    }

    fn add_builtin_con(&mut self, name: &str, data: &str, tag: u32, scheme: Scheme) {
        let mut arity = 0usize;
        let mut t = &scheme.qual.head;
        while let Type::Fun(_, b) = t {
            arity += 1;
            t = b;
        }
        self.constructors.insert(
            name.to_string(),
            ConInfo {
                name: name.to_string(),
                data_name: data.to_string(),
                tag,
                arity,
                scheme,
                span: Span::DUMMY,
            },
        );
    }

    pub fn data(&self, name: &str) -> Option<&DataInfo> {
        self.types.get(name)
    }

    /// Arity of a type constructor, or `None` if unknown.
    pub fn type_arity(&self, name: &str) -> Option<usize> {
        self.types.get(name).map(|d| d.arity)
    }

    pub fn con(&self, name: &str) -> Option<&ConInfo> {
        self.constructors.get(name)
    }

    /// The constructors of a data type, in tag order. Empty for `Int`
    /// and unknown types.
    pub fn constructors_of(&self, data_name: &str) -> Vec<&ConInfo> {
        let Some(di) = self.types.get(data_name) else {
            return Vec::new();
        };
        di.constructors
            .iter()
            .filter_map(|c| self.constructors.get(c))
            .collect()
    }

    /// Sorted names of user-declared (non-builtin) data types.
    pub fn user_types(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .types
            .values()
            .filter(|d| !d.builtin)
            .map(|d| d.name.as_str())
            .collect();
        v.sort_unstable();
        v
    }
}

/// A declaration that survived phase A, awaiting field lowering.
struct Pending<'p> {
    decl: &'p DataDecl,
    /// Accepted constructors: `(declaration, tag)`.
    cons: Vec<(&'p tc_syntax::ConDecl, u32)>,
}

/// Build the data environment from the program's `data` declarations.
///
/// Two phases: phase A registers every type head and constructor name
/// (so fields may reference any user type, including mutually recursive
/// ones); phase B lowers field types and assigns constructor schemes.
pub fn build_data_env(program: &Program, gen: &mut VarGen, diags: &mut Diagnostics) -> DataEnv {
    let mut env = DataEnv::with_builtins();
    let mut pending: Vec<Pending<'_>> = Vec::new();

    // Phase A: type heads and constructor names/tags.
    for decl in &program.datas {
        if let Some(prev) = env.types.get(&decl.name) {
            let mut d = tc_syntax::Diagnostic::error(
                Stage::Classes,
                "E0317",
                if prev.builtin {
                    format!("data type `{}` shadows a builtin type", decl.name)
                } else {
                    format!("data type `{}` is defined more than once", decl.name)
                },
                decl.span,
            );
            if !prev.builtin {
                d = d.with_note(Some(prev.span), "previous definition here".to_string());
            }
            diags.push(d);
            continue;
        }
        let mut dup_param = false;
        for (i, p) in decl.params.iter().enumerate() {
            if decl.params[..i].contains(p) {
                diags.error(
                    Stage::Classes,
                    "E0317",
                    format!(
                        "type parameter `{p}` appears more than once in `data {}`",
                        decl.name
                    ),
                    decl.span,
                );
                dup_param = true;
            }
        }
        if dup_param {
            continue;
        }

        let mut accepted: Vec<(&tc_syntax::ConDecl, u32)> = Vec::new();
        let mut tag = 0u32;
        for c in &decl.constructors {
            let clash = env.constructors.contains_key(&c.name)
                || pending
                    .iter()
                    .any(|p| p.cons.iter().any(|(pc, _)| pc.name == c.name))
                || accepted.iter().any(|(ac, _)| ac.name == c.name);
            if clash {
                diags.error(
                    Stage::Classes,
                    "E0318",
                    format!(
                        "constructor `{}` is already defined (constructor names are global)",
                        c.name
                    ),
                    c.span,
                );
                // Keep the type registered; skip only this constructor.
                continue;
            }
            accepted.push((c, tag));
            tag += 1;
        }

        env.types.insert(
            decl.name.clone(),
            DataInfo {
                name: decl.name.clone(),
                arity: decl.params.len(),
                constructors: accepted.iter().map(|(c, _)| c.name.clone()).collect(),
                span: decl.span,
                builtin: false,
            },
        );
        pending.push(Pending {
            decl,
            cons: accepted,
        });
    }

    // Phase B: lower field types and assign constructor schemes. Fields
    // may reference any type registered in phase A.
    for p in &pending {
        let mut ctx = LowerCtx::new();
        let param_vars: Vec<TyVar> = p.decl.params.iter().map(|n| ctx.var(n, gen)).collect();
        let head_ty = param_vars
            .iter()
            .fold(Type::Con(p.decl.name.clone()), |acc, v| {
                Type::App(Box::new(acc), Box::new(Type::Var(*v)))
            });

        // Unbound type variables in fields: report each name once per
        // declaration, then let lowering recover with fresh variables.
        let mut reported: Vec<&str> = Vec::new();
        for (c, _) in &p.cons {
            for f in &c.fields {
                report_unbound_vars(f, &p.decl.params, &mut reported, diags, &p.decl.name);
            }
        }

        let mut lowered: Vec<ConInfo> = Vec::new();
        for (c, tag) in &p.cons {
            let fields: Vec<Type> = c
                .fields
                .iter()
                .map(|f| lower_type(f, &mut ctx, gen, diags, &env))
                .collect();
            let arity = fields.len();
            let scheme = Scheme {
                vars: param_vars.clone(),
                qual: Qual::unqualified(Type::fun_from(fields, head_ty.clone())),
            };
            lowered.push(ConInfo {
                name: c.name.clone(),
                data_name: p.decl.name.clone(),
                tag: *tag,
                arity,
                scheme,
                span: c.span,
            });
        }
        for ci in lowered {
            env.constructors.insert(ci.name.clone(), ci);
        }
    }

    env
}

/// `E0319` for every type variable in `te` that is not a declared
/// parameter of the data type (reported once per name).
fn report_unbound_vars<'t>(
    te: &'t TypeExpr,
    params: &[String],
    reported: &mut Vec<&'t str>,
    diags: &mut Diagnostics,
    data_name: &str,
) {
    match te {
        TypeExpr::Var(n, span) => {
            if !params.iter().any(|p| p == n) && !reported.contains(&n.as_str()) {
                reported.push(n);
                diags.error(
                    Stage::Classes,
                    "E0319",
                    format!("type variable `{n}` is not a parameter of `data {data_name}`"),
                    *span,
                );
            }
        }
        TypeExpr::Con(..) => {}
        TypeExpr::App(a, b, _) | TypeExpr::Fun(a, b, _) => {
            report_unbound_vars(a, params, reported, diags, data_name);
            report_unbound_vars(b, params, reported, diags, data_name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (DataEnv, Diagnostics) {
        let (toks, ld) = tc_syntax::lex(src);
        assert!(!ld.has_errors());
        let (prog, _pd) = tc_syntax::parse_program(&toks, Default::default());
        let mut gen = VarGen::new();
        let mut diags = Diagnostics::new();
        let env = build_data_env(&prog, &mut gen, &mut diags);
        (env, diags)
    }

    #[test]
    fn builtins_registered() {
        let env = DataEnv::with_builtins();
        assert_eq!(env.type_arity("List"), Some(1));
        assert_eq!(env.con("True").unwrap().tag, 0);
        assert_eq!(env.con("False").unwrap().tag, 1);
        assert_eq!(env.con("Cons").unwrap().arity, 2);
        assert_eq!(env.constructors_of("Bool").len(), 2);
    }

    #[test]
    fn simple_enum() {
        let (env, diags) = build("data Color = Red | Green | Blue;");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        let di = env.data("Color").unwrap();
        assert_eq!(di.arity, 0);
        assert_eq!(di.constructors, vec!["Red", "Green", "Blue"]);
        assert_eq!(env.con("Green").unwrap().tag, 1);
        assert_eq!(
            env.con("Blue").unwrap().scheme.qual.head,
            Type::Con("Color".into())
        );
    }

    #[test]
    fn recursive_parameterized_type() {
        let (env, diags) = build("data Tree a = Leaf | Node a (Tree a) (Tree a);");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        let node = env.con("Node").unwrap();
        assert_eq!(node.arity, 3);
        assert_eq!(node.scheme.vars.len(), 1);
        // forall a. a -> Tree a -> Tree a -> Tree a
        let a = Type::Var(node.scheme.vars[0]);
        let tree = Type::App(Box::new(Type::Con("Tree".into())), Box::new(a.clone()));
        assert_eq!(
            node.scheme.qual.head,
            Type::fun_from(vec![a, tree.clone(), tree.clone()], tree)
        );
    }

    #[test]
    fn mutual_recursion_resolves() {
        let (env, diags) = build(
            "data Forest a = FNil | FCons (Tree a) (Forest a);
             data Tree a = Node a (Forest a);",
        );
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.con("FCons").unwrap().arity, 2);
        assert_eq!(env.con("Node").unwrap().arity, 2);
    }

    #[test]
    fn builtin_shadow_is_e0317() {
        let (env, diags) = build("data Bool = T | F;");
        assert!(diags.iter().any(|d| d.code == "E0317"));
        // The builtin survives untouched.
        assert!(env.data("Bool").unwrap().builtin);
        assert!(env.con("T").is_none());
    }

    #[test]
    fn duplicate_type_is_e0317() {
        let (env, diags) = build("data T = A; data T = B;");
        assert!(diags.iter().any(|d| d.code == "E0317"));
        assert_eq!(env.data("T").unwrap().constructors, vec!["A"]);
    }

    #[test]
    fn duplicate_param_is_e0317() {
        let (env, diags) = build("data P a a = MkP a;");
        assert!(diags.iter().any(|d| d.code == "E0317"));
        assert!(env.data("P").is_none());
    }

    #[test]
    fn duplicate_constructor_is_e0318_type_survives() {
        let (env, diags) = build("data A = Mk Int; data B = Mk Bool | Other;");
        assert!(diags.iter().any(|d| d.code == "E0318"));
        // `B` keeps its non-clashing constructor; `Mk` stays with `A`.
        assert_eq!(env.con("Mk").unwrap().data_name, "A");
        assert_eq!(env.data("B").unwrap().constructors, vec!["Other"]);
    }

    #[test]
    fn unbound_field_var_is_e0319() {
        let (_, diags) = build("data T a = Mk b;");
        assert!(diags.iter().any(|d| d.code == "E0319"));
    }

    #[test]
    fn fields_reference_builtins_and_user_types() {
        let (env, diags) =
            build("data Pair a b = MkPair a b; data W = MkW (Pair Int Bool) (List Int);");
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.con("MkW").unwrap().arity, 2);
        assert_eq!(env.type_arity("Pair"), Some(2));
    }

    #[test]
    fn field_arity_errors_reported() {
        let (_, diags) = build("data W = MkW (List Int Int);");
        assert!(diags.iter().any(|d| d.code == "E0311"));
    }
}
