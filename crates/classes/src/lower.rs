//! Lowering surface type expressions to internal types.
//!
//! Shared by class-environment construction (instance heads, method
//! signatures) and by `tc-core` (top-level type signatures). Lowering
//! validates constructor names and arities against the data-type
//! environment — the builtins (`Int`, `Bool`, `List`, and `->`) plus
//! every user `data` declaration — so an unknown or misapplied
//! constructor is a diagnostic, not a latent runtime surprise.

use crate::data::DataEnv;
use std::collections::HashMap;
use tc_syntax::{Diagnostics, PredExpr, QualTypeExpr, Stage, TypeExpr};
use tc_types::{Pred, Qual, TyVar, Type, VarGen};

/// A lowering scope: maps surface type-variable names (`a`, `b`) to
/// internal [`TyVar`]s, minting fresh ones on first use.
#[derive(Debug, Default)]
pub struct LowerCtx {
    pub vars: HashMap<String, TyVar>,
}

impl LowerCtx {
    pub fn new() -> Self {
        LowerCtx::default()
    }

    pub fn var(&mut self, name: &str, gen: &mut VarGen) -> TyVar {
        if let Some(v) = self.vars.get(name) {
            return *v;
        }
        let v = gen.fresh();
        self.vars.insert(name.to_string(), v);
        v
    }
}

/// Lower a type expression. Emits diagnostics for unknown constructors
/// and arity violations but always produces a type (unknown pieces
/// become fresh variables) so checking can continue.
pub fn lower_type(
    te: &TypeExpr,
    ctx: &mut LowerCtx,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) -> Type {
    let t = lower_rec(te, ctx, gen, diags, datas);
    check_arity(&t, te, diags, datas);
    t
}

fn lower_rec(
    te: &TypeExpr,
    ctx: &mut LowerCtx,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) -> Type {
    match te {
        TypeExpr::Var(n, _) => Type::Var(ctx.var(n, gen)),
        TypeExpr::Con(n, span) => {
            if datas.type_arity(n).is_none() {
                diags.error(
                    Stage::Classes,
                    "E0310",
                    format!("unknown type constructor `{n}`"),
                    *span,
                );
                // Recover with a fresh variable so inference continues.
                Type::Var(gen.fresh())
            } else {
                Type::Con(n.clone())
            }
        }
        TypeExpr::App(f, a, _) => {
            let lf = lower_rec(f, ctx, gen, diags, datas);
            let la = lower_rec(a, ctx, gen, diags, datas);
            Type::App(Box::new(lf), Box::new(la))
        }
        TypeExpr::Fun(a, b, _) => {
            let la = lower_rec(a, ctx, gen, diags, datas);
            let lb = lower_rec(b, ctx, gen, diags, datas);
            Type::Fun(Box::new(la), Box::new(lb))
        }
    }
}

/// Post-hoc arity validation on the lowered type. Walks the application
/// spine of every node; reports a diagnostic when a constructor is
/// under- or over-applied (e.g. bare `List`, or `Int Bool`).
fn check_arity(t: &Type, origin: &TypeExpr, diags: &mut Diagnostics, datas: &DataEnv) {
    // Iterative traversal; each node checked once.
    let mut stack = vec![(t, true)];
    while let Some((node, is_full_spine)) = stack.pop() {
        match node {
            Type::Con(n) => {
                if is_full_spine {
                    if let Some(arity) = datas.type_arity(n) {
                        if arity != 0 {
                            diags.error(
                                Stage::Classes,
                                "E0311",
                                format!(
                                    "type constructor `{n}` expects {arity} argument(s), got 0"
                                ),
                                origin.span(),
                            );
                        }
                    }
                }
            }
            Type::App(_, _) if is_full_spine => {
                // Walk the spine to find the head and count args.
                let mut head = node;
                let mut args: Vec<&Type> = Vec::new();
                while let Type::App(f, a) = head {
                    args.push(a);
                    head = f;
                }
                match head {
                    Type::Con(n) => {
                        if let Some(arity) = datas.type_arity(n) {
                            if arity != args.len() {
                                diags.error(
                                    Stage::Classes,
                                    "E0311",
                                    format!(
                                        "type constructor `{n}` expects {arity} argument(s), got {}",
                                        args.len()
                                    ),
                                    origin.span(),
                                );
                            }
                        }
                    }
                    Type::Var(_) => {
                        // Higher-kinded variable application (`m a`): the
                        // language has no kind system, so reject it
                        // explicitly rather than inferring nonsense.
                        diags.error(
                            Stage::Classes,
                            "E0313",
                            "application of a type variable is not supported (no higher kinds)"
                                .to_string(),
                            origin.span(),
                        );
                    }
                    _ => {}
                }
                for a in args {
                    stack.push((a, true));
                }
            }
            Type::App(f, a) => {
                stack.push((f, false));
                stack.push((a, true));
            }
            Type::Fun(x, y) => {
                stack.push((x, true));
                stack.push((y, true));
            }
            Type::Var(_) => {}
        }
    }
}

/// Lower a predicate.
pub fn lower_pred(
    pe: &PredExpr,
    ctx: &mut LowerCtx,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) -> Pred {
    let ty = lower_type(&pe.ty, ctx, gen, diags, datas);
    Pred::new(pe.class.clone(), ty, pe.span)
}

/// Lower a qualified type (`context => type`), sharing one variable
/// scope between the context and the body.
pub fn lower_qual_type(
    qt: &QualTypeExpr,
    ctx: &mut LowerCtx,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) -> Qual<Type> {
    let preds = qt
        .context
        .iter()
        .map(|p| lower_pred(p, ctx, gen, diags, datas))
        .collect();
    let ty = lower_type(&qt.ty, ctx, gen, diags, datas);
    Qual::new(preds, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_syntax::Span;

    fn lower_src_type(src: &str) -> (Type, Diagnostics) {
        // Parse a type by wrapping it in a signature.
        let (toks, _) = tc_syntax::lex(&format!("x :: {src};"));
        let (prog, pdiags) = tc_syntax::parse_program(&toks, Default::default());
        assert!(!pdiags.has_errors(), "fixture parse failed: {src}");
        let mut diags = Diagnostics::new();
        let mut ctx = LowerCtx::new();
        let mut gen = VarGen::new();
        let datas = DataEnv::with_builtins();
        let t = lower_type(
            &prog.sigs[0].qual_ty.ty,
            &mut ctx,
            &mut gen,
            &mut diags,
            &datas,
        );
        (t, diags)
    }

    #[test]
    fn lowers_list_of_int() {
        let (t, diags) = lower_src_type("List Int -> Bool");
        assert!(diags.is_empty(), "{:?}", diags.into_vec());
        assert_eq!(t, Type::fun(Type::list(Type::int()), Type::bool()));
    }

    #[test]
    fn unknown_con_is_diagnostic() {
        let (_, diags) = lower_src_type("Set Int");
        assert!(diags.iter().any(|d| d.code == "E0310"));
    }

    #[test]
    fn bare_list_is_arity_error() {
        let (_, diags) = lower_src_type("List");
        assert!(diags.iter().any(|d| d.code == "E0311"));
    }

    #[test]
    fn over_applied_int() {
        let (_, diags) = lower_src_type("Int Bool");
        assert!(diags.iter().any(|d| d.code == "E0311"));
    }

    #[test]
    fn hkt_application_rejected() {
        let (_, diags) = lower_src_type("m Int");
        assert!(diags.iter().any(|d| d.code == "E0313"));
    }

    #[test]
    fn shared_scope_for_qual() {
        let (toks, _) = tc_syntax::lex("x :: Eq a => a -> Bool;");
        let (prog, _) = tc_syntax::parse_program(&toks, Default::default());
        let mut diags = Diagnostics::new();
        let mut ctx = LowerCtx::new();
        let mut gen = VarGen::new();
        let datas = DataEnv::with_builtins();
        let q = lower_qual_type(
            &prog.sigs[0].qual_ty,
            &mut ctx,
            &mut gen,
            &mut diags,
            &datas,
        );
        assert!(diags.is_empty());
        // `a` in the context and in the body must be the same variable.
        let body_var = match &q.head {
            Type::Fun(a, _) => (**a).clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q.preds[0].ty, body_var);
        let _ = Span::DUMMY;
    }
}
