//! Budgeted instance resolution, entailment, and context reduction.
//!
//! Resolution is a backward-chaining search over instances and
//! superclass edges. Two robustness mechanisms make it total:
//!
//! * a **visited-goal set** detects exact cycles (a goal recurring as
//!   its own subgoal, as with `instance C (List a) => C (List a)`),
//!   reported as [`ResolveError::Cycle`];
//! * a **[`ReduceBudget`]** (recursion depth + total step count) stops
//!   ever-growing goal chains (`instance C (List (List a)) => C (List a)`)
//!   with [`ResolveError::BudgetExhausted`].
//!
//! Successful resolution returns a [`DictDeriv`]: an explicit recipe
//! for constructing the dictionary, consumed by `tc-core`'s dictionary
//! conversion pass. This mirrors the tabled-resolution observation that
//! instance search must be treated as a real (terminating) search
//! procedure, not naive recursion.
//!
//! # Tabling
//!
//! On top of the budgeted search sits a **memo table**
//! ([`ResolveCache`]), in the spirit of *Tabled Typeclass Resolution*:
//! completed derivations for *pure* goals (ground types, no skolem
//! constants) are recorded keyed by a hash-consed `(class, type)` pair
//! ([`tc_types::Interner`]), so re-deriving `Eq (List (List Int))` at a
//! second use site is a single O(1) lookup charged **one budget step**
//! instead of a full backward-chaining search. Cycle detection is
//! untouched: in-progress goals are never tabled, only completed ones,
//! so the recursive-instance self-knot still resolves (and still
//! reports cycles) exactly as without the table.
//!
//! Soundness of a table hit requires the cached derivation to be valid
//! under the *current* assumption set, not the one it was derived
//! under. Two guards ensure this, keeping cached resolution
//! bit-identical to fresh resolution:
//!
//! * only derivations that are **closed** (built purely from instance
//!   constructors, no [`DictDeriv::FromParam`] /
//!   [`DictDeriv::FromSuper`] references into the assumption list) are
//!   stored;
//! * the table is consulted only when every assumption in scope is in
//!   head-normal form (variable-headed). A variable-headed assumption
//!   can never discharge a ground goal — neither directly nor through
//!   superclass projection, which preserves the constrained type — so
//!   under this guard the instance-chaining portion of the search is
//!   independent of the assumptions and safe to share.
//!
//! Failures are never cached: they are the cold path, and their
//! diagnostics carry use-site spans that must be rebuilt per call.

use crate::env::ClassEnv;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Instant;
use tc_trace::{
    CancelToken, CounterId, EventKind, EventScope, GaugeId, HistogramId, MetricsRegistry,
    SpanEvent, Stage, TraceNode,
};
use tc_types::{Interner, NameId, Pred, Type, TypeId};

/// Limits for one resolution / context-reduction call.
#[derive(Debug, Clone, Copy)]
pub struct ReduceBudget {
    /// Maximum backward-chaining depth.
    pub max_depth: usize,
    /// Maximum total goals examined.
    pub max_steps: usize,
}

impl Default for ReduceBudget {
    fn default() -> Self {
        ReduceBudget {
            max_depth: 64,
            max_steps: 10_000,
        }
    }
}

/// The cancellation token is polled once every this many search steps
/// (must be a power of two). Steps are bounded work, so 64 keeps
/// deadline latency well under a millisecond without a clock read per
/// goal.
const CANCEL_POLL_GOALS: usize = 64;

/// Why a predicate could not be resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// No instance (and no assumption) covers the predicate.
    NoInstance { pred: Pred },
    /// The goal recurred as its own subgoal.
    Cycle { pred: Pred, trail: Vec<Pred> },
    /// Depth or step budget exhausted.
    BudgetExhausted { pred: Pred, depth: bool },
    /// The predicate mentions an unknown class (already reported at
    /// build time; resolution refuses rather than guessing).
    UnknownClass { pred: Pred },
    /// The session's cancellation token fired (deadline or explicit
    /// cancellation) while this goal was being resolved.
    Cancelled { pred: Pred },
}

impl ResolveError {
    pub fn pred(&self) -> &Pred {
        match self {
            ResolveError::NoInstance { pred }
            | ResolveError::Cycle { pred, .. }
            | ResolveError::BudgetExhausted { pred, .. }
            | ResolveError::UnknownClass { pred }
            | ResolveError::Cancelled { pred } => pred,
        }
    }

    /// The stable diagnostic code this error surfaces under, so tests
    /// and tooling can match a *kind* of resolution failure instead of
    /// string-matching the rendered message:
    ///
    /// | code    | meaning                                   |
    /// |---------|-------------------------------------------|
    /// | `E0410` | no instance / not deducible from context  |
    /// | `E0420` | instance resolution is cyclic             |
    /// | `E0421` | resolution depth/step budget exhausted    |
    /// | `E0422` | predicate names an unknown class          |
    /// | `E0423` | resolution cancelled (deadline)           |
    pub fn code(&self) -> &'static str {
        match self {
            ResolveError::NoInstance { .. } => "E0410",
            ResolveError::Cycle { .. } => "E0420",
            ResolveError::BudgetExhausted { .. } => "E0421",
            ResolveError::UnknownClass { .. } => "E0422",
            ResolveError::Cancelled { .. } => "E0423",
        }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NoInstance { pred } => write!(f, "no instance for `{pred}`"),
            ResolveError::Cycle { pred, trail } => {
                write!(f, "instance resolution for `{pred}` is cyclic")?;
                if !trail.is_empty() {
                    write!(f, " (via ")?;
                    for (i, p) in trail.iter().enumerate() {
                        if i > 0 {
                            write!(f, " -> ")?;
                        }
                        write!(f, "`{p}`")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            ResolveError::BudgetExhausted { pred, depth } => write!(
                f,
                "instance resolution for `{pred}` exceeded the {} budget",
                if *depth { "depth" } else { "step" }
            ),
            ResolveError::UnknownClass { pred } => {
                write!(f, "`{pred}` refers to an unknown class")
            }
            ResolveError::Cancelled { pred } => {
                write!(f, "instance resolution for `{pred}` cancelled (deadline)")
            }
        }
    }
}

/// A dictionary construction recipe.
#[derive(Debug, Clone, PartialEq)]
pub enum DictDeriv {
    /// The dictionary is an assumption in scope (a dictionary lambda
    /// parameter); `index` is the position in the assumption list the
    /// resolution was run against.
    FromParam { index: usize },
    /// Project the `slot`-th superclass dictionary out of `base`.
    FromSuper { base: Box<DictDeriv>, slot: usize },
    /// Apply instance `inst_id`'s dictionary constructor to the
    /// dictionaries for its context predicates.
    FromInstance {
        inst_id: usize,
        args: Vec<DictDeriv>,
    },
}

impl DictDeriv {
    /// Is the derivation built purely from instance constructors —
    /// no references into a particular assumption list? Only closed
    /// derivations are context-independent and safe to memoize.
    pub fn is_closed(&self) -> bool {
        let mut stack = vec![self];
        while let Some(d) = stack.pop() {
            match d {
                DictDeriv::FromParam { .. } | DictDeriv::FromSuper { .. } => return false,
                DictDeriv::FromInstance { args, .. } => stack.extend(args.iter()),
            }
        }
        true
    }
}

/// Human description of a superclass-projection derivation for the
/// explain-trace: which assumption it starts from and the slot path
/// projected through. Falls back to a generic label for shapes
/// `via_supers` cannot produce.
fn describe_projection(d: &DictDeriv) -> String {
    let mut slots: Vec<usize> = Vec::new();
    let mut cur = d;
    loop {
        match cur {
            DictDeriv::FromSuper { base, slot } => {
                slots.push(*slot);
                cur = base;
            }
            DictDeriv::FromParam { index } => {
                if slots.is_empty() {
                    return format!("assumption #{index}");
                }
                // Collected outermost-first; projections apply from the
                // assumption outward.
                slots.reverse();
                let path = slots
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                return format!("superclass projection of assumption #{index} (slots [{path}])");
            }
            DictDeriv::FromInstance { .. } => return "superclass projection".to_string(),
        }
    }
}

/// Counters describing one resolution session (typically one
/// elaboration run). All monotone; rendered by the driver's `--stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Goals entering [`Search::resolve`] (including subgoals).
    pub goals: u64,
    /// Goals answered by the memo table in O(1).
    pub table_hits: u64,
    /// Cacheable goals that had to be derived from scratch.
    pub table_misses: u64,
    /// `FromInstance` derivation nodes built fresh (each corresponds
    /// to one dictionary-constructor application in the output).
    pub dicts_constructed: u64,
    /// Total budget steps consumed across all calls.
    pub steps: u64,
}

impl ResolveStats {
    /// Fraction of goals answered from the table, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.goals == 0 {
            0.0
        } else {
            self.table_hits as f64 / self.goals as f64
        }
    }
}

/// One completed, closed derivation for a pure goal.
#[derive(Debug, Clone)]
struct CacheEntry {
    deriv: DictDeriv,
    /// Budget steps the original derivation consumed (≥ 1). A table
    /// hit charges exactly one step, never more than this.
    cost: usize,
    /// Sequence number (1-based, session-wide goal count) of the goal
    /// whose derivation populated this entry. Explain-traces report it
    /// so a memo hit can point back at the originating derivation.
    origin: u64,
}

/// The explain-trace for one resolution session: one [`TraceNode`]
/// tree per top-level goal, in resolution order. Child nodes are the
/// instance-context subgoals of their parent. Labels carry the goal's
/// session-wide sequence number (`[#n]`), the predicate, and how it
/// was discharged — assumption, superclass projection, instance
/// (marked `[tabled]` when its derivation entered the memo table), or
/// memo hit with the originating goal's number.
#[derive(Debug, Default)]
pub struct ResolveTraceLog {
    pub goals: Vec<TraceNode>,
}

impl ResolveTraceLog {
    pub fn len(&self) -> usize {
        self.goals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.goals.is_empty()
    }

    /// Render every goal tree as an indented block, in order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for goal in &self.goals {
            goal.render_into(&mut out);
        }
        out
    }
}

/// Wall-clock span sink for top-level resolution goals, timed against
/// a shared epoch (normally the pipeline telemetry's start instant) so
/// the spans land inside the enclosing `elaborate` stage span in a
/// Chrome trace. Heap-allocated behind an `Option` so that, like the
/// explain-trace, it costs nothing when off.
#[derive(Debug)]
pub struct GoalSpanLog {
    epoch: Instant,
    events: Vec<SpanEvent>,
}

/// Saturating `u128 -> u64` for nanosecond readings.
fn saturate_ns(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// The memo table for instance resolution: hash-consed goal keys to
/// completed closed derivations, plus session counters. One cache is
/// intended to live for a whole elaboration run (and may live longer —
/// entries never go stale, because they are context-independent and
/// class environments are immutable once built).
#[derive(Debug, Default)]
pub struct ResolveCache {
    interner: Interner,
    table: HashMap<(NameId, TypeId), CacheEntry>,
    /// When `false`, the table is neither consulted nor populated but
    /// counters still accumulate — the cache-off baseline.
    pub enabled: bool,
    pub stats: ResolveStats,
    /// Explain-trace sink. `None` (the default) means tracing is off
    /// and resolution allocates no trace structures at all.
    pub trace: Option<Box<ResolveTraceLog>>,
    /// Metrics sink. Off (and allocation-free) by default; enable with
    /// [`ResolveCache::enable_metrics`] and harvest with
    /// [`ResolveCache::flush_metrics`].
    pub metrics: MetricsRegistry,
    /// Entry cap for the memo table. `None` (the default) means
    /// unbounded; `Some(n)` evicts an arbitrary tabled derivation
    /// before each insert that would exceed `n` entries.
    capacity: Option<usize>,
    /// Per-goal wall-clock span sink; `None` means span collection is
    /// off and resolution never reads the clock.
    goal_spans: Option<Box<GoalSpanLog>>,
    /// Cooperative cancellation, polled every [`CANCEL_POLL_GOALS`]
    /// goals inside the search loop. `None` (the default) costs one
    /// branch per poll site.
    cancel: Option<CancelToken>,
    /// Flight-recorder scope: one `goal` event per resolved goal
    /// (depth, memo hit/miss) and one `cache-evict` event per capacity
    /// trim. Off (one branch per site) by default.
    events: EventScope,
}

impl ResolveCache {
    /// An active cache.
    pub fn new() -> Self {
        ResolveCache {
            enabled: true,
            ..Default::default()
        }
    }

    /// A counters-only cache: never hits, never stores. Used for the
    /// memo-off baseline so the same code path is measured both ways.
    pub fn disabled() -> Self {
        ResolveCache::default()
    }

    /// Number of tabled derivations.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The cost (in budget steps) recorded for a goal, if tabled.
    pub fn cost_of(&mut self, pred: &Pred) -> Option<usize> {
        let class = self.interner.intern_name(&pred.class);
        let ty = self.interner.intern(&pred.ty);
        self.table.get(&(class, ty)).map(|e| e.cost)
    }

    /// Turn on explain-tracing: subsequent resolutions append one goal
    /// tree per top-level goal to the trace log. Idempotent.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Box::new(ResolveTraceLog::default()));
        }
    }

    /// Detach the accumulated explain-trace (tracing turns off).
    pub fn take_trace(&mut self) -> Option<ResolveTraceLog> {
        self.trace.take().map(|b| *b)
    }

    /// Turn on metrics collection. Idempotent; live counters (e.g.
    /// evictions) and the goal-depth histogram accumulate as
    /// resolution runs, while table/interner totals are folded in by
    /// [`ResolveCache::flush_metrics`].
    pub fn enable_metrics(&mut self) {
        if !self.metrics.is_enabled() {
            self.metrics = MetricsRegistry::new();
        }
    }

    /// Cap the memo table at `n` entries; inserts beyond the cap evict
    /// an arbitrary existing entry (counted under
    /// `resolve.cache.evictions` when metrics are on).
    pub fn set_capacity(&mut self, n: usize) {
        self.capacity = Some(n);
    }

    /// Install a cancellation token; subsequent resolutions return
    /// [`ResolveError::Cancelled`] shortly after it fires.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Install a flight-recorder scope; per-goal and eviction events
    /// record into it as resolution runs.
    pub fn set_events(&mut self, events: EventScope) {
        self.events = events;
    }

    /// Start recording one wall-clock [`SpanEvent`] per *top-level*
    /// resolution goal, timed relative to `epoch`. Pass the pipeline
    /// telemetry's epoch so the spans nest inside the `elaborate`
    /// stage span in a Chrome trace. Idempotent (keeps the first
    /// epoch).
    pub fn enable_goal_spans(&mut self, epoch: Instant) {
        if self.goal_spans.is_none() {
            self.goal_spans = Some(Box::new(GoalSpanLog {
                epoch,
                events: Vec::new(),
            }));
        }
    }

    /// Detach the accumulated goal spans (span collection turns off).
    pub fn take_goal_spans(&mut self) -> Vec<SpanEvent> {
        self.goal_spans.take().map(|b| b.events).unwrap_or_default()
    }

    /// Fold the session totals — resolution counters, interner
    /// traffic, and end-of-run table sizes — into the metrics
    /// registry. Call once, when the cache's session ends: the fold is
    /// cumulative, so flushing twice double-counts. No-op (and
    /// allocation-free) when metrics are off.
    pub fn flush_metrics(&mut self) {
        if !self.metrics.is_enabled() {
            return;
        }
        self.metrics
            .add(CounterId::ResolveCacheHits, self.stats.table_hits);
        self.metrics
            .add(CounterId::ResolveCacheMisses, self.stats.table_misses);
        self.metrics.add(CounterId::ResolveGoals, self.stats.goals);
        self.metrics.add(
            CounterId::ResolveDictsConstructed,
            self.stats.dicts_constructed,
        );
        let intern = self.interner.stats();
        self.metrics.add(CounterId::InternHits, intern.hits);
        self.metrics.add(CounterId::InternFresh, intern.fresh);
        self.metrics
            .set_gauge(GaugeId::InternTableSize, self.interner.len() as u64);
        self.metrics
            .set_gauge(GaugeId::ResolveCacheEntries, self.table.len() as u64);
    }
}

struct Search<'e> {
    env: &'e ClassEnv,
    assumptions: &'e [Pred],
    budget: ReduceBudget,
    steps: usize,
    /// Goals on the current derivation path (for cycle detection).
    in_progress: Vec<(String, Type)>,
    cache: &'e mut ResolveCache,
    /// Every assumption is head-normal-form (variable-headed), so no
    /// pure goal can ever be discharged by one — the precondition for
    /// consulting the table (see the module docs on soundness).
    assumptions_hnf: bool,
    /// Snapshot of `cache.trace.is_some()`: explain-tracing is on.
    /// When `false`, resolution takes one extra branch per goal and
    /// builds nothing.
    tracing: bool,
    /// One frame per goal currently being resolved; each frame
    /// collects the trace nodes of that goal's subgoals.
    node_stack: Vec<Vec<TraceNode>>,
}

impl<'e> Search<'e> {
    fn new(
        env: &'e ClassEnv,
        assumptions: &'e [Pred],
        budget: ReduceBudget,
        cache: &'e mut ResolveCache,
    ) -> Self {
        let assumptions_hnf = assumptions.iter().all(|a| a.in_hnf());
        let tracing = cache.trace.is_some();
        Search {
            env,
            assumptions,
            budget,
            steps: 0,
            in_progress: Vec::new(),
            cache,
            assumptions_hnf,
            tracing,
            node_stack: Vec::new(),
        }
    }

    /// Resolve one goal. With tracing off this is a tail call into
    /// [`Search::resolve_step`]; with tracing on it brackets the step
    /// with a subgoal-collection frame and records a [`TraceNode`]
    /// labelled with the goal's sequence number, predicate, and how it
    /// was (or failed to be) discharged. Top-level goals (depth 0) are
    /// additionally wall-clock timed when goal-span collection is on.
    fn resolve(&mut self, pred: &Pred, depth: usize) -> Result<DictDeriv, ResolveError> {
        let span_start = if depth == 0 && self.cache.goal_spans.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        let result = self.resolve_traced(pred, depth);
        if let Some(start) = span_start {
            if let Some(log) = self.cache.goal_spans.as_mut() {
                // `duration_since` saturates to zero if `start` somehow
                // precedes the epoch — no panic path.
                log.events.push(SpanEvent {
                    name: pred.to_string(),
                    cat: "resolve",
                    start_ns: saturate_ns(start.duration_since(log.epoch).as_nanos()),
                    duration_ns: saturate_ns(start.elapsed().as_nanos()),
                });
            }
        }
        result
    }

    /// [`Search::resolve`] minus the goal-span bracket: dispatches on
    /// whether explain-tracing is on.
    fn resolve_traced(&mut self, pred: &Pred, depth: usize) -> Result<DictDeriv, ResolveError> {
        if !self.tracing {
            let mut via = None;
            return self.resolve_step(pred, depth, &mut via);
        }
        // `resolve_step` increments the goal counter first thing, so
        // this goal's sequence number is the next count.
        let seq = self.cache.stats.goals + 1;
        self.node_stack.push(Vec::new());
        let mut via = None;
        let result = self.resolve_step(pred, depth, &mut via);
        let children = self.node_stack.pop().unwrap_or_default();
        let outcome = match (&result, via) {
            (Ok(_), Some(v)) => v,
            (Ok(_), None) => "resolved".to_string(),
            (Err(e), _) => format!("failed: {e}"),
        };
        let node = TraceNode::new(format!("[#{seq}] {pred}: {outcome}"), children);
        if let Some(frame) = self.node_stack.last_mut() {
            frame.push(node);
        } else if let Some(log) = self.cache.trace.as_mut() {
            log.goals.push(node);
        }
        result
    }

    /// The actual backward-chaining step behind [`Search::resolve`].
    /// On success (and when tracing) `via` is set to a human
    /// description of how the goal was discharged.
    fn resolve_step(
        &mut self,
        pred: &Pred,
        depth: usize,
        via: &mut Option<String>,
    ) -> Result<DictDeriv, ResolveError> {
        self.steps += 1;
        self.cache.stats.goals += 1;
        self.cache.stats.steps += 1;
        // One observation per goal: the histogram's count always equals
        // `stats.goals` for the same session.
        self.cache
            .metrics
            .observe(HistogramId::ResolveGoalDepth, depth as u64);
        let goal_seq = self.cache.stats.goals;
        // Poll the cancellation token every few goals: cheap enough to
        // keep deadline latency low (one goal is itself bounded work),
        // rare enough that the clock read stays off the hot path.
        if self.steps & (CANCEL_POLL_GOALS - 1) == 0 {
            if let Some(c) = &self.cache.cancel {
                if c.is_cancelled() {
                    self.cache.events.cancelled(Stage::Elaborate);
                    return Err(ResolveError::Cancelled { pred: pred.clone() });
                }
            }
        }
        if self.steps > self.budget.max_steps {
            return Err(ResolveError::BudgetExhausted {
                pred: pred.clone(),
                depth: false,
            });
        }
        if depth > self.budget.max_depth {
            return Err(ResolveError::BudgetExhausted {
                pred: pred.clone(),
                depth: true,
            });
        }

        // 1. Direct assumption?
        for (i, a) in self.assumptions.iter().enumerate() {
            if a.same_constraint(pred) {
                if self.tracing {
                    *via = Some(format!("assumption #{i} `{a}`"));
                }
                self.cache.events.record(EventKind::Goal, depth as u64, 2);
                return Ok(DictDeriv::FromParam { index: i });
            }
        }

        // 2. Reachable from an assumption through superclass edges?
        //    (`class Eq a => Ord a` + assumption `Ord t` entails `Eq t`.)
        if let Some(d) = self.via_supers(pred) {
            if self.tracing {
                *via = Some(describe_projection(&d));
            }
            self.cache.events.record(EventKind::Goal, depth as u64, 2);
            return Ok(d);
        }

        if !self.env.classes.contains_key(&pred.class) {
            return Err(ResolveError::UnknownClass { pred: pred.clone() });
        }

        // 3. Memo table. Consulted only after the assumption checks
        //    (which are per-call) and only for pure goals under an
        //    all-HNF assumption set, so a hit is exactly what a fresh
        //    instance-chaining search would have derived. A hit has
        //    already been charged its single budget step above.
        let cache_key = if self.cache.enabled && self.assumptions_hnf {
            let class = self.cache.interner.intern_name(&pred.class);
            let ty = self.cache.interner.intern(&pred.ty);
            if self.cache.interner.is_pure(ty) {
                if let Some(entry) = self.cache.table.get(&(class, ty)) {
                    self.cache.stats.table_hits += 1;
                    if self.tracing {
                        *via = Some(format!("memo hit (derived at goal #{})", entry.origin));
                    }
                    self.cache.events.record(EventKind::Goal, depth as u64, 1);
                    return Ok(entry.deriv.clone());
                }
                self.cache.stats.table_misses += 1;
                self.cache.events.record(EventKind::Goal, depth as u64, 0);
                Some((class, ty))
            } else {
                self.cache.events.record(EventKind::Goal, depth as u64, 2);
                None
            }
        } else {
            self.cache.events.record(EventKind::Goal, depth as u64, 2);
            None
        };
        let steps_at_entry = self.steps;

        // 4. Cycle check before chaining through instances.
        let key = (pred.class.clone(), pred.ty.clone());
        if self.in_progress.contains(&key) {
            let trail = self
                .in_progress
                .iter()
                .map(|(c, t)| Pred::new(c.clone(), t.clone(), pred.span))
                .collect();
            return Err(ResolveError::Cycle {
                pred: pred.clone(),
                trail,
            });
        }

        // 5. Instance chaining.
        let Some((inst, subst)) = self.env.matching_instance(pred) else {
            return Err(ResolveError::NoInstance { pred: pred.clone() });
        };
        let inst_id = inst.id;
        let inst_head = if self.tracing {
            Some(inst.head.to_string())
        } else {
            None
        };
        let subgoals: Vec<Pred> = inst
            .preds
            .iter()
            .map(|p| {
                let mut sp = p.apply(&subst);
                // Blame the original use site, not the instance decl.
                sp.span = pred.span;
                sp
            })
            .collect();

        self.in_progress.push(key);
        let mut args = Vec::with_capacity(subgoals.len());
        let mut result = Ok(());
        for sg in &subgoals {
            match self.resolve(sg, depth + 1) {
                Ok(d) => args.push(d),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.in_progress.pop();
        result?;
        self.cache.stats.dicts_constructed += 1;
        let deriv = DictDeriv::FromInstance { inst_id, args };

        // 6. Table the completed derivation. `is_closed` re-checks
        //    that no subgoal leaned on an assumption (belt and braces —
        //    the HNF guard already rules it out for pure goals).
        let mut tabled = false;
        if let Some(key) = cache_key {
            if deriv.is_closed() {
                // Honour the entry cap: make room by dropping an
                // arbitrary tabled derivation. Correctness is
                // unaffected — an evicted goal is simply re-derived.
                if let Some(cap) = self.cache.capacity {
                    let cap = cap.max(1);
                    let mut evicted = 0u64;
                    while self.cache.table.len() >= cap {
                        let Some(victim) = self.cache.table.keys().next().copied() else {
                            break;
                        };
                        self.cache.table.remove(&victim);
                        self.cache.metrics.incr(CounterId::ResolveCacheEvictions);
                        evicted += 1;
                    }
                    if evicted > 0 {
                        self.cache.events.record(EventKind::CacheEvict, evicted, 0);
                    }
                }
                // The goal's own entry step plus everything below it.
                let cost = (self.steps - steps_at_entry).saturating_add(1);
                self.cache.table.insert(
                    key,
                    CacheEntry {
                        deriv: deriv.clone(),
                        cost,
                        origin: goal_seq,
                    },
                );
                tabled = true;
            }
        }
        if self.tracing {
            *via = Some(format!(
                "instance #{inst_id} `{}`{}",
                inst_head.unwrap_or_default(),
                if tabled { " [tabled]" } else { "" }
            ));
        }
        Ok(deriv)
    }

    /// BFS over superclass edges from each assumption, looking for
    /// `pred`. Returns the projection chain if found. The search is
    /// bounded by a visited set, so superclass graphs (validated
    /// acyclic at build time, but belt and braces) cannot loop it.
    fn via_supers(&mut self, pred: &Pred) -> Option<DictDeriv> {
        let mut queue: Vec<(Pred, DictDeriv)> = self
            .assumptions
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), DictDeriv::FromParam { index: i }))
            .collect();
        let mut visited: HashSet<(String, Type)> = HashSet::new();
        let mut qi = 0usize;
        while qi < queue.len() {
            if self.steps >= self.budget.max_steps {
                return None;
            }
            self.steps += 1;
            self.cache.stats.steps += 1;
            let (cur, deriv) = queue[qi].clone();
            qi += 1;
            if !visited.insert((cur.class.clone(), cur.ty.clone())) {
                continue;
            }
            if cur.same_constraint(pred) {
                return Some(deriv);
            }
            if let Some(ci) = self.env.classes.get(&cur.class) {
                for (slot, sup) in ci.supers.iter().enumerate() {
                    queue.push((
                        Pred::new(sup.clone(), cur.ty.clone(), cur.span),
                        DictDeriv::FromSuper {
                            base: Box::new(deriv.clone()),
                            slot: ci.super_slot(slot),
                        },
                    ));
                }
            }
        }
        None
    }
}

impl ClassEnv {
    /// Resolve `pred` to a dictionary recipe against `assumptions`
    /// (the dictionary parameters in scope, in order), without
    /// memoization. Equivalent to [`ClassEnv::resolve_with`] against a
    /// throwaway disabled cache.
    pub fn resolve(
        &self,
        pred: &Pred,
        assumptions: &[Pred],
        budget: ReduceBudget,
    ) -> Result<DictDeriv, ResolveError> {
        let mut cache = ResolveCache::disabled();
        self.resolve_with(pred, assumptions, budget, &mut cache)
    }

    /// Resolve `pred` against `assumptions`, consulting and populating
    /// `cache`. Guaranteed to return exactly what [`ClassEnv::resolve`]
    /// would — the table only short-circuits derivations that are
    /// independent of the assumption set (see the module docs) — while
    /// charging a tabled goal a single budget step.
    pub fn resolve_with(
        &self,
        pred: &Pred,
        assumptions: &[Pred],
        budget: ReduceBudget,
        cache: &mut ResolveCache,
    ) -> Result<DictDeriv, ResolveError> {
        let mut s = Search::new(self, assumptions, budget, cache);
        s.resolve(pred, 0)
    }

    /// Can `pred` be discharged at all (ignoring the recipe)?
    pub fn entails(&self, pred: &Pred, assumptions: &[Pred], budget: ReduceBudget) -> bool {
        self.resolve(pred, assumptions, budget).is_ok()
    }

    /// Context reduction for generalization: rewrite each predicate to
    /// head-normal form (variable-headed), discharging constructor-headed
    /// predicates through instances, then drop duplicates and
    /// predicates entailed by the rest via superclasses.
    ///
    /// Returns the reduced context and all resolution errors
    /// encountered (e.g. `NoInstance` for `Eq (Int -> Int)`).
    pub fn reduce_context(
        &self,
        preds: &[Pred],
        budget: ReduceBudget,
    ) -> (Vec<Pred>, Vec<ResolveError>) {
        let mut hnf: Vec<Pred> = Vec::new();
        let mut errors: Vec<ResolveError> = Vec::new();
        let mut steps = 0usize;

        // Phase 1: to HNF. Worklist with explicit budget.
        let mut work: Vec<(Pred, usize)> = preds.iter().map(|p| (p.clone(), 0)).collect();
        work.reverse();
        while let Some((p, depth)) = work.pop() {
            steps += 1;
            if steps > budget.max_steps {
                errors.push(ResolveError::BudgetExhausted {
                    pred: p,
                    depth: false,
                });
                break;
            }
            if p.in_hnf() {
                hnf.push(p);
                continue;
            }
            if depth > budget.max_depth {
                errors.push(ResolveError::BudgetExhausted {
                    pred: p,
                    depth: true,
                });
                continue;
            }
            if !self.classes.contains_key(&p.class) {
                errors.push(ResolveError::UnknownClass { pred: p });
                continue;
            }
            match self.matching_instance(&p) {
                Some((inst, subst)) => {
                    for sub in inst.preds.iter().rev() {
                        let mut sp = sub.apply(&subst);
                        sp.span = p.span;
                        work.push((sp, depth + 1));
                    }
                }
                None => errors.push(ResolveError::NoInstance { pred: p }),
            }
        }

        // Phase 2: simplify. Keep a predicate only if it is not entailed
        // by the *other* retained predicates (via superclasses), and
        // drop structural duplicates.
        let mut kept: Vec<Pred> = Vec::new();
        for (i, p) in hnf.iter().enumerate() {
            let others: Vec<Pred> = kept
                .iter()
                .cloned()
                .chain(hnf.iter().skip(i + 1).cloned())
                .collect();
            let redundant = others.iter().any(|o| o.same_constraint(p))
                || self.resolve_via_supers_only(p, &others, budget).is_some();
            if !redundant {
                kept.push(p.clone());
            }
        }
        (kept, errors)
    }

    /// Entailment using only assumption + superclass edges (no
    /// instances). Used by simplification, where discharging via an
    /// instance would be wrong (an HNF pred has a variable head, so no
    /// instance applies anyway — this is the THIH `bySuper` half).
    fn resolve_via_supers_only(
        &self,
        pred: &Pred,
        assumptions: &[Pred],
        budget: ReduceBudget,
    ) -> Option<DictDeriv> {
        let mut cache = ResolveCache::disabled();
        let mut s = Search::new(self, assumptions, budget, &mut cache);
        s.via_supers(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ClassInfo, Instance};
    use tc_syntax::Span;
    use tc_types::{Scheme, TyVar};

    fn sp() -> Span {
        Span::DUMMY
    }

    /// Eq (no supers), Ord (super Eq); instances Eq Int, Eq (List a) <= Eq a, Ord Int.
    fn env() -> ClassEnv {
        let mut env = ClassEnv::default();
        env.classes.insert(
            "Eq".into(),
            ClassInfo {
                name: "Eq".into(),
                supers: vec![],
                methods: vec![crate::env::MethodInfo {
                    name: "eq".into(),
                    scheme: Scheme::mono(Type::int()),
                    index: 0,
                    span: sp(),
                }],
                span: sp(),
            },
        );
        env.classes.insert(
            "Ord".into(),
            ClassInfo {
                name: "Ord".into(),
                supers: vec!["Eq".into()],
                methods: vec![],
                span: sp(),
            },
        );
        env.method_owner.insert("eq".into(), "Eq".into());
        env.instances.insert(
            "Eq".into(),
            vec![
                Instance {
                    ast_index: 0,
                    id: 0,
                    preds: vec![],
                    head: Pred::new("Eq", Type::int(), sp()),
                    span: sp(),
                },
                Instance {
                    ast_index: 0,
                    id: 1,
                    preds: vec![Pred::new("Eq", Type::Var(TyVar(0)), sp())],
                    head: Pred::new("Eq", Type::list(Type::Var(TyVar(0))), sp()),
                    span: sp(),
                },
            ],
        );
        env.instances.insert(
            "Ord".into(),
            vec![Instance {
                ast_index: 0,
                id: 2,
                preds: vec![],
                head: Pred::new("Ord", Type::int(), sp()),
                span: sp(),
            }],
        );
        env
    }

    #[test]
    fn resolves_ground_instance() {
        let e = env();
        let d = e
            .resolve(&Pred::new("Eq", Type::int(), sp()), &[], Default::default())
            .unwrap();
        assert_eq!(
            d,
            DictDeriv::FromInstance {
                inst_id: 0,
                args: vec![]
            }
        );
    }

    #[test]
    fn resolves_nested_instance() {
        let e = env();
        let d = e
            .resolve(
                &Pred::new("Eq", Type::list(Type::list(Type::int())), sp()),
                &[],
                Default::default(),
            )
            .unwrap();
        // Eq (List (List Int)) = inst1 (inst1 (inst0))
        assert_eq!(
            d,
            DictDeriv::FromInstance {
                inst_id: 1,
                args: vec![DictDeriv::FromInstance {
                    inst_id: 1,
                    args: vec![DictDeriv::FromInstance {
                        inst_id: 0,
                        args: vec![]
                    }]
                }]
            }
        );
    }

    #[test]
    fn resolves_from_assumption_and_superclass() {
        let e = env();
        let assump = [Pred::new("Ord", Type::Var(TyVar(5)), sp())];
        // Ord t5 is a param; Eq t5 comes from Ord's superclass slot 0.
        let d1 = e.resolve(&assump[0], &assump, Default::default()).unwrap();
        assert_eq!(d1, DictDeriv::FromParam { index: 0 });
        let d2 = e
            .resolve(
                &Pred::new("Eq", Type::Var(TyVar(5)), sp()),
                &assump,
                Default::default(),
            )
            .unwrap();
        assert_eq!(
            d2,
            DictDeriv::FromSuper {
                base: Box::new(DictDeriv::FromParam { index: 0 }),
                slot: 0
            }
        );
    }

    #[test]
    fn missing_instance() {
        let e = env();
        let err = e
            .resolve(
                &Pred::new("Eq", Type::bool(), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ResolveError::NoInstance { .. }));
    }

    #[test]
    fn self_referential_instance_is_cycle() {
        let mut e = env();
        // instance Eq Bool => Eq Bool  (exact self-cycle)
        if let Some(insts) = e.instances.get_mut("Eq") {
            insts.push(Instance {
                ast_index: 0,
                id: 9,
                preds: vec![Pred::new("Eq", Type::bool(), sp())],
                head: Pred::new("Eq", Type::bool(), sp()),
                span: sp(),
            });
        }
        let err = e
            .resolve(
                &Pred::new("Eq", Type::bool(), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ResolveError::Cycle { .. }), "{err:?}");
    }

    #[test]
    fn growing_goals_hit_budget() {
        let mut e = ClassEnv::default();
        e.classes.insert(
            "C".into(),
            ClassInfo {
                name: "C".into(),
                supers: vec![],
                methods: vec![],
                span: sp(),
            },
        );
        // instance C (List (List a)) => C (List a): goals grow forever.
        e.instances.insert(
            "C".into(),
            vec![Instance {
                ast_index: 0,
                id: 0,
                preds: vec![Pred::new(
                    "C",
                    Type::list(Type::list(Type::Var(TyVar(0)))),
                    sp(),
                )],
                head: Pred::new("C", Type::list(Type::Var(TyVar(0))), sp()),
                span: sp(),
            }],
        );
        let err = e
            .resolve(
                &Pred::new("C", Type::list(Type::int()), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(
            matches!(err, ResolveError::BudgetExhausted { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn reduce_context_discharges_and_simplifies() {
        let e = env();
        let preds = vec![
            Pred::new("Eq", Type::list(Type::Var(TyVar(3))), sp()), // -> Eq t3
            Pred::new("Eq", Type::Var(TyVar(3)), sp()),             // duplicate after HNF
            Pred::new("Ord", Type::Var(TyVar(3)), sp()),            // entails Eq t3
        ];
        let (kept, errs) = e.reduce_context(&preds, Default::default());
        assert!(errs.is_empty(), "{errs:?}");
        // Only Ord t3 should remain: Eq t3 is implied by its superclass.
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].class, "Ord");
    }

    #[test]
    fn reduce_context_reports_no_instance() {
        let e = env();
        let preds = vec![Pred::new("Eq", Type::fun(Type::int(), Type::int()), sp())];
        let (kept, errs) = e.reduce_context(&preds, Default::default());
        assert!(kept.is_empty());
        assert!(matches!(errs[0], ResolveError::NoInstance { .. }));
    }

    /// `Eq (List^depth Int)`.
    fn tower(depth: usize) -> Pred {
        let mut t = Type::int();
        for _ in 0..depth {
            t = Type::list(t);
        }
        Pred::new("Eq", t, sp())
    }

    #[test]
    fn tabled_resolution_agrees_with_fresh() {
        let e = env();
        let mut cache = ResolveCache::new();
        for depth in [0, 1, 3, 5, 3, 1, 0] {
            let goal = tower(depth);
            let fresh = e.resolve(&goal, &[], Default::default());
            let tabled = e.resolve_with(&goal, &[], Default::default(), &mut cache);
            assert_eq!(fresh, tabled, "depth {depth}");
        }
        assert!(cache.stats.table_hits > 0, "{:?}", cache.stats);
        assert!(!cache.is_empty());
    }

    #[test]
    fn table_hit_costs_one_step() {
        let e = env();
        let mut cache = ResolveCache::new();
        let goal = tower(6);
        e.resolve_with(&goal, &[], Default::default(), &mut cache)
            .unwrap();
        let original_cost = cache.cost_of(&goal).expect("tabled");
        assert!(original_cost > 1, "a tower derivation is multi-step");
        // A second resolution fits in a one-step budget: pure lookup.
        let tight = ReduceBudget {
            max_depth: 64,
            max_steps: 1,
        };
        let hit = e.resolve_with(&goal, &[], tight, &mut cache);
        assert!(hit.is_ok(), "{hit:?}");
        // Without the table the same budget is exhausted.
        let fresh = e.resolve(&goal, &[], tight);
        assert!(
            matches!(fresh, Err(ResolveError::BudgetExhausted { .. })),
            "{fresh:?}"
        );
    }

    #[test]
    fn cycle_detection_survives_tabling() {
        let mut e = env();
        if let Some(insts) = e.instances.get_mut("Eq") {
            insts.push(Instance {
                ast_index: 0,
                id: 9,
                preds: vec![Pred::new("Eq", Type::bool(), sp())],
                head: Pred::new("Eq", Type::bool(), sp()),
                span: sp(),
            });
        }
        let mut cache = ResolveCache::new();
        for _ in 0..2 {
            let err = e
                .resolve_with(
                    &Pred::new("Eq", Type::bool(), sp()),
                    &[],
                    Default::default(),
                    &mut cache,
                )
                .unwrap_err();
            assert!(matches!(err, ResolveError::Cycle { .. }), "{err:?}");
        }
        // Failures are never tabled.
        assert!(cache.is_empty());
        assert_eq!(cache.stats.table_hits, 0);
    }

    #[test]
    fn non_pure_goals_are_not_tabled() {
        let e = env();
        let mut cache = ResolveCache::new();
        let assump = [Pred::new("Eq", Type::Var(TyVar(7)), sp())];
        let goal = Pred::new("Eq", Type::list(Type::Var(TyVar(7))), sp());
        for _ in 0..3 {
            let d = e
                .resolve_with(&goal, &assump, Default::default(), &mut cache)
                .unwrap();
            assert_eq!(
                d,
                DictDeriv::FromInstance {
                    inst_id: 1,
                    args: vec![DictDeriv::FromParam { index: 0 }]
                }
            );
        }
        assert!(cache.is_empty(), "open derivations must not be tabled");
        assert_eq!(cache.stats.table_hits, 0);
    }

    #[test]
    fn ground_assumptions_bypass_the_table() {
        // A ground (non-HNF) assumption can discharge a ground goal;
        // the table must stand aside so cached and fresh resolution
        // stay identical.
        let e = env();
        let mut cache = ResolveCache::new();
        // Prime the table with the closed derivation.
        let goal = Pred::new("Eq", Type::list(Type::int()), sp());
        e.resolve_with(&goal, &[], Default::default(), &mut cache)
            .unwrap();
        assert!(!cache.is_empty());
        // Now resolve the same goal with itself as a ground assumption:
        // fresh resolution answers FromParam, and so must cached.
        let assump = [goal.clone()];
        let cached = e
            .resolve_with(&goal, &assump, Default::default(), &mut cache)
            .unwrap();
        let fresh = e.resolve(&goal, &assump, Default::default()).unwrap();
        assert_eq!(cached, DictDeriv::FromParam { index: 0 });
        assert_eq!(cached, fresh);
    }

    #[test]
    fn disabled_cache_counts_but_never_hits() {
        let e = env();
        let mut cache = ResolveCache::disabled();
        for _ in 0..3 {
            e.resolve_with(&tower(4), &[], Default::default(), &mut cache)
                .unwrap();
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats.table_hits, 0);
        assert_eq!(cache.stats.dicts_constructed, 15, "{:?}", cache.stats);
        assert!(cache.stats.goals >= 15);
    }

    #[test]
    fn explain_trace_records_instances_and_memo_hits() {
        let e = env();
        let mut cache = ResolveCache::new();
        cache.enable_trace();
        // First derivation: full instance chain, tabled.
        e.resolve_with(&tower(1), &[], Default::default(), &mut cache)
            .unwrap();
        // Second: answered by the table, with provenance.
        e.resolve_with(&tower(1), &[], Default::default(), &mut cache)
            .unwrap();
        let log = cache.take_trace().expect("tracing was enabled");
        assert!(cache.trace.is_none(), "take_trace turns tracing off");
        assert_eq!(log.len(), 2, "{log:?}");
        let rendered = log.render();
        assert!(rendered.contains("Eq (List Int)"), "{rendered}");
        assert!(rendered.contains("instance #1"), "{rendered}");
        assert!(rendered.contains("[tabled]"), "{rendered}");
        assert!(rendered.contains("instance #0"), "{rendered}");
        // The second goal's node is a memo hit pointing at goal #1.
        assert!(
            rendered.contains("memo hit (derived at goal #1)"),
            "{rendered}"
        );
        // The subgoal (Eq Int) is indented under its parent.
        assert!(rendered.contains("\n  [#2]"), "{rendered}");
    }

    #[test]
    fn explain_trace_records_assumptions_and_projections() {
        let e = env();
        let mut cache = ResolveCache::new();
        cache.enable_trace();
        let assump = [Pred::new("Ord", Type::Var(TyVar(5)), sp())];
        e.resolve_with(&assump[0], &assump, Default::default(), &mut cache)
            .unwrap();
        e.resolve_with(
            &Pred::new("Eq", Type::Var(TyVar(5)), sp()),
            &assump,
            Default::default(),
            &mut cache,
        )
        .unwrap();
        let rendered = cache.take_trace().expect("tracing on").render();
        assert!(rendered.contains("assumption #0"), "{rendered}");
        assert!(
            rendered.contains("superclass projection of assumption #0 (slots [0])"),
            "{rendered}"
        );
    }

    #[test]
    fn explain_trace_records_failures() {
        let e = env();
        let mut cache = ResolveCache::new();
        cache.enable_trace();
        e.resolve_with(
            &Pred::new("Eq", Type::bool(), sp()),
            &[],
            Default::default(),
            &mut cache,
        )
        .unwrap_err();
        let rendered = cache.take_trace().expect("tracing on").render();
        assert!(
            rendered.contains("failed: no instance for `Eq Bool`"),
            "{rendered}"
        );
    }

    #[test]
    fn tracing_off_allocates_no_trace_structures() {
        let e = env();
        let mut cache = ResolveCache::new();
        e.resolve_with(&tower(3), &[], Default::default(), &mut cache)
            .unwrap();
        assert!(cache.trace.is_none());
        assert!(cache.take_trace().is_none());
    }

    #[test]
    fn traced_resolution_agrees_with_untraced() {
        let e = env();
        let mut traced = ResolveCache::new();
        traced.enable_trace();
        let mut plain = ResolveCache::new();
        for depth in [0, 2, 4, 2, 0] {
            let goal = tower(depth);
            let a = e.resolve_with(&goal, &[], Default::default(), &mut traced);
            let b = e.resolve_with(&goal, &[], Default::default(), &mut plain);
            assert_eq!(a, b, "depth {depth}");
        }
        assert_eq!(
            traced.stats, plain.stats,
            "tracing must not perturb counters"
        );
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = ResolveStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.goals = 10;
        s.table_hits = 9;
        assert!((s.hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn metrics_agree_with_stats_after_flush() {
        let e = env();
        let mut cache = ResolveCache::new();
        cache.enable_metrics();
        for depth in [4, 4, 2] {
            e.resolve_with(&tower(depth), &[], Default::default(), &mut cache)
                .unwrap();
        }
        cache.flush_metrics();
        let m = &cache.metrics;
        assert_eq!(
            m.counter(CounterId::ResolveCacheHits),
            cache.stats.table_hits
        );
        assert_eq!(
            m.counter(CounterId::ResolveCacheMisses),
            cache.stats.table_misses
        );
        assert_eq!(m.counter(CounterId::ResolveGoals), cache.stats.goals);
        assert_eq!(
            m.counter(CounterId::ResolveDictsConstructed),
            cache.stats.dicts_constructed
        );
        assert!(m.counter(CounterId::InternFresh) > 0);
        assert_eq!(m.gauge(GaugeId::ResolveCacheEntries), cache.len() as u64);
        // One histogram observation per goal, and the tower goes at
        // least 4 deep, so some observation sits in a bucket >= 4's.
        let h = m.histogram(HistogramId::ResolveGoalDepth).expect("on");
        assert_eq!(h.count, cache.stats.goals);
        assert!(h.sum > 0, "subgoals run at nonzero depth");
    }

    #[test]
    fn metrics_off_by_default_and_allocation_free() {
        let e = env();
        let mut cache = ResolveCache::new();
        e.resolve_with(&tower(3), &[], Default::default(), &mut cache)
            .unwrap();
        cache.flush_metrics();
        assert!(cache.metrics.allocates_nothing());
        assert_eq!(cache.metrics.counter(CounterId::ResolveGoals), 0);
    }

    #[test]
    fn capacity_caps_table_and_counts_evictions() {
        let e = env();
        let mut cache = ResolveCache::new();
        cache.enable_metrics();
        cache.set_capacity(2);
        // A depth-6 tower tables one derivation per layer: 7 without a
        // cap, so the cap must evict.
        e.resolve_with(&tower(6), &[], Default::default(), &mut cache)
            .unwrap();
        assert!(cache.len() <= 2, "table holds {} entries", cache.len());
        assert!(cache.metrics.counter(CounterId::ResolveCacheEvictions) > 0);
        // Capped resolution still answers identically to fresh.
        let fresh = e.resolve(&tower(6), &[], Default::default());
        let capped = e.resolve_with(&tower(6), &[], Default::default(), &mut cache);
        assert_eq!(fresh, capped);
    }

    #[test]
    fn goal_spans_record_top_level_goals_only() {
        let e = env();
        let mut cache = ResolveCache::new();
        let epoch = Instant::now();
        cache.enable_goal_spans(epoch);
        e.resolve_with(&tower(3), &[], Default::default(), &mut cache)
            .unwrap();
        e.resolve_with(&tower(1), &[], Default::default(), &mut cache)
            .unwrap();
        let spans = cache.take_goal_spans();
        // One span per *top-level* goal, not per subgoal.
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert!(spans.iter().all(|s| s.cat == "resolve"));
        assert!(spans[0].name.contains("Eq"), "{spans:?}");
        // Monotone: the second goal starts at or after the first.
        assert!(spans[1].start_ns >= spans[0].start_ns);
        // Collection turned itself off with take.
        assert!(cache.take_goal_spans().is_empty());
    }

    #[test]
    fn goal_spans_off_reads_no_clock_state() {
        let e = env();
        let mut cache = ResolveCache::new();
        e.resolve_with(&tower(2), &[], Default::default(), &mut cache)
            .unwrap();
        assert!(cache.goal_spans.is_none());
        assert!(cache.take_goal_spans().is_empty());
    }

    #[test]
    fn cancellation_interrupts_a_deep_resolution() {
        let e = env();
        let budget = ReduceBudget {
            max_depth: 300,
            max_steps: 100_000,
        };
        // Deep enough that the search passes the 64-step poll point.
        let goal = tower(200);
        let mut cache = ResolveCache::new();
        let token = CancelToken::new();
        token.cancel();
        cache.set_cancel(token);
        let err = e.resolve_with(&goal, &[], budget, &mut cache).unwrap_err();
        assert!(matches!(err, ResolveError::Cancelled { .. }), "{err:?}");
        assert_eq!(err.code(), "E0423");
        // The same goal resolves under the same budget without a token.
        let mut plain = ResolveCache::new();
        assert!(e.resolve_with(&goal, &[], budget, &mut plain).is_ok());
    }
}
