//! Budgeted instance resolution, entailment, and context reduction.
//!
//! Resolution is a backward-chaining search over instances and
//! superclass edges. Two robustness mechanisms make it total:
//!
//! * a **visited-goal set** detects exact cycles (a goal recurring as
//!   its own subgoal, as with `instance C (List a) => C (List a)`),
//!   reported as [`ResolveError::Cycle`];
//! * a **[`ReduceBudget`]** (recursion depth + total step count) stops
//!   ever-growing goal chains (`instance C (List (List a)) => C (List a)`)
//!   with [`ResolveError::BudgetExhausted`].
//!
//! Successful resolution returns a [`DictDeriv`]: an explicit recipe
//! for constructing the dictionary, consumed by `tc-core`'s dictionary
//! conversion pass. This mirrors the tabled-resolution observation that
//! instance search must be treated as a real (terminating) search
//! procedure, not naive recursion.

use crate::env::ClassEnv;
use std::collections::HashSet;
use std::fmt;
use tc_types::{Pred, Type};

/// Limits for one resolution / context-reduction call.
#[derive(Debug, Clone, Copy)]
pub struct ReduceBudget {
    /// Maximum backward-chaining depth.
    pub max_depth: usize,
    /// Maximum total goals examined.
    pub max_steps: usize,
}

impl Default for ReduceBudget {
    fn default() -> Self {
        ReduceBudget {
            max_depth: 64,
            max_steps: 10_000,
        }
    }
}

/// Why a predicate could not be resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// No instance (and no assumption) covers the predicate.
    NoInstance { pred: Pred },
    /// The goal recurred as its own subgoal.
    Cycle { pred: Pred, trail: Vec<Pred> },
    /// Depth or step budget exhausted.
    BudgetExhausted { pred: Pred, depth: bool },
    /// The predicate mentions an unknown class (already reported at
    /// build time; resolution refuses rather than guessing).
    UnknownClass { pred: Pred },
}

impl ResolveError {
    pub fn pred(&self) -> &Pred {
        match self {
            ResolveError::NoInstance { pred }
            | ResolveError::Cycle { pred, .. }
            | ResolveError::BudgetExhausted { pred, .. }
            | ResolveError::UnknownClass { pred } => pred,
        }
    }

    /// The stable diagnostic code this error surfaces under, so tests
    /// and tooling can match a *kind* of resolution failure instead of
    /// string-matching the rendered message:
    ///
    /// | code    | meaning                                   |
    /// |---------|-------------------------------------------|
    /// | `E0410` | no instance / not deducible from context  |
    /// | `E0420` | instance resolution is cyclic             |
    /// | `E0421` | resolution depth/step budget exhausted    |
    /// | `E0422` | predicate names an unknown class          |
    pub fn code(&self) -> &'static str {
        match self {
            ResolveError::NoInstance { .. } => "E0410",
            ResolveError::Cycle { .. } => "E0420",
            ResolveError::BudgetExhausted { .. } => "E0421",
            ResolveError::UnknownClass { .. } => "E0422",
        }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NoInstance { pred } => write!(f, "no instance for `{pred}`"),
            ResolveError::Cycle { pred, trail } => {
                write!(f, "instance resolution for `{pred}` is cyclic")?;
                if !trail.is_empty() {
                    write!(f, " (via ")?;
                    for (i, p) in trail.iter().enumerate() {
                        if i > 0 {
                            write!(f, " -> ")?;
                        }
                        write!(f, "`{p}`")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            ResolveError::BudgetExhausted { pred, depth } => write!(
                f,
                "instance resolution for `{pred}` exceeded the {} budget",
                if *depth { "depth" } else { "step" }
            ),
            ResolveError::UnknownClass { pred } => {
                write!(f, "`{pred}` refers to an unknown class")
            }
        }
    }
}

/// A dictionary construction recipe.
#[derive(Debug, Clone, PartialEq)]
pub enum DictDeriv {
    /// The dictionary is an assumption in scope (a dictionary lambda
    /// parameter); `index` is the position in the assumption list the
    /// resolution was run against.
    FromParam { index: usize },
    /// Project the `slot`-th superclass dictionary out of `base`.
    FromSuper { base: Box<DictDeriv>, slot: usize },
    /// Apply instance `inst_id`'s dictionary constructor to the
    /// dictionaries for its context predicates.
    FromInstance {
        inst_id: usize,
        args: Vec<DictDeriv>,
    },
}

struct Search<'e> {
    env: &'e ClassEnv,
    assumptions: &'e [Pred],
    budget: ReduceBudget,
    steps: usize,
    /// Goals on the current derivation path (for cycle detection).
    in_progress: Vec<(String, Type)>,
}

impl<'e> Search<'e> {
    fn resolve(&mut self, pred: &Pred, depth: usize) -> Result<DictDeriv, ResolveError> {
        self.steps += 1;
        if self.steps > self.budget.max_steps {
            return Err(ResolveError::BudgetExhausted {
                pred: pred.clone(),
                depth: false,
            });
        }
        if depth > self.budget.max_depth {
            return Err(ResolveError::BudgetExhausted {
                pred: pred.clone(),
                depth: true,
            });
        }

        // 1. Direct assumption?
        for (i, a) in self.assumptions.iter().enumerate() {
            if a.same_constraint(pred) {
                return Ok(DictDeriv::FromParam { index: i });
            }
        }

        // 2. Reachable from an assumption through superclass edges?
        //    (`class Eq a => Ord a` + assumption `Ord t` entails `Eq t`.)
        if let Some(d) = self.via_supers(pred) {
            return Ok(d);
        }

        if !self.env.classes.contains_key(&pred.class) {
            return Err(ResolveError::UnknownClass { pred: pred.clone() });
        }

        // 3. Cycle check before chaining through instances.
        let key = (pred.class.clone(), pred.ty.clone());
        if self.in_progress.contains(&key) {
            let trail = self
                .in_progress
                .iter()
                .map(|(c, t)| Pred::new(c.clone(), t.clone(), pred.span))
                .collect();
            return Err(ResolveError::Cycle {
                pred: pred.clone(),
                trail,
            });
        }

        // 4. Instance chaining.
        let Some((inst, subst)) = self.env.matching_instance(pred) else {
            return Err(ResolveError::NoInstance { pred: pred.clone() });
        };
        let inst_id = inst.id;
        let subgoals: Vec<Pred> = inst
            .preds
            .iter()
            .map(|p| {
                let mut sp = p.apply(&subst);
                // Blame the original use site, not the instance decl.
                sp.span = pred.span;
                sp
            })
            .collect();

        self.in_progress.push(key);
        let mut args = Vec::with_capacity(subgoals.len());
        let mut result = Ok(());
        for sg in &subgoals {
            match self.resolve(sg, depth + 1) {
                Ok(d) => args.push(d),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.in_progress.pop();
        result?;
        Ok(DictDeriv::FromInstance { inst_id, args })
    }

    /// BFS over superclass edges from each assumption, looking for
    /// `pred`. Returns the projection chain if found. The search is
    /// bounded by a visited set, so superclass graphs (validated
    /// acyclic at build time, but belt and braces) cannot loop it.
    fn via_supers(&mut self, pred: &Pred) -> Option<DictDeriv> {
        let mut queue: Vec<(Pred, DictDeriv)> = self
            .assumptions
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), DictDeriv::FromParam { index: i }))
            .collect();
        let mut visited: HashSet<(String, Type)> = HashSet::new();
        let mut qi = 0usize;
        while qi < queue.len() {
            if self.steps >= self.budget.max_steps {
                return None;
            }
            self.steps += 1;
            let (cur, deriv) = queue[qi].clone();
            qi += 1;
            if !visited.insert((cur.class.clone(), cur.ty.clone())) {
                continue;
            }
            if cur.same_constraint(pred) {
                return Some(deriv);
            }
            if let Some(ci) = self.env.classes.get(&cur.class) {
                for (slot, sup) in ci.supers.iter().enumerate() {
                    queue.push((
                        Pred::new(sup.clone(), cur.ty.clone(), cur.span),
                        DictDeriv::FromSuper {
                            base: Box::new(deriv.clone()),
                            slot: ci.super_slot(slot),
                        },
                    ));
                }
            }
        }
        None
    }
}

impl ClassEnv {
    /// Resolve `pred` to a dictionary recipe against `assumptions`
    /// (the dictionary parameters in scope, in order).
    pub fn resolve(
        &self,
        pred: &Pred,
        assumptions: &[Pred],
        budget: ReduceBudget,
    ) -> Result<DictDeriv, ResolveError> {
        let mut s = Search {
            env: self,
            assumptions,
            budget,
            steps: 0,
            in_progress: Vec::new(),
        };
        s.resolve(pred, 0)
    }

    /// Can `pred` be discharged at all (ignoring the recipe)?
    pub fn entails(&self, pred: &Pred, assumptions: &[Pred], budget: ReduceBudget) -> bool {
        self.resolve(pred, assumptions, budget).is_ok()
    }

    /// Context reduction for generalization: rewrite each predicate to
    /// head-normal form (variable-headed), discharging constructor-headed
    /// predicates through instances, then drop duplicates and
    /// predicates entailed by the rest via superclasses.
    ///
    /// Returns the reduced context and all resolution errors
    /// encountered (e.g. `NoInstance` for `Eq (Int -> Int)`).
    pub fn reduce_context(
        &self,
        preds: &[Pred],
        budget: ReduceBudget,
    ) -> (Vec<Pred>, Vec<ResolveError>) {
        let mut hnf: Vec<Pred> = Vec::new();
        let mut errors: Vec<ResolveError> = Vec::new();
        let mut steps = 0usize;

        // Phase 1: to HNF. Worklist with explicit budget.
        let mut work: Vec<(Pred, usize)> = preds.iter().map(|p| (p.clone(), 0)).collect();
        work.reverse();
        while let Some((p, depth)) = work.pop() {
            steps += 1;
            if steps > budget.max_steps {
                errors.push(ResolveError::BudgetExhausted {
                    pred: p,
                    depth: false,
                });
                break;
            }
            if p.in_hnf() {
                hnf.push(p);
                continue;
            }
            if depth > budget.max_depth {
                errors.push(ResolveError::BudgetExhausted {
                    pred: p,
                    depth: true,
                });
                continue;
            }
            if !self.classes.contains_key(&p.class) {
                errors.push(ResolveError::UnknownClass { pred: p });
                continue;
            }
            match self.matching_instance(&p) {
                Some((inst, subst)) => {
                    for sub in inst.preds.iter().rev() {
                        let mut sp = sub.apply(&subst);
                        sp.span = p.span;
                        work.push((sp, depth + 1));
                    }
                }
                None => errors.push(ResolveError::NoInstance { pred: p }),
            }
        }

        // Phase 2: simplify. Keep a predicate only if it is not entailed
        // by the *other* retained predicates (via superclasses), and
        // drop structural duplicates.
        let mut kept: Vec<Pred> = Vec::new();
        for (i, p) in hnf.iter().enumerate() {
            let others: Vec<Pred> = kept
                .iter()
                .cloned()
                .chain(hnf.iter().skip(i + 1).cloned())
                .collect();
            let redundant = others.iter().any(|o| o.same_constraint(p))
                || self.resolve_via_supers_only(p, &others, budget).is_some();
            if !redundant {
                kept.push(p.clone());
            }
        }
        (kept, errors)
    }

    /// Entailment using only assumption + superclass edges (no
    /// instances). Used by simplification, where discharging via an
    /// instance would be wrong (an HNF pred has a variable head, so no
    /// instance applies anyway — this is the THIH `bySuper` half).
    fn resolve_via_supers_only(
        &self,
        pred: &Pred,
        assumptions: &[Pred],
        budget: ReduceBudget,
    ) -> Option<DictDeriv> {
        let mut s = Search {
            env: self,
            assumptions,
            budget,
            steps: 0,
            in_progress: Vec::new(),
        };
        s.via_supers(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ClassInfo, Instance};
    use tc_syntax::Span;
    use tc_types::{Scheme, TyVar};

    fn sp() -> Span {
        Span::DUMMY
    }

    /// Eq (no supers), Ord (super Eq); instances Eq Int, Eq (List a) <= Eq a, Ord Int.
    fn env() -> ClassEnv {
        let mut env = ClassEnv::default();
        env.classes.insert(
            "Eq".into(),
            ClassInfo {
                name: "Eq".into(),
                supers: vec![],
                methods: vec![crate::env::MethodInfo {
                    name: "eq".into(),
                    scheme: Scheme::mono(Type::int()),
                    index: 0,
                    span: sp(),
                }],
                span: sp(),
            },
        );
        env.classes.insert(
            "Ord".into(),
            ClassInfo {
                name: "Ord".into(),
                supers: vec!["Eq".into()],
                methods: vec![],
                span: sp(),
            },
        );
        env.method_owner.insert("eq".into(), "Eq".into());
        env.instances.insert(
            "Eq".into(),
            vec![
                Instance {
                    ast_index: 0,
                    id: 0,
                    preds: vec![],
                    head: Pred::new("Eq", Type::int(), sp()),
                    span: sp(),
                },
                Instance {
                    ast_index: 0,
                    id: 1,
                    preds: vec![Pred::new("Eq", Type::Var(TyVar(0)), sp())],
                    head: Pred::new("Eq", Type::list(Type::Var(TyVar(0))), sp()),
                    span: sp(),
                },
            ],
        );
        env.instances.insert(
            "Ord".into(),
            vec![Instance {
                ast_index: 0,
                id: 2,
                preds: vec![],
                head: Pred::new("Ord", Type::int(), sp()),
                span: sp(),
            }],
        );
        env
    }

    #[test]
    fn resolves_ground_instance() {
        let e = env();
        let d = e
            .resolve(&Pred::new("Eq", Type::int(), sp()), &[], Default::default())
            .unwrap();
        assert_eq!(
            d,
            DictDeriv::FromInstance {
                inst_id: 0,
                args: vec![]
            }
        );
    }

    #[test]
    fn resolves_nested_instance() {
        let e = env();
        let d = e
            .resolve(
                &Pred::new("Eq", Type::list(Type::list(Type::int())), sp()),
                &[],
                Default::default(),
            )
            .unwrap();
        // Eq (List (List Int)) = inst1 (inst1 (inst0))
        assert_eq!(
            d,
            DictDeriv::FromInstance {
                inst_id: 1,
                args: vec![DictDeriv::FromInstance {
                    inst_id: 1,
                    args: vec![DictDeriv::FromInstance {
                        inst_id: 0,
                        args: vec![]
                    }]
                }]
            }
        );
    }

    #[test]
    fn resolves_from_assumption_and_superclass() {
        let e = env();
        let assump = [Pred::new("Ord", Type::Var(TyVar(5)), sp())];
        // Ord t5 is a param; Eq t5 comes from Ord's superclass slot 0.
        let d1 = e.resolve(&assump[0], &assump, Default::default()).unwrap();
        assert_eq!(d1, DictDeriv::FromParam { index: 0 });
        let d2 = e
            .resolve(
                &Pred::new("Eq", Type::Var(TyVar(5)), sp()),
                &assump,
                Default::default(),
            )
            .unwrap();
        assert_eq!(
            d2,
            DictDeriv::FromSuper {
                base: Box::new(DictDeriv::FromParam { index: 0 }),
                slot: 0
            }
        );
    }

    #[test]
    fn missing_instance() {
        let e = env();
        let err = e
            .resolve(
                &Pred::new("Eq", Type::bool(), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ResolveError::NoInstance { .. }));
    }

    #[test]
    fn self_referential_instance_is_cycle() {
        let mut e = env();
        // instance Eq Bool => Eq Bool  (exact self-cycle)
        if let Some(insts) = e.instances.get_mut("Eq") {
            insts.push(Instance {
                ast_index: 0,
                id: 9,
                preds: vec![Pred::new("Eq", Type::bool(), sp())],
                head: Pred::new("Eq", Type::bool(), sp()),
                span: sp(),
            });
        }
        let err = e
            .resolve(
                &Pred::new("Eq", Type::bool(), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ResolveError::Cycle { .. }), "{err:?}");
    }

    #[test]
    fn growing_goals_hit_budget() {
        let mut e = ClassEnv::default();
        e.classes.insert(
            "C".into(),
            ClassInfo {
                name: "C".into(),
                supers: vec![],
                methods: vec![],
                span: sp(),
            },
        );
        // instance C (List (List a)) => C (List a): goals grow forever.
        e.instances.insert(
            "C".into(),
            vec![Instance {
                ast_index: 0,
                id: 0,
                preds: vec![Pred::new(
                    "C",
                    Type::list(Type::list(Type::Var(TyVar(0)))),
                    sp(),
                )],
                head: Pred::new("C", Type::list(Type::Var(TyVar(0))), sp()),
                span: sp(),
            }],
        );
        let err = e
            .resolve(
                &Pred::new("C", Type::list(Type::int()), sp()),
                &[],
                Default::default(),
            )
            .unwrap_err();
        assert!(
            matches!(err, ResolveError::BudgetExhausted { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn reduce_context_discharges_and_simplifies() {
        let e = env();
        let preds = vec![
            Pred::new("Eq", Type::list(Type::Var(TyVar(3))), sp()), // -> Eq t3
            Pred::new("Eq", Type::Var(TyVar(3)), sp()),             // duplicate after HNF
            Pred::new("Ord", Type::Var(TyVar(3)), sp()),            // entails Eq t3
        ];
        let (kept, errs) = e.reduce_context(&preds, Default::default());
        assert!(errs.is_empty(), "{errs:?}");
        // Only Ord t3 should remain: Eq t3 is implied by its superclass.
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].class, "Ord");
    }

    #[test]
    fn reduce_context_reports_no_instance() {
        let e = env();
        let preds = vec![Pred::new("Eq", Type::fun(Type::int(), Type::int()), sp())];
        let (kept, errs) = e.reduce_context(&preds, Default::default());
        assert!(kept.is_empty());
        assert!(matches!(errs[0], ResolveError::NoInstance { .. }));
    }
}
