//! The validated class/instance environment.

use crate::data::DataEnv;
use std::collections::HashMap;
use tc_syntax::Span;
use tc_types::{Pred, Scheme, Type};

/// One method of a class.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    pub name: String,
    /// The method's scheme *including* the class's own predicate, e.g.
    /// for `Eq.eq`: `forall a. Eq a => a -> a -> Bool`.
    pub scheme: Scheme,
    /// Position of this method inside the dictionary tuple, after the
    /// superclass dictionaries.
    pub index: usize,
    pub span: Span,
}

/// A class declaration.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    pub name: String,
    /// Superclass names, in declaration order. The dictionary for this
    /// class stores one superclass dictionary per entry, *before* the
    /// method slots.
    pub supers: Vec<String>,
    pub methods: Vec<MethodInfo>,
    pub span: Span,
}

impl ClassInfo {
    /// Total dictionary width: superclass dicts then methods.
    pub fn dict_width(&self) -> usize {
        self.supers.len() + self.methods.len()
    }

    /// Tuple slot of superclass `i`.
    pub fn super_slot(&self, i: usize) -> usize {
        i
    }

    /// Tuple slot of method `i`.
    pub fn method_slot(&self, i: usize) -> usize {
        self.supers.len() + i
    }
}

/// A validated instance declaration.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Dense id, also used to name the compiled dictionary constructor.
    pub id: usize,
    /// Index of the originating declaration in `Program::instances`,
    /// so `tc-core` can find the method bodies even when other
    /// (invalid) instance declarations were skipped during build.
    pub ast_index: usize,
    /// Context predicates (`Eq a` in `instance Eq a => Eq (List a)`).
    pub preds: Vec<Pred>,
    /// The head predicate (`Eq (List a)`). Always headed by a type
    /// constructor — var-headed instances are rejected at build time.
    pub head: Pred,
    pub span: Span,
}

impl Instance {
    /// Name of the compiled dictionary-constructor binding, e.g.
    /// `$dict2$Eq$List`.
    pub fn dict_binding_name(&self) -> String {
        let con = self.head.ty.head_con().unwrap_or("?");
        format!("$dict{}${}${}", self.id, self.head.class, con)
    }
}

/// The class environment: classes by name, instances by class name.
#[derive(Debug, Clone, Default)]
pub struct ClassEnv {
    pub classes: HashMap<String, ClassInfo>,
    pub instances: HashMap<String, Vec<Instance>>,
    /// Method name → owning class name (methods are global).
    pub method_owner: HashMap<String, String>,
    /// Classes that participated in a superclass cycle, sorted by
    /// name. Build breaks the cycles structurally (clearing the
    /// participants' superclass lists) so traversals terminate; the
    /// coherence checker turns this record into `L0010` findings.
    pub cyclic_classes: Vec<String>,
    /// Data types and value constructors (builtins plus user `data`
    /// declarations), built before the classes so every lowered type
    /// can reference them.
    pub datas: DataEnv,
}

impl ClassEnv {
    pub fn class(&self, name: &str) -> Option<&ClassInfo> {
        self.classes.get(name)
    }

    pub fn instances_of(&self, class: &str) -> &[Instance] {
        self.instances
            .get(class)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn all_instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values().flatten()
    }

    pub fn instance_by_id(&self, id: usize) -> Option<&Instance> {
        self.all_instances().find(|i| i.id == id)
    }

    /// Look up the class owning a method, plus its slot index.
    pub fn method(&self, name: &str) -> Option<(&ClassInfo, &MethodInfo)> {
        let owner = self.method_owner.get(name)?;
        let class = self.classes.get(owner)?;
        let m = class.methods.iter().find(|m| m.name == name)?;
        Some((class, m))
    }

    /// The superclass predicates of `pred` (instantiated at the same
    /// type): for `Ord Int` with `class Eq a => Ord a`, returns
    /// `[Eq Int]`. Unknown classes yield an empty list — the build
    /// phase has already reported them.
    pub fn supers_of(&self, pred: &Pred) -> Vec<Pred> {
        match self.classes.get(&pred.class) {
            Some(ci) => ci
                .supers
                .iter()
                .map(|s| Pred::new(s.clone(), pred.ty.clone(), pred.span))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Does an instance exist whose head could ever apply to `pred`?
    /// (One-way match of the instance head pattern onto the type.)
    pub fn matching_instance(&self, pred: &Pred) -> Option<(&Instance, tc_types::Subst)> {
        for inst in self.instances_of(&pred.class) {
            if let Ok(s) = tc_types::match_types(&inst.head.ty, &pred.ty) {
                return Some((inst, s));
            }
        }
        None
    }

    /// All class names, sorted — handy for deterministic iteration.
    pub fn class_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.classes.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }
}

/// Helper used by build & tests: the head constructor of an instance
/// type, e.g. `List` for `Eq (List a)`.
pub fn head_con_of(ty: &Type) -> Option<&str> {
    ty.head_con()
}
