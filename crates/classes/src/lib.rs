//! `tc-classes`: the class and instance machinery.
//!
//! Three responsibilities:
//!
//! 1. **Environment construction** ([`build_class_env`]): lower `class`
//!    and `instance` declarations into a validated [`ClassEnv`],
//!    detecting duplicate classes/methods, unknown superclasses,
//!    superclass cycles, malformed instance heads, and — critically for
//!    coherence — *overlapping instances* (two instances of one class
//!    whose heads unify). All problems are reported as diagnostics;
//!    construction always returns a usable (possibly partial)
//!    environment so later stages can keep checking.
//! 2. **Entailment / resolution** ([`ClassEnv::resolve`]): given a
//!    predicate and a set of assumptions (the dictionary parameters in
//!    scope), produce a [`DictDeriv`] — a recipe for building the
//!    dictionary — or a structured [`ResolveError`]. Resolution runs
//!    under an explicit [`ReduceBudget`] and a visited-goal set, so
//!    self-referential instances (`instance C (List a) => C (List a)`)
//!    and ever-growing goal chains terminate with `Cycle` /
//!    `DepthExceeded` instead of overflowing the stack.
//! 3. **Context reduction** ([`ClassEnv::reduce_context`]): simplify an
//!    inferred context to head-normal-form predicates for
//!    generalization, as in the paper.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

pub mod build;
pub mod data;
pub mod env;
pub mod lower;
pub mod resolve;

pub use build::build_class_env;
pub use data::{build_data_env, ConInfo, DataEnv, DataInfo};
pub use env::{ClassEnv, ClassInfo, Instance, MethodInfo};
pub use lower::{lower_qual_type, lower_type, LowerCtx};
pub use resolve::{
    DictDeriv, GoalSpanLog, ReduceBudget, ResolveCache, ResolveError, ResolveStats, ResolveTraceLog,
};
