//! Class-environment construction and validation.
//!
//! Every malformed declaration is reported and *skipped*; construction
//! always yields a usable partial environment so later stages keep
//! producing diagnostics for the rest of the program.

use crate::data::{build_data_env, DataEnv};
use crate::env::{ClassEnv, ClassInfo, Instance, MethodInfo};
use crate::lower::{lower_pred, lower_type, LowerCtx};
use std::collections::{HashMap, HashSet};
use tc_syntax::{ClassDecl, Diagnostics, InstanceDecl, Program, Stage};
use tc_types::{Pred, Qual, Scheme, Type, VarGen};

/// Build a [`ClassEnv`] from the program's class and instance
/// declarations. Returns the environment and accumulated diagnostics;
/// `gen` is the shared fresh-variable source for the whole pipeline run.
pub fn build_class_env(program: &Program, gen: &mut VarGen) -> (ClassEnv, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut env = ClassEnv::default();

    // The data environment comes first: class method signatures,
    // instance heads, and contexts may all mention user data types.
    let datas = build_data_env(program, gen, &mut diags);

    for decl in &program.classes {
        add_class(&mut env, decl, gen, &mut diags, &datas);
    }
    validate_superclasses(&mut env, &mut diags);

    let mut next_inst_id = 0usize;
    for (ast_index, decl) in program.instances.iter().enumerate() {
        add_instance(
            &mut env,
            decl,
            ast_index,
            &mut next_inst_id,
            gen,
            &mut diags,
            &datas,
        );
    }

    env.datas = datas;
    (env, diags)
}

fn add_class(
    env: &mut ClassEnv,
    decl: &ClassDecl,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) {
    if let Some(prev) = env.classes.get(&decl.name) {
        diags.push(
            tc_syntax::Diagnostic::error(
                Stage::Classes,
                "E0301",
                format!("class `{}` is defined more than once", decl.name),
                decl.span,
            )
            .with_note(Some(prev.span), "previous definition here".to_string()),
        );
        return;
    }

    // Superclass contexts must constrain exactly the class variable:
    // `class Eq a => Ord a` is fine, `class Eq b => Ord a` is not.
    let mut supers = Vec::new();
    for sup in &decl.supers {
        match &sup.ty {
            tc_syntax::TypeExpr::Var(v, _) if *v == decl.tyvar => {
                if supers.contains(&sup.class) {
                    diags.warning(
                        Stage::Classes,
                        "E0305",
                        format!("duplicate superclass `{}`", sup.class),
                        sup.span,
                    );
                } else {
                    supers.push(sup.class.clone());
                }
            }
            _ => {
                diags.error(
                    Stage::Classes,
                    "E0303",
                    format!(
                        "superclass constraint `{}` must apply the class variable `{}`",
                        sup.class, decl.tyvar
                    ),
                    sup.span,
                );
            }
        }
    }

    // Lower each method signature in a scope where the class variable
    // is shared; the method's scheme gains the implicit class predicate.
    let mut methods = Vec::new();
    for (index, m) in decl.methods.iter().enumerate() {
        if env.method_owner.contains_key(&m.name)
            || methods.iter().any(|mm: &MethodInfo| mm.name == m.name)
        {
            diags.error(
                Stage::Classes,
                "E0302",
                format!(
                    "method `{}` is already defined (method names are global)",
                    m.name
                ),
                m.span,
            );
            continue;
        }
        let mut ctx = LowerCtx::new();
        let class_var = ctx.var(&decl.tyvar, gen);
        let mut preds: Vec<Pred> = vec![Pred::new(decl.name.clone(), Type::Var(class_var), m.span)];
        for p in &m.qual_ty.context {
            preds.push(lower_pred(p, &mut ctx, gen, diags, datas));
        }
        let body = lower_type(&m.qual_ty.ty, &mut ctx, gen, diags, datas);
        if !body.contains_var(class_var) {
            diags.error(
                Stage::Classes,
                "E0316",
                format!(
                    "method `{}`'s type does not mention the class variable `{}`; \
                     every use would be ambiguous",
                    m.name, decl.tyvar
                ),
                m.span,
            );
            continue;
        }
        let scheme = Scheme::generalize(Qual::new(preds, body), &Default::default());
        methods.push(MethodInfo {
            name: m.name.clone(),
            scheme,
            index,
            span: m.span,
        });
    }

    for m in &methods {
        env.method_owner.insert(m.name.clone(), decl.name.clone());
    }
    env.classes.insert(
        decl.name.clone(),
        ClassInfo {
            name: decl.name.clone(),
            supers,
            methods,
            span: decl.span,
        },
    );
}

/// Check that every superclass exists and that the superclass graph is
/// acyclic. Classes participating in a cycle have their superclass
/// lists cleared (after reporting) so the rest of the pipeline can
/// safely traverse the graph.
fn validate_superclasses(env: &mut ClassEnv, diags: &mut Diagnostics) {
    let names: Vec<String> = env.classes.keys().cloned().collect();

    // Unknown superclasses: report and drop.
    for name in &names {
        let (known, unknown): (Vec<String>, Vec<String>) = match env.classes.get(name) {
            Some(ci) => ci
                .supers
                .iter()
                .cloned()
                .partition(|s| env.classes.contains_key(s)),
            None => continue,
        };
        if !unknown.is_empty() {
            let span = env.classes.get(name).map(|c| c.span).unwrap_or_default();
            for u in &unknown {
                diags.error(
                    Stage::Classes,
                    "E0304",
                    format!("class `{name}` names unknown superclass `{u}`"),
                    span,
                );
            }
            if let Some(ci) = env.classes.get_mut(name) {
                ci.supers = known;
            }
        }
    }

    // Cycle detection: iterative DFS with colors.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<String, Color> =
        names.iter().map(|n| (n.clone(), Color::White)).collect();
    let mut cyclic: HashSet<String> = HashSet::new();

    for root in &names {
        if color.get(root) != Some(&Color::White) {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(String, usize)> = vec![(root.clone(), 0)];
        color.insert(root.clone(), Color::Grey);
        while let Some((node, child_idx)) = stack.pop() {
            let supers = env
                .classes
                .get(&node)
                .map(|c| c.supers.clone())
                .unwrap_or_default();
            if child_idx < supers.len() {
                let child = supers[child_idx].clone();
                stack.push((node.clone(), child_idx + 1));
                match color.get(&child).copied().unwrap_or(Color::Black) {
                    Color::White => {
                        color.insert(child.clone(), Color::Grey);
                        stack.push((child, 0));
                    }
                    Color::Grey => {
                        // Found a cycle: everything grey on the stack
                        // from `child` onward participates.
                        cyclic.insert(child.clone());
                        cyclic.insert(node.clone());
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
            }
        }
    }

    // Break the cycles so later traversals terminate structurally, and
    // record the participants: the coherence pass (which owns the
    // user-facing diagnostic, `L0010`) reads them off the environment.
    let mut cyclic: Vec<String> = cyclic.into_iter().collect();
    cyclic.sort_unstable();
    for name in &cyclic {
        if let Some(ci) = env.classes.get_mut(name) {
            ci.supers.clear();
        }
    }
    env.cyclic_classes = cyclic;
}

fn add_instance(
    env: &mut ClassEnv,
    decl: &InstanceDecl,
    ast_index: usize,
    next_id: &mut usize,
    gen: &mut VarGen,
    diags: &mut Diagnostics,
    datas: &DataEnv,
) {
    let Some(class) = env.classes.get(&decl.class) else {
        diags.error(
            Stage::Classes,
            "E0307",
            format!("instance for unknown class `{}`", decl.class),
            decl.span,
        );
        return;
    };
    let class_methods: Vec<String> = class.methods.iter().map(|m| m.name.clone()).collect();

    let mut ctx = LowerCtx::new();
    let head_ty = lower_type(&decl.head, &mut ctx, gen, diags, datas);
    if head_ty.head_con().is_none() {
        diags.error(
            Stage::Classes,
            "E0312",
            "instance head must be a (possibly applied) type constructor, \
             not a type variable or function type"
                .to_string(),
            decl.span,
        );
        return;
    }
    let preds: Vec<Pred> = decl
        .context
        .iter()
        .map(|p| lower_pred(p, &mut ctx, gen, diags, datas))
        .collect();

    // Overlapping heads are *not* rejected here: every structurally
    // valid instance registers, resolution stays deterministic via
    // first-match, and the coherence pass (`tc-coherence`) reports
    // overlaps as `L0008`/`L0009` with a counterexample type.

    // Validate method bindings: every name must be a class method,
    // defined at most once, and every class method must be present.
    let mut seen: HashSet<&str> = HashSet::new();
    for b in &decl.methods {
        if !class_methods.contains(&b.name) {
            diags.error(
                Stage::Classes,
                "E0309",
                format!("`{}` is not a method of class `{}`", b.name, decl.class),
                b.span,
            );
        } else if !seen.insert(b.name.as_str()) {
            diags.error(
                Stage::Classes,
                "E0314",
                format!("method `{}` is defined twice in this instance", b.name),
                b.span,
            );
        }
    }
    let mut missing: Vec<&str> = Vec::new();
    for m in &class_methods {
        if !seen.contains(m.as_str()) {
            missing.push(m);
        }
    }
    if !missing.is_empty() {
        diags.error(
            Stage::Classes,
            "E0315",
            format!("instance is missing method(s): {}", missing.join(", ")),
            decl.span,
        );
        // Still register the instance: resolution can proceed, and the
        // missing-method error already rejects the program.
    }

    let inst = Instance {
        id: *next_id,
        ast_index,
        preds,
        head: Pred::new(decl.class.clone(), head_ty, decl.span),
        span: decl.span,
    };
    *next_id += 1;
    env.instances
        .entry(decl.class.clone())
        .or_default()
        .push(inst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_syntax::{lex, parse_program};

    fn build(src: &str) -> (ClassEnv, Diagnostics) {
        let (toks, ld) = lex(src);
        assert!(!ld.has_errors());
        let (prog, pd) = parse_program(&toks, Default::default());
        assert!(!pd.has_errors(), "{:?}", pd.into_vec());
        let mut gen = VarGen::new();
        build_class_env(&prog, &mut gen)
    }

    const EQ_ORD: &str = "
        class Eq a where { eq :: a -> a -> Bool };
        class Eq a => Ord a where { lte :: a -> a -> Bool };
        instance Eq Int where { eq = primEqInt };
        instance Eq a => Eq (List a) where { eq = dummy };
    ";

    #[test]
    fn builds_valid_env() {
        let (env, diags) = build(EQ_ORD);
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.classes.len(), 2);
        assert_eq!(env.instances_of("Eq").len(), 2);
        let (ci, m) = env.method("eq").unwrap();
        assert_eq!(ci.name, "Eq");
        assert_eq!(m.index, 0);
        assert_eq!(env.class("Ord").unwrap().supers, vec!["Eq".to_string()]);
    }

    #[test]
    fn duplicate_class() {
        let (_, diags) = build(
            "class Eq a where { eq :: a -> a -> Bool };
             class Eq a where { neq :: a -> a -> Bool };",
        );
        assert!(diags.iter().any(|d| d.code == "E0301"));
    }

    #[test]
    fn superclass_cycle_detected_and_broken() {
        let (env, diags) = build(
            "class B a => A a where { fa :: a -> a };
             class A a => B a where { fb :: a -> a };",
        );
        // Build itself stays silent — the coherence pass owns the
        // user-facing diagnostic (`L0010`) — but the participants are
        // recorded and the cycles broken so later traversal terminates.
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.cyclic_classes, vec!["A".to_string(), "B".to_string()]);
        assert!(env.class("A").unwrap().supers.is_empty());
        assert!(env.class("B").unwrap().supers.is_empty());
    }

    #[test]
    fn unknown_superclass() {
        let (_, diags) = build("class Zzz a => A a where { fa :: a -> a };");
        assert!(diags.iter().any(|d| d.code == "E0304"));
    }

    #[test]
    fn overlapping_instances_both_register() {
        // Build no longer rejects overlapping heads: both instances
        // register (resolution is deterministic first-match) and the
        // coherence pass reports the overlap as `L0008`.
        let (env, diags) = build(
            "class Eq a where { eq :: a -> a -> Bool };
             instance Eq (List Int) where { eq = x };
             instance Eq a => Eq (List a) where { eq = y };",
        );
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.instances_of("Eq").len(), 2);
        assert!(env.cyclic_classes.is_empty());
    }

    #[test]
    fn var_headed_instance_rejected() {
        let (_, diags) = build(
            "class C a where { m :: a -> a };
             instance C a where { m = x };",
        );
        assert!(diags.iter().any(|d| d.code == "E0312"));
    }

    #[test]
    fn self_context_instance_head_still_registers() {
        // `instance C (List a) => C (List a)` is *well-formed* here (it
        // is coherent; it is just unusable) — resolution later reports
        // the cycle. Build must accept it without looping.
        let (env, diags) = build(
            "class C a where { m :: a -> a };
             instance C (List a) => C (List a) where { m = x };",
        );
        assert!(!diags.has_errors(), "{:?}", diags.into_vec());
        assert_eq!(env.instances_of("C").len(), 1);
    }

    #[test]
    fn instance_method_validation() {
        let (_, diags) = build(
            "class Eq a where { eq :: a -> a -> Bool };
             instance Eq Int where { nope = x };",
        );
        assert!(diags.iter().any(|d| d.code == "E0309"));
        assert!(diags.iter().any(|d| d.code == "E0315"));
    }

    #[test]
    fn ambiguous_method_rejected() {
        let (_, diags) = build("class C a where { m :: Int -> Int };");
        assert!(diags.iter().any(|d| d.code == "E0316"));
    }

    #[test]
    fn unknown_class_instance() {
        let (_, diags) = build("instance Nope Int where { m = x };");
        assert!(diags.iter().any(|d| d.code == "E0307"));
    }
}
