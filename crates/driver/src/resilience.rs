//! Deterministic fault injection and panic isolation for the
//! pipeline.
//!
//! The compilation server (`tc-serve`) needs to *prove* its fault
//! isolation works: a worker that panics mid-elaboration must answer
//! with a structured error, not die. Panics on demand are the only
//! honest way to test that, so this module provides **seeded,
//! reproducible fault injection** at named pipeline sites — a
//! FailPoint-style mechanism with three properties:
//!
//! 1. **Zero cost when off.** [`Faults`] is a newtype over
//!    `Option<Arc<FaultCtx>>`; the disabled value is `None` and every
//!    [`Faults::fire`] call is a single branch.
//! 2. **Deterministic.** Whether a rule fires depends only on
//!    `(seed, request sequence number, site name, per-rule hit
//!    count)` — re-running the same batch with the same `--faults`
//!    spec reproduces the same failures, which is what makes the
//!    chaos suite assertable.
//! 3. **Explicit blast radius.** Faults only do three things: panic
//!    (exercising `catch_unwind` isolation), sleep (exercising
//!    deadlines), or report [`FaultOutcome::Budget`] so the caller
//!    can shrink a stage budget (exercising structured exhaustion).
//!
//! # Spec grammar
//!
//! ```text
//! spec  := [ "seed=" u64 ";" ] rule { ";" rule }
//! rule  := site "=" action [ "%" pct ]
//! site  := "parse" | "classenv" | "elaborate" | "share" | "lint" | "eval"
//! action:= "panic" | "budget" | "delay:" millis
//! ```
//!
//! `pct` defaults to 100 (always fire). Example:
//! `seed=42;elaborate=panic%30;eval=delay:50%10` panics in 30% of
//! elaborations and delays 10% of evaluations by 50ms, with the 30% /
//! 10% choices fixed by seed 42.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tc_trace::{EventKind, EventScope};

/// A named pipeline site where a fault may be injected. Sites sit at
/// stage *entry*, so a `panic` fault at `elaborate` unwinds out of
/// [`crate::check_source`] exactly as a real elaboration bug would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    Parse,
    ClassEnv,
    Elaborate,
    Share,
    Lint,
    Eval,
}

impl FaultSite {
    /// Every site, in pipeline order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::Parse,
        FaultSite::ClassEnv,
        FaultSite::Elaborate,
        FaultSite::Share,
        FaultSite::Lint,
        FaultSite::Eval,
    ];

    /// The spelling used in `--faults` specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Parse => "parse",
            FaultSite::ClassEnv => "classenv",
            FaultSite::Elaborate => "elaborate",
            FaultSite::Share => "share",
            FaultSite::Lint => "lint",
            FaultSite::Eval => "eval",
        }
    }

    fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }

    /// The [`tc_trace::Stage`] this site corresponds to, as an index
    /// into `Stage::ALL` — the encoding flight-recorder events use,
    /// so a `fault-injected` event names the same stage its
    /// surrounding `stage-start` does.
    pub fn stage_index(self) -> u64 {
        let stage = match self {
            FaultSite::Parse => tc_trace::Stage::Parse,
            FaultSite::ClassEnv => tc_trace::Stage::ClassEnv,
            FaultSite::Elaborate => tc_trace::Stage::Elaborate,
            FaultSite::Share => tc_trace::Stage::Share,
            FaultSite::Lint => tc_trace::Stage::Lint,
            FaultSite::Eval => tc_trace::Stage::Eval,
        };
        stage as u64
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable payload (`"tc-fault: ..."`).
    Panic,
    /// Sleep for this many milliseconds (deadline pressure).
    Delay(u64),
    /// Ask the caller to run the stage with an exhausted budget.
    /// Meaningful at `elaborate` and `eval`; a no-op elsewhere.
    Budget,
}

/// One parsed `site=action[%pct]` rule.
#[derive(Debug, Clone)]
struct FaultRule {
    site: FaultSite,
    action: FaultAction,
    pct: u8,
}

/// A parsed fault spec: the seed plus the rule list. A plan is shared
/// by a whole serve session; [`FaultPlan::for_request`] derives the
/// per-request [`Faults`] handle.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a spec per the module-level grammar. Errors name the
    /// offending fragment so a CLI can show them verbatim.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for (i, part) in spec.split(';').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if i == 0 {
                if let Some(v) = part.strip_prefix("seed=") {
                    seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("bad fault seed `{v}`"))?;
                    continue;
                }
            }
            let Some((site_s, rest)) = part.split_once('=') else {
                return Err(format!("bad fault rule `{part}` (want site=action[%pct])"));
            };
            let Some(site) = FaultSite::parse(site_s) else {
                return Err(format!(
                    "unknown fault site `{site_s}` (one of parse, classenv, elaborate, share, lint, eval)"
                ));
            };
            let (action_s, pct) = match rest.split_once('%') {
                Some((a, p)) => (
                    a,
                    p.parse::<u8>()
                        .ok()
                        .filter(|p| *p <= 100)
                        .ok_or_else(|| format!("bad fault percentage `{p}` (want 0-100)"))?,
                ),
                None => (rest, 100),
            };
            let action = if action_s == "panic" {
                FaultAction::Panic
            } else if action_s == "budget" {
                FaultAction::Budget
            } else if let Some(ms) = action_s.strip_prefix("delay:") {
                FaultAction::Delay(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad fault delay `{ms}` (want milliseconds)"))?,
                )
            } else {
                return Err(format!(
                    "unknown fault action `{action_s}` (one of panic, budget, delay:<ms>)"
                ));
            };
            rules.push(FaultRule { site, action, pct });
        }
        Ok(FaultPlan { seed, rules })
    }

    /// The per-request fault handle for request number `seq`. Each
    /// handle carries fresh hit counters, so a site visited twice in
    /// one request (it isn't today, but a retry loop could) rolls the
    /// dice independently each time while staying deterministic.
    pub fn for_request(&self, seq: u64) -> Faults {
        if self.rules.is_empty() {
            return Faults::none();
        }
        let hits = self.rules.iter().map(|_| AtomicU64::new(0)).collect();
        Faults(Some(Arc::new(FaultCtx {
            seed: self.seed,
            seq,
            rules: self.rules.clone(),
            hits,
            fired: AtomicU64::new(0),
        })))
    }
}

/// Shared per-request fault state (see [`FaultPlan::for_request`]).
#[derive(Debug)]
pub struct FaultCtx {
    seed: u64,
    seq: u64,
    rules: Vec<FaultRule>,
    hits: Vec<AtomicU64>,
    fired: AtomicU64,
}

/// What [`Faults::fire`] tells its caller to do. `Panic` and `Delay`
/// are executed inside `fire` itself; `Budget` is returned because
/// only the caller knows which budget to exhaust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Budget outcome asks the caller to shrink the stage budget"]
pub enum FaultOutcome {
    /// Nothing fired (or only a delay, which already happened).
    None,
    /// Run the stage with an exhausted budget.
    Budget,
}

/// The per-request fault-injection handle threaded through
/// [`crate::Options::faults`]. The default value is disabled and
/// every check is one branch on a `None`.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<FaultCtx>>);

impl Faults {
    /// The disabled handle (also the `Default`).
    pub fn none() -> Faults {
        Faults(None)
    }

    /// Does this handle carry any rules at all?
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Evaluate every rule attached to `site`. Fires deterministically
    /// from `(seed, seq, site, hit count)`. Panics and delays happen
    /// here; a budget fault is reported back for the caller to apply.
    /// Callers that need the injection count for metrics read
    /// [`Faults::injected`] afterwards.
    pub fn fire(&self, site: FaultSite) -> FaultOutcome {
        self.fire_traced(site, &EventScope::off())
    }

    /// Like [`Faults::fire`], but record a `fault-injected` event into
    /// the flight recorder *before* executing the action — a panic
    /// unwinds the stack, so recording afterwards would lose exactly
    /// the firings a retained trace most needs to show.
    pub fn fire_traced(&self, site: FaultSite, events: &EventScope) -> FaultOutcome {
        let Some(ctx) = &self.0 else {
            return FaultOutcome::None;
        };
        let mut outcome = FaultOutcome::None;
        for (i, rule) in ctx.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let hit = ctx.hits[i].fetch_add(1, Ordering::Relaxed);
            if !decide(ctx.seed, ctx.seq, site.name(), hit, rule.pct) {
                continue;
            }
            ctx.fired.fetch_add(1, Ordering::Relaxed);
            let action_code = match rule.action {
                FaultAction::Panic => 0,
                FaultAction::Delay(_) => 1,
                FaultAction::Budget => 2,
            };
            events.record(EventKind::FaultInjected, site.stage_index(), action_code);
            match rule.action {
                FaultAction::Panic => {
                    // The whole point: unwind out of the pipeline so
                    // catch_unwind isolation is exercised for real.
                    // The recognizable prefix lets the serve panic
                    // hook keep injected panics off stderr.
                    #[allow(clippy::panic)]
                    {
                        panic!(
                            "tc-fault: injected panic at {} (seq {})",
                            site.name(),
                            ctx.seq
                        );
                    }
                }
                FaultAction::Delay(ms) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                FaultAction::Budget => outcome = FaultOutcome::Budget,
            }
        }
        outcome
    }

    /// How many faults this handle has injected so far. The serve
    /// layer reads this *after* a request (the `Arc` survives the
    /// unwound stack) to count injections even when the fault was a
    /// panic.
    pub fn injected(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |ctx| ctx.fired.load(Ordering::Relaxed))
    }
}

/// The deterministic die roll: splitmix-style scramble of the rule's
/// full identity, reduced mod 100 against the rule's percentage.
fn decide(seed: u64, seq: u64, site: &str, hit: u64, pct: u8) -> bool {
    if pct >= 100 {
        return true;
    }
    if pct == 0 {
        return false;
    }
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    x = x.wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x = x
        .wrapping_add(fnv1a(site))
        .wrapping_add(hit.wrapping_mul(0x94d0_49bb_1331_11eb));
    // xorshift64* finisher.
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    let roll = x.wrapping_mul(0x2545_f491_4f6c_dd1d) % 100;
    roll < pct as u64
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Is a panic payload one of ours? The serve layer's panic hook uses
/// this to keep injected panics quiet while still printing real ones.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    panic_message(payload).starts_with("tc-fault:")
}

/// Extract the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with panic isolation: a panic becomes `Err(message)`
/// instead of unwinding further. This is the serve worker's armor —
/// a pipeline bug (or injected fault) in one request must never take
/// the worker thread down.
pub fn isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|p| panic_message(&*p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_inert() {
        let plan = FaultPlan::parse("").unwrap();
        let f = plan.for_request(0);
        assert!(!f.is_active());
        assert_eq!(f.fire(FaultSite::Parse), FaultOutcome::None);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan =
            FaultPlan::parse("seed=42;elaborate=panic%30;eval=delay:5%10;parse=budget").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, FaultSite::Elaborate);
        assert_eq!(plan.rules[0].action, FaultAction::Panic);
        assert_eq!(plan.rules[0].pct, 30);
        assert_eq!(plan.rules[1].action, FaultAction::Delay(5));
        assert_eq!(plan.rules[2].pct, 100);
    }

    #[test]
    fn spec_errors_name_the_fragment() {
        assert!(FaultPlan::parse("bogus=panic")
            .unwrap_err()
            .contains("bogus"));
        assert!(FaultPlan::parse("eval=explode")
            .unwrap_err()
            .contains("explode"));
        assert!(FaultPlan::parse("eval=panic%777")
            .unwrap_err()
            .contains("777"));
        assert!(FaultPlan::parse("seed=abc;eval=panic")
            .unwrap_err()
            .contains("abc"));
        assert!(FaultPlan::parse("justaword")
            .unwrap_err()
            .contains("justaword"));
    }

    #[test]
    fn budget_faults_are_reported_not_executed() {
        let plan = FaultPlan::parse("elaborate=budget").unwrap();
        let f = plan.for_request(7);
        assert_eq!(f.fire(FaultSite::Elaborate), FaultOutcome::Budget);
        assert_eq!(f.fire(FaultSite::Eval), FaultOutcome::None);
    }

    #[test]
    fn panic_faults_panic_and_are_recognizable() {
        let plan = FaultPlan::parse("parse=panic").unwrap();
        let f = plan.for_request(3);
        let err = isolated(|| {
            let _ = f.fire(FaultSite::Parse);
        })
        .unwrap_err();
        assert!(err.starts_with("tc-fault:"), "{err}");
        assert!(err.contains("parse"), "{err}");
    }

    #[test]
    fn percentage_decisions_are_deterministic_and_roughly_proportional() {
        let plan = FaultPlan::parse("seed=1;eval=budget%30").unwrap();
        let fired: Vec<bool> = (0..1000)
            .map(|seq| plan.for_request(seq).fire(FaultSite::Eval) == FaultOutcome::Budget)
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|seq| plan.for_request(seq).fire(FaultSite::Eval) == FaultOutcome::Budget)
            .collect();
        assert_eq!(fired, again, "same seed+seq must fire identically");
        let n = fired.iter().filter(|b| **b).count();
        assert!(
            (150..450).contains(&n),
            "30% of 1000 should be ~300, got {n}"
        );
        // A different seed makes different choices.
        let other = FaultPlan::parse("seed=2;eval=budget%30").unwrap();
        let diff: Vec<bool> = (0..1000)
            .map(|seq| other.for_request(seq).fire(FaultSite::Eval) == FaultOutcome::Budget)
            .collect();
        assert_ne!(fired, diff);
    }

    #[test]
    fn isolated_passes_values_through() {
        assert_eq!(isolated(|| 40 + 2).unwrap(), 42);
    }

    #[test]
    fn fire_traced_records_the_event_before_the_panic() {
        let log = tc_trace::EventLog::with_capacity(8);
        let plan = FaultPlan::parse("elaborate=panic").unwrap();
        let f = plan.for_request(9);
        let scope = log.scope(9);
        let err = isolated(|| {
            let _ = f.fire_traced(FaultSite::Elaborate, &scope);
        })
        .unwrap_err();
        assert!(err.starts_with("tc-fault:"), "{err}");
        // The event survived the unwind: it names the failing stage
        // and the action that fired.
        let events = log.extract(9);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::FaultInjected);
        assert_eq!(events[0].arg0, tc_trace::Stage::Elaborate as u64);
        assert_eq!(events[0].arg1, 0, "action code 0 = panic");
    }
}
